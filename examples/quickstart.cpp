// Quickstart: the whole prediction pipeline in one page.
//
//   1. pick a target machine model and the base system;
//   2. run the probe suite on both (HPL, STREAM, GUPS, MAPS, NETBENCH);
//   3. trace an application on the base system (stride detection,
//      working-set estimation, comm counting);
//   4. convolve the signature with the target's rates (Metric #9);
//   5. compare the prediction with a detailed-simulator "real run".
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart [machine] [nprocs]
#include <cstdio>
#include <string>

#include "common/parse.hpp"
#include "common/units.hpp"
#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "stats/summary.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

int main(int argc, char** argv) {
  using namespace msim;

  const std::string target_name = argc > 1 ? argv[1] : "ARL_Opteron";
  int nprocs = 64;
  if (argc > 2) {
    const auto parsed = parse_int(argv[2]);
    if (!parsed || *parsed <= 0) {
      std::fprintf(stderr,
                   "quickstart: nprocs must be a positive integer, got "
                   "'%s'\n",
                   argv[2]);
      return 2;
    }
    nprocs = *parsed;
  }

  // 1. Machines: a candidate system and the base system we can run on.
  const machine::MachineConfig& target = machine::find(target_name);
  const machine::MachineConfig& base =
      machine::find(machine::base_system_name());
  std::printf("Target: %s (%s), base: %s\n\n", target.name.c_str(),
              target.architecture.c_str(), base.name.c_str());

  // 2. Probe both machines.
  const probes::ProbeSet target_probes = probes::run_probe_suite(target);
  const probes::ProbeSet base_probes = probes::run_probe_suite(base);
  std::printf("Probes on %s: HPL %s, STREAM %s, GUPS %s\n",
              target.name.c_str(),
              format_rate(target_probes.hpl_rmax, "FLOP").c_str(),
              format_rate(target_probes.stream_bw, "B").c_str(),
              format_rate(target_probes.gups_bw, "B").c_str());
  std::printf("NETBENCH: latency %.1f us, bandwidth %s\n\n",
              target_probes.net.latency_s * 1e6,
              format_rate(target_probes.net.bandwidth, "B").c_str());

  // 3. Trace AVUS-Standard on the base system.
  const workload::AppModel app = workload::make_avus_standard(nprocs);
  const trace::ApplicationSignature signature =
      trace::trace_application(app, base.name);
  std::printf("Traced %s @ %d CPUs: %zu basic blocks, %.1f Gflop and %s of\n"
              "memory traffic per timestep per process\n\n",
              app.name.c_str(), nprocs, signature.blocks.size(),
              static_cast<double>(signature.total_flops_per_timestep()) /
                  1e9,
              format_bytes(signature.total_bytes_per_timestep()).c_str());

  // 4. "Run" the app on the base system, then predict the target with
  //    Metric #9 (HPL + ENHANCED MAPS + NETBENCH + dependency analysis).
  const double base_seconds =
      simulate::execute(app, base).wall_seconds;
  const double predicted = convolve::predict_time(
      signature, target_probes, base_probes, base_seconds,
      convolve::PredictiveMetric::M9_HplMapsNetDep);

  // 5. The "real" run on the target (detailed simulator stands in for the
  //    actual machine, which retired two decades ago).
  const double actual = simulate::execute(app, target).wall_seconds;

  std::printf("Measured on base system:   %8.0f s\n", base_seconds);
  std::printf("Predicted for %-12s %8.0f s (Metric #9)\n",
              (target.name + ":").c_str(), predicted);
  std::printf("\"Real\" run on target:      %8.0f s\n", actual);
  std::printf("Prediction error:          %+8.1f %%\n",
              stats::signed_percent_error(predicted, actual));
  return 0;
}
