// What-if: evaluate a machine that does not exist yet.
//
// The methodology's selling point for procurement is that a machine is
// fully described by its probe results — so a *proposed* system can be
// evaluated before it is built by writing down its projected MachineConfig,
// probing the model, and convolving existing application signatures
// against it. This example sketches a hypothetical 2006-era dual-core
// Opteron cluster with InfiniBand (faster clock, bigger L2, DDR2 memory,
// lower-latency fabric) and asks how the TI-05 suite would land on it.
#include <cstdio>

#include "common/units.hpp"
#include "convolve/convolver.hpp"
#include "machine/machine_config.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace {

using namespace msim;

/// A projected next-generation system, built with the public config API.
machine::MachineConfig make_proposed_system() {
  machine::MachineConfig c;
  c.name = "PROPOSED_Opteron280_IB";
  c.architecture = "AMD_Opteron280_2.4GHz_IB";
  c.total_processors = 4096;
  c.cpu = machine::Processor{.clock_ghz = 2.4,
                             .flops_per_cycle = 2,
                             .hpl_efficiency = 0.80,
                             .dependency_derate = 0.85,
                             .branch_derate = 0.82,
                             .latency_hiding = 0.82};
  c.caches = {
      machine::CacheLevel{.name = "L1",
                          .size_bytes = 64 * KiB,
                          .line_bytes = 64,
                          .associativity = 2,
                          .unit_stride_bw = 14.0 * GB,
                          .random_bw = 6.5 * GB,
                          .latency_s = 1.3e-9},
      machine::CacheLevel{.name = "L2",
                          .size_bytes = 1 * MiB,
                          .line_bytes = 64,
                          .associativity = 16,
                          .unit_stride_bw = 8.0 * GB,
                          .random_bw = 3.0 * GB,
                          .latency_s = 5.0e-9},
  };
  c.memory = machine::MainMemory{.unit_stride_bw = 4.2 * GB,
                                 .random_bw = 0.8 * GB,
                                 .latency_s = 95e-9};
  c.tlb = machine::Tlb{.entries = 1024,
                       .page_bytes = 4096,
                       .miss_penalty_s = 45e-9};
  c.net = machine::Network{.latency_s = 3.5e-6,
                           .bandwidth = 0.9 * GB,
                           .eager_threshold_bytes = 32 * KiB,
                           .per_message_overhead_s = 0.8e-6,
                           .procs_per_node = 4};
  c.system_efficiency = 0.92;
  c.memory_contention = 0.30;
  machine::validate(c);
  return c;
}

}  // namespace

int main() {
  const auto proposed = make_proposed_system();
  const auto& base = machine::find(machine::base_system_name());
  const auto& incumbent = machine::find("ARL_Opteron");

  const auto base_probes = probes::run_probe_suite(base);
  const auto proposed_probes = probes::run_probe_suite(proposed);
  const auto incumbent_probes = probes::run_probe_suite(incumbent);

  std::printf("Proposed system: %s\n", proposed.name.c_str());
  std::printf("  HPL %s, STREAM %s, GUPS %s\n\n",
              format_rate(proposed_probes.hpl_rmax, "FLOP").c_str(),
              format_rate(proposed_probes.stream_bw, "B").c_str(),
              format_rate(proposed_probes.gups_bw, "B").c_str());

  std::printf("%-22s %6s %14s %14s %9s\n", "application", "CPUs",
              "incumbent (s)", "proposed (s)", "speedup");
  for (const auto& test_case : workload::ti05_suite()) {
    const int nprocs = test_case.cpu_counts[1];
    const workload::AppModel app = test_case.build(nprocs);
    const auto signature = trace::trace_application(app, base.name);
    const double base_seconds =
        simulate::execute(app, base).wall_seconds;

    const double on_incumbent = convolve::predict_time(
        signature, incumbent_probes, base_probes, base_seconds,
        convolve::PredictiveMetric::M9_HplMapsNetDep);
    const double on_proposed = convolve::predict_time(
        signature, proposed_probes, base_probes, base_seconds,
        convolve::PredictiveMetric::M9_HplMapsNetDep);
    std::printf("%-22s %6d %12.0f %14.0f %8.2fx\n", test_case.name.c_str(),
                nprocs, on_incumbent, on_proposed,
                on_incumbent / on_proposed);
  }
  std::printf(
      "\n(Predictions only — the proposed machine 'exists' purely as a\n"
      "config; for the existing system the detailed simulator could\n"
      "verify, for the proposed one there is nothing to verify against,\n"
      "which is precisely the procurement scenario.)\n");
  return 0;
}
