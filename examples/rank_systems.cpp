// Rank the ten HPCMP systems for each application — the use case that
// motivates the paper ("such rankings could be achieved by comparing the
// performance of applications across architectures, e.g. system X is 50%
// faster than system Y for application Z").
//
// For each TI-05 test case this prints the per-application ranking induced
// by (a) the "real" runs, (b) HPL alone, and (c) Metric #9 — making the
// paper's point visible: HPL reorders the list badly, the trace-convolution
// metric nearly reproduces it.
//
// Usage: rank_systems [nprocs-index 0..2]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/parse.hpp"
#include "metrics/study.hpp"
#include "pipeline/study_builder.hpp"

namespace {

using namespace msim;

struct Ranked {
  std::string machine;
  double seconds;
};

std::vector<Ranked> sort_ranking(std::vector<Ranked> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Ranked& a, const Ranked& b) {
              return a.seconds < b.seconds;
            });
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t count_index = 0;
  if (argc > 1) {
    const auto parsed = parse_unsigned(argv[1]);
    if (!parsed || *parsed > 2) {
      std::fprintf(stderr,
                   "rank_systems: nprocs-index must be 0..2, got '%s'\n",
                   argv[1]);
      return 2;
    }
    count_index = *parsed;
  }

  // Build through the staged pipeline with the artifact cache on: rerunning
  // this example (or any bench in the same tree) reuses the campaign,
  // probe and trace artifacts.
  pipeline::StudyBuilder builder;
  builder.cache(true);
  const auto study = builder.build();
  std::fprintf(stderr, "(%s)\n", builder.stats().summary().c_str());

  for (const auto& test_case : study.suite()) {
    const int nprocs =
        test_case.cpu_counts[std::min(count_index,
                                      test_case.cpu_counts.size() - 1)];

    std::vector<Ranked> actual, by_hpl, by_m9;
    for (const auto& machine : study.target_names()) {
      actual.push_back(
          {machine, study.observations().at(test_case.name, nprocs,
                                            machine)});
      by_hpl.push_back({machine,
                        study.predict(metrics::Metric::S1_Hpl,
                                      test_case.name, nprocs, machine)});
      by_m9.push_back({machine,
                       study.predict(metrics::Metric::P9_HplMapsNetDep,
                                     test_case.name, nprocs, machine)});
    }
    actual = sort_ranking(std::move(actual));
    by_hpl = sort_ranking(std::move(by_hpl));
    by_m9 = sort_ranking(std::move(by_m9));

    std::printf("=== %s @ %d CPUs ===\n", test_case.name.c_str(), nprocs);
    std::printf("%4s  %-22s %-16s %-16s\n", "rank", "actual (s)",
                "by HPL", "by Metric #9");
    for (std::size_t i = 0; i < actual.size(); ++i) {
      std::printf("%4zu  %-14s %7.0f %-16s %-16s\n", i + 1,
                  actual[i].machine.c_str(), actual[i].seconds,
                  by_hpl[i].machine.c_str(), by_m9[i].machine.c_str());
    }
    const double spread =
        actual.back().seconds / actual.front().seconds;
    std::printf("fastest system is %.1fx faster than the slowest\n\n",
                spread);
  }
  return 0;
}
