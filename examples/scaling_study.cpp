// Scaling study: predict processor counts nobody traced.
//
// Tracing a large run dilates it ~30x, so production practice is to trace
// two affordable counts and extrapolate the signature. This example traces
// an application at its two smallest paper counts, synthesizes signatures
// for a sweep of larger counts with trace::scale_signature, and prints the
// predicted strong-scaling curve for a few machines next to the detailed
// simulator's "real" runs.
//
// Usage: scaling_study [app]
#include <cstdio>
#include <string>
#include <vector>

#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "stats/summary.hpp"
#include "trace/scaling.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

int main(int argc, char** argv) {
  using namespace msim;

  const std::string app_name = argc > 1 ? argv[1] : "AVUS_Standard";
  const auto& test_case = workload::find_test_case(app_name);
  const int p0 = test_case.cpu_counts[0];
  const int p1 = test_case.cpu_counts[1];

  const auto& base = machine::find(machine::base_system_name());
  const auto base_probes = probes::run_probe_suite(base);

  // Trace the two affordable counts once.
  const auto sig0 =
      trace::trace_application(test_case.build(p0), base.name);
  const auto sig1 =
      trace::trace_application(test_case.build(p1), base.name);
  std::printf("Traced %s at %d and %d CPUs on %s; extrapolating.\n\n",
              app_name.c_str(), p0, p1, base.name.c_str());

  const std::vector<std::string> machines = {"NAVO_655", "ARL_Altix",
                                             "ARL_Opteron"};
  const std::vector<int> sweep = {p0, p1, 2 * p1, 4 * p1, 8 * p1};

  std::printf("%6s", "CPUs");
  for (const auto& machine : machines) {
    std::printf("  %12s %9s %6s", machine.c_str(), "\"actual\"", "err");
  }
  std::printf("\n");

  for (int p : sweep) {
    // The base measurement anchors each count (a cheap, untraced run).
    const workload::AppModel app = test_case.build(p);
    const double base_seconds = simulate::execute(app, base).wall_seconds;
    const auto scaled = trace::scale_signature(sig0, sig1, p);

    std::printf("%6d", p);
    for (const auto& machine_name : machines) {
      const auto& machine = machine::find(machine_name);
      const auto probes_set = probes::run_probe_suite(machine);
      const double predicted = convolve::predict_time(
          scaled, probes_set, base_probes, base_seconds,
          convolve::PredictiveMetric::M9_HplMapsNetDep);
      const double actual = simulate::execute(app, machine).wall_seconds;
      std::printf("  %9.0f s  %7.0f s %+5.0f%%", predicted, actual,
                  stats::signed_percent_error(predicted, actual));
    }
    std::printf("\n");
  }

  std::printf(
      "\nThe first two rows use counts that were actually traced; every\n"
      "later row runs on a power-law-extrapolated signature.\n");
  return 0;
}
