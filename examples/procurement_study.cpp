// Procurement what-if: define YOUR workload with the public API, trace it,
// and ask which of the ten systems to buy — under HPL, under STREAM, and
// under the trace-convolution metric. Reproduces the Gustafson-style
// anecdote from the paper's introduction: "if the system with the highest
// HPL result were purchased, that system would not only be a sub-optimal
// choice, it would also be the worst choice."
//
// The custom workload here is a sparse-solver-like code: SpMV sweeps
// (random-heavy gather), a dependence-limited preconditioner, and dot
// products with frequent small allreduces.
#include <algorithm>
#include <cstdio>

#include "common/parse.hpp"
#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "trace/tracer.hpp"
#include "workload/basic_block.hpp"

namespace {

using namespace msim;

/// A user-defined application model built directly against the public API.
workload::AppModel make_sparse_solver(int nprocs) {
  using memsim::DependencyClass;
  const double rows = 40e6 / nprocs;  // strong-scaled matrix rows

  workload::Phase iterate;
  iterate.name = "krylov_iterate";
  iterate.blocks.push_back(workload::BasicBlock{
      .name = "solver/spmv",
      .flops_per_iteration = 16,
      .refs_per_iteration = 14,
      .element_bytes = 8,
      .iterations = static_cast<std::uint64_t>(rows * 120),
      .mix = {.unit = 0.35, .short_ = 0.15, .random = 0.50,
              .short_stride_elements = 4},
      .working_set_bytes = static_cast<std::uint64_t>(rows * 96),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.05,
      .ilp_efficiency = 0.20,
      .page_locality = 0.55});
  iterate.blocks.push_back(workload::BasicBlock{
      .name = "solver/ilu_sweep",
      .flops_per_iteration = 10,
      .refs_per_iteration = 8,
      .element_bytes = 8,
      .iterations = static_cast<std::uint64_t>(rows * 60),
      .mix = {.unit = 0.70, .short_ = 0.20, .random = 0.10,
              .short_stride_elements = 2},
      .working_set_bytes = static_cast<std::uint64_t>(rows * 48),
      .dependency = DependencyClass::Serial,  // triangular solve recurrence
      .branch_density = 0.04,
      .ilp_efficiency = 0.30,
      .page_locality = 0.60});
  iterate.comm = {
      netsim::CommEvent{.type = netsim::CommType::AllReduce,
                        .bytes = 16,
                        .count = 240},
      netsim::CommEvent{.type = netsim::CommType::PointToPoint,
                        .bytes = 96 * 1024,
                        .count = 120},
  };

  workload::AppModel app;
  app.name = "SparseSolver";
  app.nprocs = nprocs;
  app.timesteps = 50;
  app.phases.push_back(std::move(iterate));
  workload::validate(app);
  return app;
}

struct Choice {
  std::string machine;
  double value;
};

void print_choice(const char* label, std::vector<Choice> choices) {
  std::sort(choices.begin(), choices.end(),
            [](const Choice& a, const Choice& b) {
              return a.value < b.value;
            });
  std::printf("%-26s best: %-14s worst: %s\n", label,
              choices.front().machine.c_str(),
              choices.back().machine.c_str());
  for (const auto& choice : choices) {
    std::printf("    %-14s %9.0f s\n", choice.machine.c_str(),
                choice.value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int nprocs = 128;
  if (argc > 1) {
    const auto parsed = parse_int(argv[1]);
    if (!parsed || *parsed <= 0) {
      std::fprintf(stderr,
                   "procurement_study: nprocs must be a positive integer, "
                   "got '%s'\n",
                   argv[1]);
      return 2;
    }
    nprocs = *parsed;
  }

  const auto app = make_sparse_solver(nprocs);
  const auto& base = machine::find(machine::base_system_name());
  const auto base_probes = probes::run_probe_suite(base);
  const auto signature = trace::trace_application(app, base.name);
  const double base_seconds = simulate::execute(app, base).wall_seconds;

  std::printf("Workload: %s @ %d CPUs, measured %.0f s on %s\n\n",
              app.name.c_str(), nprocs, base_seconds, base.name.c_str());

  std::vector<Choice> actual, by_hpl, by_stream, by_m9;
  for (const auto& machine : machine::targets()) {
    const auto probes_set = probes::run_probe_suite(machine);
    actual.push_back(
        {machine.name, simulate::execute(app, machine).wall_seconds});
    by_hpl.push_back({machine.name, base_seconds * base_probes.hpl_rmax /
                                        probes_set.hpl_rmax});
    by_stream.push_back({machine.name,
                         base_seconds * base_probes.stream_bw /
                             probes_set.stream_bw});
    by_m9.push_back(
        {machine.name,
         convolve::predict_time(signature, probes_set, base_probes,
                                base_seconds,
                                convolve::PredictiveMetric::
                                    M9_HplMapsNetDep)});
  }

  print_choice("\"Real\" runs:", actual);
  std::printf("\n");
  print_choice("HPL would pick:", by_hpl);
  std::printf("\n");
  print_choice("STREAM would pick:", by_stream);
  std::printf("\n");
  print_choice("Metric #9 would pick:", by_m9);
  return 0;
}
