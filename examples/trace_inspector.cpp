// Inspect what the tracer sees: dump the full ApplicationSignature of a
// TI-05 test case — per-block operation counts, observed stride fractions,
// estimated working sets, static-analysis verdicts, and the MPIDTRACE
// communication schedule. Useful for understanding exactly what information
// the predictive metrics are (and are not) allowed to use.
//
// Usage: trace_inspector [app] [nprocs]
#include <cstdio>
#include <string>

#include "common/parse.hpp"
#include "common/units.hpp"
#include "machine/registry.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

int main(int argc, char** argv) {
  using namespace msim;

  const std::string app_name = argc > 1 ? argv[1] : "OVERFLOW2_Standard";
  const auto& test_case = workload::find_test_case(app_name);
  int nprocs = test_case.cpu_counts.front();
  if (argc > 2) {
    const auto parsed = parse_int(argv[2]);
    if (!parsed || *parsed <= 0) {
      std::fprintf(stderr,
                   "trace_inspector: nprocs must be a positive integer, "
                   "got '%s'\n",
                   argv[2]);
      return 2;
    }
    nprocs = *parsed;
  }

  const workload::AppModel app = test_case.build(nprocs);
  const auto signature =
      trace::trace_application(app, machine::base_system_name());

  std::printf("Signature of %s @ %d CPUs (traced on %s, %d timesteps)\n\n",
              signature.app.c_str(), signature.nprocs,
              signature.traced_on.c_str(), signature.timesteps);

  std::printf("%-28s %10s %11s  %5s %5s %5s  %-10s %4s %4s\n", "block",
              "Mflop/ts", "refs/ts", "unit", "short", "rand", "ws est",
              "LB?", "dep?");
  for (const trace::BlockView block : signature.blocks) {
    std::printf("%-28s %10.1f %11lu  %5.2f %5.2f %5.2f  %-10s %4s %4s\n",
                block.name().c_str(),
                static_cast<double>(block.flops()) / 1e6,
                static_cast<unsigned long>(block.refs()),
                block.unit_fraction(), block.short_fraction(),
                block.random_fraction(),
                format_bytes(block.working_set_estimate()).c_str(),
                block.working_set_is_lower_bound() ? "yes" : "no",
                block.dependency_limited() ? "yes" : "no");
  }

  std::printf("\nCommunication per timestep per process (MPIDTRACE):\n");
  for (const auto& phase : signature.comm) {
    for (const auto& event : phase.events) {
      std::printf("  %-14s %-10s %8s x %lu\n", phase.phase.c_str(),
                  netsim::to_string(event.type).c_str(),
                  format_bytes(event.bytes).c_str(),
                  static_cast<unsigned long>(event.count));
    }
  }

  std::printf("\nTotals per timestep per process: %.1f Gflop, %s memory\n",
              static_cast<double>(signature.total_flops_per_timestep()) /
                  1e9,
              format_bytes(signature.total_bytes_per_timestep()).c_str());
  return 0;
}
