// Explore a machine model's MAPS surface: the four bandwidth curves (unit /
// random x standard / ENHANCED) versus working-set size — the machine
// signature the paper's Metrics #7-#9 consume. Optionally (--native) also
// runs the real MAPS sweep on the host machine for comparison.
//
// Usage: maps_explorer [machine] [--native]
#include <cstdio>
#include <cstring>
#include <string>

#include "common/units.hpp"
#include "machine/registry.hpp"
#include "probes/native.hpp"
#include "probes/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace msim;

  std::string machine_name = "ARL_Altix";
  bool native = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--native") == 0) {
      native = true;
    } else {
      machine_name = argv[i];
    }
  }

  const auto& machine = machine::find(machine_name);
  const auto set = probes::run_probe_suite(machine);

  std::printf("MAPS surface of %s (%s):\n", machine.name.c_str(),
              machine.architecture.c_str());
  std::printf("%-10s %12s %12s %12s %12s\n", "ws", "unit", "random",
              "unit+dep", "random+dep");
  for (const auto& point : set.maps_unit.points) {
    const auto ws = point.working_set_bytes;
    std::printf("%-10s %9.2f GB %9.3f GB %9.2f GB %9.3f GB\n",
                format_bytes(ws).c_str(),
                set.maps_unit.bandwidth_at(ws) / GB,
                set.maps_random.bandwidth_at(ws) / GB,
                set.maps_unit_dep.bandwidth_at(ws) / GB,
                set.maps_random_dep.bandwidth_at(ws) / GB);
  }
  std::printf("\nSTREAM point: %s   GUPS point: %s\n",
              format_rate(set.stream_bw, "B").c_str(),
              format_rate(set.gups_bw, "B").c_str());

  if (native) {
    std::printf("\nNative MAPS sweep on THIS host:\n");
    std::printf("%-10s %14s %14s\n", "ws", "unit stride", "pointer chase");
    const std::vector<std::size_t> sizes = {
        16u << 10, 64u << 10, 256u << 10, 1u << 20, 4u << 20, 16u << 20,
        64u << 20};
    for (const auto& point : probes::native::native_maps_sweep(sizes)) {
      std::printf("%-10s %11.2f GB %11.3f GB\n",
                  format_bytes(point.working_set_bytes).c_str(),
                  point.unit_bw / GB, point.chase_bw / GB);
    }
  }
  return 0;
}
