// Bottleneck analysis: the performance-engineer view behind the study.
//
// Prints the per-block time breakdown of one application on one machine,
// then a bottleneck summary across all ten systems — making visible *why*
// HPL mispredicts (almost nothing is flop-bound) and which machines turn
// the same code memory-, TLB-, or communication-bound.
//
// Usage: bottleneck_analysis [app] [nprocs] [machine]
#include <cstdio>
#include <string>

#include "common/parse.hpp"
#include "machine/registry.hpp"
#include "report/breakdown.hpp"
#include "workload/apps.hpp"

int main(int argc, char** argv) {
  using namespace msim;

  const std::string app_name = argc > 1 ? argv[1] : "RFCTH_Standard";
  const auto& test_case = workload::find_test_case(app_name);
  int nprocs = test_case.cpu_counts.front();
  if (argc > 2) {
    const auto parsed = parse_int(argv[2]);
    if (!parsed || *parsed <= 0) {
      std::fprintf(stderr,
                   "bottleneck_analysis: nprocs must be a positive "
                   "integer, got '%s'\n",
                   argv[2]);
      return 2;
    }
    nprocs = *parsed;
  }
  const std::string machine_name = argc > 3 ? argv[3] : "ARL_Xeon";

  const workload::AppModel app = test_case.build(nprocs);

  std::printf("%s\n",
              report::render_breakdown(app, machine::find(machine_name))
                  .c_str());
  std::printf("%s",
              report::render_bottleneck_summary(app, machine::targets())
                  .c_str());
  std::printf(
      "\nNote how little of any machine's time is flop-bound — the\n"
      "structural reason the paper finds HPL useless as a predictor.\n");
  return 0;
}
