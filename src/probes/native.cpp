#include "probes/native.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace msim::probes::native {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

KernelResult stream_triad(std::size_t elements, int repeats) {
  MSIM_REQUIRE(elements > 0 && repeats > 0, "triad needs work");
  std::vector<double> a(elements, 0.0);
  std::vector<double> b(elements, 1.0);
  std::vector<double> c(elements, 2.0);
  const double scalar = 3.0;

  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < elements; ++i) {
      a[i] = b[i] + scalar * c[i];
    }
    // Rotate roles so the compiler cannot hoist the loop away.
    std::swap(a, b);
  }
  KernelResult result;
  result.seconds = elapsed_seconds(start);
  result.bytes = 3.0 * static_cast<double>(elements) * sizeof(double) *
                 repeats;
  result.checksum = static_cast<std::uint64_t>(a[elements / 2]);
  return result;
}

KernelResult random_update(int log2_elements, std::uint64_t updates) {
  MSIM_REQUIRE(log2_elements >= 4 && log2_elements <= 30,
               "table exponent out of range");
  const std::size_t n = std::size_t{1} << log2_elements;
  std::vector<std::uint64_t> table(n);
  std::iota(table.begin(), table.end(), 0);

  // The classic GUPS recurrence: the next index comes from an LCG-ish
  // stream, the update XORs the stream value in.
  std::uint64_t ran = 0x123456789abcdef0ull;
  const auto start = Clock::now();
  for (std::uint64_t u = 0; u < updates; ++u) {
    ran = ran * 6364136223846793005ull + 1442695040888963407ull;
    table[ran & (n - 1)] ^= ran;
  }
  KernelResult result;
  result.seconds = elapsed_seconds(start);
  result.bytes = static_cast<double>(updates) * sizeof(std::uint64_t) * 2;
  result.checksum = table[ran & (n - 1)];
  return result;
}

KernelResult strided_read(std::size_t working_set_bytes,
                          std::size_t stride_elements, int repeats) {
  MSIM_REQUIRE(stride_elements >= 1, "stride must be >= 1");
  const std::size_t elements =
      std::max<std::size_t>(working_set_bytes / sizeof(double),
                            stride_elements);
  std::vector<double> data(elements, 1.0);

  double sum = 0.0;
  std::size_t touched = 0;
  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t offset = 0; offset < stride_elements; ++offset) {
      for (std::size_t i = offset; i < elements; i += stride_elements) {
        sum += data[i];
        ++touched;
      }
    }
  }
  KernelResult result;
  result.seconds = elapsed_seconds(start);
  result.bytes = static_cast<double>(touched) * sizeof(double);
  result.checksum = static_cast<std::uint64_t>(sum);
  return result;
}

KernelResult pointer_chase(std::size_t working_set_bytes,
                           std::uint64_t steps) {
  const std::size_t slots =
      std::max<std::size_t>(working_set_bytes / sizeof(std::uint64_t), 16);
  std::vector<std::uint64_t> next(slots);

  // Sattolo's algorithm: a single cycle covering every slot, so the chase
  // visits the whole working set with no shortcut.
  std::iota(next.begin(), next.end(), 0);
  Rng rng(0xc0ffee);
  for (std::size_t i = slots - 1; i > 0; --i) {
    const std::size_t j = rng.uniform_u64(i);  // j in [0, i)
    std::swap(next[i], next[j]);
  }

  std::uint64_t cursor = 0;
  const auto start = Clock::now();
  for (std::uint64_t s = 0; s < steps; ++s) {
    cursor = next[cursor];
  }
  KernelResult result;
  result.seconds = elapsed_seconds(start);
  result.bytes = static_cast<double>(steps) * sizeof(std::uint64_t);
  result.checksum = cursor;
  return result;
}

KernelResult branchy_read(std::size_t working_set_bytes, int repeats) {
  const std::size_t elements =
      std::max<std::size_t>(working_set_bytes / sizeof(std::uint64_t), 16);
  std::vector<std::uint64_t> data(elements);
  Rng rng(0xbadbeef);
  for (auto& value : data) value = rng();

  std::uint64_t accumulator = 0;
  std::size_t touched = 0;
  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < elements; ++i) {
      // The low bit of random data is unpredictable: ~50% mispredicts on
      // real hardware, exactly what ENHANCED MAPS induces.
      if (data[i] & 1) {
        accumulator += data[i];
      } else {
        accumulator ^= data[i] >> 1;
      }
      ++touched;
    }
  }
  KernelResult result;
  result.seconds = elapsed_seconds(start);
  result.bytes = static_cast<double>(touched) * sizeof(std::uint64_t);
  result.checksum = accumulator;
  return result;
}

std::vector<NativeMapsPoint> native_maps_sweep(
    const std::vector<std::size_t>& sizes) {
  std::vector<NativeMapsPoint> points;
  points.reserve(sizes.size());
  for (std::size_t size : sizes) {
    NativeMapsPoint point;
    point.working_set_bytes = size;
    // Budget the work so each point costs roughly the same wall time.
    const int repeats = static_cast<int>(
        std::max<std::size_t>(1, (64u << 20) / std::max<std::size_t>(size,
                                                                     1)));
    point.unit_bw = strided_read(size, 1, repeats).bandwidth();
    const std::uint64_t steps =
        std::max<std::uint64_t>(1u << 16, (4u << 20) / 8);
    point.chase_bw = pointer_chase(size, steps).bandwidth();
    points.push_back(point);
  }
  return points;
}

}  // namespace msim::probes::native
