#include "probes/probe_io.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "common/binary.hpp"
#include "common/check.hpp"

namespace msim::probes {

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    MSIM_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw precondition_error("bad number for '" + key + "': " + value);
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const auto parsed = std::stoull(value, &used);
    MSIM_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw precondition_error("bad integer for '" + key + "': " + value);
  }
}

void emit_curve(std::ostringstream& os, const std::string& name,
                const MapsCurve& curve) {
  os << name << ".stride = " << memsim::to_string(curve.stride) << '\n';
  os << name << ".dependency_limited = "
     << (curve.dependency_limited ? 1 : 0) << '\n';
  os << name << ".points = " << curve.points.size() << '\n';
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    os << name << ".point." << i << ".ws = "
       << curve.points[i].working_set_bytes << '\n';
    // Full precision: the curve is measurement data.
    os << name << ".point." << i << ".bw = ";
    os.precision(17);
    os << curve.points[i].bandwidth << '\n';
  }
}

memsim::StrideClass stride_from_string(const std::string& name) {
  for (auto stride : memsim::kAllStrideClasses) {
    if (memsim::to_string(stride) == name) return stride;
  }
  throw precondition_error("unknown stride class '" + name + "'");
}

MapsCurve take_curve(std::map<std::string, std::string>& pairs,
                     const std::string& name) {
  auto take = [&pairs](const std::string& key) {
    const auto it = pairs.find(key);
    MSIM_REQUIRE(it != pairs.end(), "missing key '" + key + "'");
    std::string value = it->second;
    pairs.erase(it);
    return value;
  };
  MapsCurve curve;
  curve.stride = stride_from_string(take(name + ".stride"));
  curve.dependency_limited =
      parse_u64(name, take(name + ".dependency_limited")) != 0;
  const std::uint64_t points = parse_u64(name, take(name + ".points"));
  for (std::uint64_t i = 0; i < points; ++i) {
    const std::string prefix = name + ".point." + std::to_string(i);
    MapsPoint point;
    point.working_set_bytes = parse_u64(prefix, take(prefix + ".ws"));
    point.bandwidth = parse_double(prefix, take(prefix + ".bw"));
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace

std::string to_text(const ProbeSet& set) {
  std::ostringstream os;
  os.precision(17);
  os << "# msim probe set\n";
  os << "machine = " << set.machine << '\n';
  os << "hpl_rmax = " << set.hpl_rmax << '\n';
  os << "stream_bw = " << set.stream_bw << '\n';
  os << "gups_bw = " << set.gups_bw << '\n';
  emit_curve(os, "maps_unit", set.maps_unit);
  emit_curve(os, "maps_random", set.maps_random);
  emit_curve(os, "maps_unit_dep", set.maps_unit_dep);
  emit_curve(os, "maps_random_dep", set.maps_random_dep);
  os.precision(17);
  os << "net.latency_s = " << set.net.latency_s << '\n';
  os << "net.bandwidth = " << set.net.bandwidth << '\n';
  os << "net.allreduce_small_s = " << set.net.allreduce_small_s << '\n';
  return os.str();
}

ProbeSet probe_set_from_text(const std::string& text) {
  std::map<std::string, std::string> pairs;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    MSIM_REQUIRE(eq != std::string::npos, "missing '=' in: " + line);
    const std::string key = trim(line.substr(0, eq));
    MSIM_REQUIRE(pairs.emplace(key, trim(line.substr(eq + 1))).second,
                 "duplicate key '" + key + "'");
  }
  auto take = [&pairs](const std::string& key) {
    const auto it = pairs.find(key);
    MSIM_REQUIRE(it != pairs.end(), "missing key '" + key + "'");
    std::string value = it->second;
    pairs.erase(it);
    return value;
  };

  ProbeSet set;
  set.machine = take("machine");
  set.hpl_rmax = parse_double("hpl_rmax", take("hpl_rmax"));
  set.stream_bw = parse_double("stream_bw", take("stream_bw"));
  set.gups_bw = parse_double("gups_bw", take("gups_bw"));
  set.maps_unit = take_curve(pairs, "maps_unit");
  set.maps_random = take_curve(pairs, "maps_random");
  set.maps_unit_dep = take_curve(pairs, "maps_unit_dep");
  set.maps_random_dep = take_curve(pairs, "maps_random_dep");
  set.net.latency_s = parse_double("net.latency_s", take("net.latency_s"));
  set.net.bandwidth = parse_double("net.bandwidth", take("net.bandwidth"));
  set.net.allreduce_small_s = parse_double("net.allreduce_small_s",
                                           take("net.allreduce_small_s"));
  MSIM_REQUIRE(pairs.empty(),
               "unknown key '" + pairs.begin()->first + "' in probe set");
  return set;
}

namespace {

void encode_curve(BinaryWriter& writer, const MapsCurve& curve) {
  writer.u8(static_cast<std::uint8_t>(curve.stride));
  writer.u8(curve.dependency_limited ? 1 : 0);
  writer.u64(curve.points.size());
  for (const MapsPoint& point : curve.points) {
    writer.u64(point.working_set_bytes);
    writer.f64(point.bandwidth);
  }
}

MapsCurve decode_curve(BinaryReader& reader) {
  MapsCurve curve;
  const std::uint8_t stride = reader.u8();
  MSIM_REQUIRE(stride < memsim::kAllStrideClasses.size(),
               "bad stride class " + std::to_string(stride));
  curve.stride = static_cast<memsim::StrideClass>(stride);
  const std::uint8_t dep = reader.u8();
  MSIM_REQUIRE(dep <= 1, "bad dependency flag");
  curve.dependency_limited = dep != 0;
  const std::uint64_t points = reader.u64();
  // Guards a corrupt count from turning into a giant allocation before the
  // per-point reads hit the truncation check.
  MSIM_REQUIRE(points <= reader.remaining() / 16,
               "curve point count exceeds payload");
  curve.points.reserve(points);
  for (std::uint64_t i = 0; i < points; ++i) {
    MapsPoint point;
    point.working_set_bytes = reader.u64();
    point.bandwidth = reader.f64();
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace

std::string to_binary(const ProbeSet& set) {
  // Chunk 0 carries every scalar; chunks 1-4 are the four MAPS sweeps in
  // declaration order. The sweeps dominate the payload, and giving each
  // its own checksummed, 8-byte-aligned chunk is what lets a mapped
  // artifact be validated and decoded sweep-by-sweep in place.
  std::vector<std::string> chunks;
  chunks.reserve(5);
  BinaryWriter scalars;
  scalars.str(set.machine);
  scalars.f64(set.hpl_rmax);
  scalars.f64(set.stream_bw);
  scalars.f64(set.gups_bw);
  scalars.f64(set.net.latency_s);
  scalars.f64(set.net.bandwidth);
  scalars.f64(set.net.allreduce_small_s);
  chunks.push_back(scalars.take());
  for (const MapsCurve* curve : {&set.maps_unit, &set.maps_random,
                                 &set.maps_unit_dep, &set.maps_random_dep}) {
    BinaryWriter writer;
    encode_curve(writer, *curve);
    chunks.push_back(writer.take());
  }
  return frame_chunked_payload(ArtifactKind::ProbeSet, chunks);
}

std::string to_binary_v1(const ProbeSet& set) {
  BinaryWriter writer;
  writer.str(set.machine);
  writer.f64(set.hpl_rmax);
  writer.f64(set.stream_bw);
  writer.f64(set.gups_bw);
  encode_curve(writer, set.maps_unit);
  encode_curve(writer, set.maps_random);
  encode_curve(writer, set.maps_unit_dep);
  encode_curve(writer, set.maps_random_dep);
  writer.f64(set.net.latency_s);
  writer.f64(set.net.bandwidth);
  writer.f64(set.net.allreduce_small_s);
  return frame_payload(ArtifactKind::ProbeSet, writer.take());
}

namespace {

ProbeSet probe_set_from_chunked(std::string_view data) {
  const ChunkedFrameView view(ArtifactKind::ProbeSet, data);
  MSIM_REQUIRE(view.chunk_count() == 5,
               "probe set frame has " + std::to_string(view.chunk_count()) +
                   " chunks, expected 5");
  ProbeSet set;
  BinaryReader scalars(view.chunk(0));
  set.machine = scalars.str();
  set.hpl_rmax = scalars.f64();
  set.stream_bw = scalars.f64();
  set.gups_bw = scalars.f64();
  set.net.latency_s = scalars.f64();
  set.net.bandwidth = scalars.f64();
  set.net.allreduce_small_s = scalars.f64();
  scalars.expect_done();
  MapsCurve* const curves[] = {&set.maps_unit, &set.maps_random,
                               &set.maps_unit_dep, &set.maps_random_dep};
  for (std::size_t i = 0; i < 4; ++i) {
    BinaryReader reader(view.chunk(i + 1));
    *curves[i] = decode_curve(reader);
    reader.expect_done();
  }
  return set;
}

}  // namespace

ProbeSet probe_set_from_binary(std::string_view data) {
  if (frame_version(data) == 2) return probe_set_from_chunked(data);
  // v1 — and anything else framed, so unframe_payload produces the
  // precise "unsupported frame version" / kind / checksum error.
  const std::string payload = unframe_payload(ArtifactKind::ProbeSet, data);
  BinaryReader reader(payload);
  ProbeSet set;
  set.machine = reader.str();
  set.hpl_rmax = reader.f64();
  set.stream_bw = reader.f64();
  set.gups_bw = reader.f64();
  set.maps_unit = decode_curve(reader);
  set.maps_random = decode_curve(reader);
  set.maps_unit_dep = decode_curve(reader);
  set.maps_random_dep = decode_curve(reader);
  set.net.latency_s = reader.f64();
  set.net.bandwidth = reader.f64();
  set.net.allreduce_small_s = reader.f64();
  reader.expect_done();
  return set;
}

ProbeSet probe_set_from_artifact(std::string_view data) {
  return is_framed(data) ? probe_set_from_binary(data)
                         : probe_set_from_text(std::string(data));
}

}  // namespace msim::probes
