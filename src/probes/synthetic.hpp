// Synthetic probe implementations.
//
// Each probe builds a tiny single-block workload and measures it through the
// *same* detailed executor applications run through (contention and TLB
// included — a real STREAM run on a full node experiences both), then
// reports a rate. Probes never read machine parameters directly except via
// the executed measurement; the one exception is HPL, whose result is by
// construction the machine's measured Rmax (see hpl_probe).
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_config.hpp"
#include "probes/probe_set.hpp"

namespace msim::probes {

/// HPL: per-processor Rmax in flops/s.
[[nodiscard]] double hpl_probe(const machine::MachineConfig& machine);

/// STREAM: unit-stride bandwidth from main memory, bytes/s.
[[nodiscard]] double stream_probe(const machine::MachineConfig& machine);

/// GUPS: random-access bandwidth from main memory, bytes/s.
[[nodiscard]] double gups_probe(const machine::MachineConfig& machine);

/// Default MAPS sweep sizes: 2 KiB .. 256 MiB, two points per octave.
[[nodiscard]] std::vector<std::uint64_t> default_maps_sizes();

/// MEMBENCH MAPS: bandwidth versus working-set size for one stride class.
/// `dependency_limited` selects the ENHANCED MAPS variant (induced serial
/// dependence plus inner branch).
[[nodiscard]] MapsCurve maps_probe(const machine::MachineConfig& machine,
                                   memsim::StrideClass stride,
                                   bool dependency_limited,
                                   const std::vector<std::uint64_t>& sizes =
                                       default_maps_sizes());

/// NETBENCH: ping-pong latency and bandwidth plus reference all_reduce.
[[nodiscard]] NetbenchResult netbench_probe(
    const machine::MachineConfig& machine);

/// Run the whole suite on a machine.
[[nodiscard]] ProbeSet run_probe_suite(const machine::MachineConfig& machine);

/// Run the suite on every machine in a list.
[[nodiscard]] std::vector<ProbeSet> run_probe_suites(
    const std::vector<machine::MachineConfig>& machines);

}  // namespace msim::probes
