// Text (de)serialization for probe sets.
//
// A ProbeSet is the machine-side artifact of the methodology: run the
// suite once per candidate system, archive the result, and convolve any
// number of application signatures against it later. Lossless for
// everything the convolver and simple metrics consume.
#pragma once

#include <string>

#include "probes/probe_set.hpp"

namespace msim::probes {

/// Serialize a probe set to text.
[[nodiscard]] std::string to_text(const ProbeSet& set);

/// Parse a probe set; throws precondition_error on malformed input.
[[nodiscard]] ProbeSet probe_set_from_text(const std::string& text);

}  // namespace msim::probes
