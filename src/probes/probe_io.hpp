// Text and binary (de)serialization for probe sets.
//
// A ProbeSet is the machine-side artifact of the methodology: run the
// suite once per candidate system, archive the result, and convolve any
// number of application signatures against it later. Lossless for
// everything the convolver and simple metrics consume.
//
// Two interchangeable encodings:
//   text    — the human-readable `dotted.key = value` archive format
//             (docs/FORMATS.md), what `msim probe --out` writes;
//   binary  — a compact framed encoding (common/binary.hpp: magic,
//             version, checksum, little-endian payload) used by the
//             artifact cache, where the four MAPS curves dominate the
//             payload and a text round-trip is pure overhead.
// Both round-trip bitwise (doubles travel as IEEE-754 bit patterns);
// probe_set_from_artifact() sniffs the frame magic and accepts either,
// which is what lets v1 text artifacts keep loading after the cache
// switched to binary.
#pragma once

#include <string>

#include "probes/probe_set.hpp"

namespace msim::probes {

/// Serialize a probe set to text.
[[nodiscard]] std::string to_text(const ProbeSet& set);

/// Parse a probe set; throws precondition_error on malformed input.
[[nodiscard]] ProbeSet probe_set_from_text(const std::string& text);

/// Serialize a probe set to the framed binary artifact encoding.
[[nodiscard]] std::string to_binary(const ProbeSet& set);

/// Decode a framed binary probe set; throws precondition_error on a bad
/// frame (wrong magic/version/kind, truncation, checksum mismatch) or a
/// malformed payload.
[[nodiscard]] ProbeSet probe_set_from_binary(const std::string& data);

/// Decode either encoding: binary when the frame magic matches, else v1
/// text. Throws precondition_error when neither parses.
[[nodiscard]] ProbeSet probe_set_from_artifact(const std::string& data);

}  // namespace msim::probes
