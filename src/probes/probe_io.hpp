// Text and binary (de)serialization for probe sets.
//
// A ProbeSet is the machine-side artifact of the methodology: run the
// suite once per candidate system, archive the result, and convolve any
// number of application signatures against it later. Lossless for
// everything the convolver and simple metrics consume.
//
// Three interchangeable encodings:
//   text        — the human-readable `dotted.key = value` archive format
//                 (docs/FORMATS.md), what `msim probe --out` writes;
//   binary v1   — a compact monolithic framed encoding (common/binary.hpp
//                 frame v1: magic, version, checksum, one little-endian
//                 payload), the cache's original binary format;
//   binary v2   — the chunked frame (frame v2): one scalar chunk (machine
//                 name, HPL/STREAM/GUPS rates, NETBENCH parameters) plus
//                 one chunk per MAPS sweep, each independently
//                 checksummed and 8-byte aligned, so a memory-mapped
//                 artifact decodes in place without a contiguous string
//                 copy. What to_binary and the cache now write.
// All round-trip bitwise (doubles travel as IEEE-754 bit patterns);
// probe_set_from_artifact() sniffs the frame magic and version and
// accepts any of the three, which is what lets v1 text and v1 binary
// artifacts keep loading after the cache switched formats — and lets the
// pipeline upgrade them to v2 on hit.
#pragma once

#include <string>
#include <string_view>

#include "probes/probe_set.hpp"

namespace msim::probes {

/// Serialize a probe set to text.
[[nodiscard]] std::string to_text(const ProbeSet& set);

/// Parse a probe set; throws precondition_error on malformed input.
[[nodiscard]] ProbeSet probe_set_from_text(const std::string& text);

/// Serialize a probe set to the chunked (frame v2) binary artifact
/// encoding — the cache's current on-disk format.
[[nodiscard]] std::string to_binary(const ProbeSet& set);

/// Serialize a probe set to the monolithic frame v1 encoding. Kept for
/// migration coverage (a v1 artifact must keep loading and upgrade to v2
/// on hit); new artifacts are written with to_binary.
[[nodiscard]] std::string to_binary_v1(const ProbeSet& set);

/// Decode a framed binary probe set (v1 monolithic or v2 chunked,
/// dispatched on the frame version); throws precondition_error on a bad
/// frame (wrong magic/version/kind, truncation, checksum mismatch) or a
/// malformed payload. Takes a view so a memory-mapped artifact decodes
/// without an intermediate copy.
[[nodiscard]] ProbeSet probe_set_from_binary(std::string_view data);

/// Decode any encoding: binary when the frame magic matches (either
/// frame version), else v1 text. Throws precondition_error when none
/// parses.
[[nodiscard]] ProbeSet probe_set_from_artifact(std::string_view data);

}  // namespace msim::probes
