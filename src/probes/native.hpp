// Native host implementations of the probe kernels.
//
// The study runs its probes against machine *models*; these are the same
// kernels implemented for real silicon, demonstrating that the probe suite
// (STREAM triad, GUPS-style random update, MAPS working-set sweeps, the
// ENHANCED dependency/branch variants, and a serial pointer chase) is
// portable to actual hardware. They are used by the native_probes bench and
// the maps_explorer example; nothing in the reproduction pipeline depends
// on them.
#pragma once

#include <cstdint>
#include <vector>

namespace msim::probes::native {

/// Result of one native kernel run.
struct KernelResult {
  double seconds = 0.0;
  double bytes = 0.0;
  std::uint64_t checksum = 0;  ///< defeats dead-code elimination

  [[nodiscard]] double bandwidth() const {
    return seconds > 0.0 ? bytes / seconds : 0.0;
  }
};

/// STREAM triad a[i] = b[i] + s*c[i] over arrays of `elements` doubles,
/// repeated `repeats` times. Traffic counted as 3 arrays per sweep.
[[nodiscard]] KernelResult stream_triad(std::size_t elements, int repeats);

/// GUPS-style random XOR update over a table of 2^log2_elements u64s.
[[nodiscard]] KernelResult random_update(int log2_elements,
                                         std::uint64_t updates);

/// Strided read-sum over a working set; stride in elements (1 = unit).
[[nodiscard]] KernelResult strided_read(std::size_t working_set_bytes,
                                        std::size_t stride_elements,
                                        int repeats);

/// Dependent (pointer-chase) traversal of a shuffled ring covering the
/// working set — the latency-bound analog ENHANCED MAPS measures.
[[nodiscard]] KernelResult pointer_chase(std::size_t working_set_bytes,
                                         std::uint64_t steps);

/// Strided read with an unpredictable inner branch taken with probability
/// ~1/2 — the branch component of ENHANCED MAPS.
[[nodiscard]] KernelResult branchy_read(std::size_t working_set_bytes,
                                        int repeats);

/// A MAPS sweep on the host: bandwidth per working-set size.
struct NativeMapsPoint {
  std::size_t working_set_bytes = 0;
  double unit_bw = 0.0;
  double chase_bw = 0.0;
};
[[nodiscard]] std::vector<NativeMapsPoint> native_maps_sweep(
    const std::vector<std::size_t>& sizes);

}  // namespace msim::probes::native
