#include "probes/probe_set.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace msim::probes {

double MapsCurve::bandwidth_at(std::uint64_t working_set_bytes) const {
  MSIM_REQUIRE(!points.empty(), "MAPS curve has no points");
  MSIM_REQUIRE(working_set_bytes > 0, "working set must be positive");

  if (working_set_bytes <= points.front().working_set_bytes) {
    return points.front().bandwidth;
  }
  if (working_set_bytes >= points.back().working_set_bytes) {
    return points.back().bandwidth;
  }
  const auto upper = std::lower_bound(
      points.begin(), points.end(), working_set_bytes,
      [](const MapsPoint& point, std::uint64_t ws) {
        return point.working_set_bytes < ws;
      });
  const auto lower = upper - 1;
  // Log-log interpolation: bandwidth plateaus and cliffs are octave-shaped.
  const double x0 = std::log2(static_cast<double>(lower->working_set_bytes));
  const double x1 = std::log2(static_cast<double>(upper->working_set_bytes));
  const double x = std::log2(static_cast<double>(working_set_bytes));
  const double t = (x - x0) / (x1 - x0);
  const double y0 = std::log2(lower->bandwidth);
  const double y1 = std::log2(upper->bandwidth);
  return std::exp2(y0 + t * (y1 - y0));
}

}  // namespace msim::probes
