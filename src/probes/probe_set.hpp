// Probe results: what the study is allowed to know about a target machine.
//
// Real procurement benchmarking runs HPL, STREAM, GUPS, MEMBENCH MAPS and
// NETBENCH on each candidate system; every prediction metric in the paper
// consumes only these numbers (plus the application trace). ProbeSet is the
// exact information boundary: nothing else about the machine model may leak
// into a predictor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/access_types.hpp"

namespace msim::probes {

/// One sampled point of a MAPS bandwidth curve.
struct MapsPoint {
  std::uint64_t working_set_bytes = 0;
  double bandwidth = 0.0;  ///< bytes/s
};

/// A MAPS curve: bandwidth versus working-set size for one access flavor.
struct MapsCurve {
  memsim::StrideClass stride = memsim::StrideClass::Unit;
  bool dependency_limited = false;  ///< ENHANCED MAPS variant
  std::vector<MapsPoint> points;    ///< ascending working-set order

  /// Log-log interpolated bandwidth lookup (clamped at the ends).
  [[nodiscard]] double bandwidth_at(std::uint64_t working_set_bytes) const;
};

/// NETBENCH results: ping-pong latency/bandwidth plus a reference
/// all_reduce measurement (the "all_reduce test within NETBENCH" the paper
/// uses for the balanced rating).
struct NetbenchResult {
  double latency_s = 0.0;     ///< zero-byte one-way ping-pong latency
  double bandwidth = 0.0;     ///< large-message ping-pong bandwidth, bytes/s
  double allreduce_small_s = 0.0;  ///< 8-byte allreduce at 64 ranks, seconds
};

/// Full probe suite output for one machine.
struct ProbeSet {
  std::string machine;

  double hpl_rmax = 0.0;   ///< flops/s per processor
  double stream_bw = 0.0;  ///< bytes/s, unit stride from main memory
  double gups_bw = 0.0;    ///< bytes/s, random access from main memory

  MapsCurve maps_unit;
  MapsCurve maps_random;
  // ENHANCED MAPS: the same sweeps with an induced loop-carried dependence
  // and inner branch (paper Section 3, Metric #9).
  MapsCurve maps_unit_dep;
  MapsCurve maps_random_dep;

  NetbenchResult net;
};

}  // namespace msim::probes
