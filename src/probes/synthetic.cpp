#include "probes/synthetic.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"
#include "common/units.hpp"
#include "netsim/cost_model.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "simulate/executor.hpp"
#include "workload/basic_block.hpp"

namespace msim::probes {

namespace {

using memsim::DependencyClass;
using memsim::StrideClass;

/// Executor options for probe runs: a probe is averaged over many
/// repetitions (no run-to-run noise) and too simple to suffer app-level
/// system inefficiency, but it does experience contention and the TLB.
simulate::ExecutorOptions probe_options() {
  simulate::ExecutorOptions options;
  options.apply_noise = false;
  options.apply_system_efficiency = false;
  return options;
}

/// Measure the wall time of a one-block, one-timestep workload.
double measure_block(const machine::MachineConfig& machine,
                     workload::BasicBlock block,
                     const simulate::ExecutorOptions& options) {
  workload::Phase phase;
  phase.name = "probe";
  phase.blocks.push_back(std::move(block));
  workload::AppModel app;
  app.name = "probe";
  app.nprocs = 1;
  app.timesteps = 1;
  app.phases.push_back(std::move(phase));
  return simulate::execute(app, machine, options).wall_seconds;
}

/// A memory-only sweep over `working_set` with the given access flavor;
/// returns measured bandwidth in bytes/s.
double measure_bandwidth(const machine::MachineConfig& machine,
                         std::uint64_t working_set, StrideClass stride,
                         bool dependency_limited,
                         const simulate::ExecutorOptions& options) {
  workload::MemoryMix mix;
  switch (stride) {
    case StrideClass::Unit:
      mix = {.unit = 1.0, .short_ = 0.0, .random = 0.0,
             .short_stride_elements = 2};
      break;
    case StrideClass::Short:
      mix = {.unit = 0.0, .short_ = 1.0, .random = 0.0,
             .short_stride_elements = 4};
      break;
    case StrideClass::Random:
      mix = {.unit = 0.0, .short_ = 0.0, .random = 1.0,
             .short_stride_elements = 2};
      break;
  }
  // Enough traffic to amortize; bandwidth is traffic / time.
  const std::uint64_t refs = std::max<std::uint64_t>(
      working_set / 8, std::uint64_t{1} << 16);
  workload::BasicBlock block{
      .name = "probe/maps",
      .flops_per_iteration = 0,
      .refs_per_iteration = 8,
      .element_bytes = 8,
      .iterations = refs / 8,
      .mix = mix,
      .working_set_bytes = working_set,
      .dependency = dependency_limited ? DependencyClass::Serial
                                       : DependencyClass::Independent,
      // ENHANCED MAPS also places a light data-dependent branch in the
      // inner loop, matching typical dependence-limited app loops.
      .branch_density = dependency_limited ? 0.2 : 0.0,
      .ilp_efficiency = 0.9};
  const double bytes =
      static_cast<double>(block.bytes_per_timestep());
  const double seconds = measure_block(machine, block, options);
  MSIM_CHECK(seconds > 0.0, "probe measured zero time");
  return bytes / seconds;
}

/// Working set that is decisively "main memory" for this machine.
std::uint64_t main_memory_working_set(const machine::MachineConfig& machine) {
  return std::max<std::uint64_t>(64 * MiB, machine.total_cache_bytes() * 16);
}

double hpl_probe_on(const machine::MachineConfig& machine,
                    const simulate::ExecutorOptions& options) {
  // HPL is compute-bound dense LU; its achieved fraction of peak *is* the
  // machine's measured HPL efficiency, so the probe executes a flop-only
  // block at that ILP efficiency and reports the achieved rate.
  const std::uint64_t flops = 1ull << 32;
  workload::BasicBlock block{
      .name = "probe/hpl",
      .flops_per_iteration = 1ull << 20,
      .refs_per_iteration = 1,
      .element_bytes = 8,
      .iterations = flops >> 20,
      .mix = {.unit = 1.0, .short_ = 0.0, .random = 0.0,
              .short_stride_elements = 2},
      .working_set_bytes = 4 * KiB,
      .dependency = DependencyClass::Independent,
      .branch_density = 0.0,
      .ilp_efficiency = machine.cpu.hpl_efficiency};
  const double seconds = measure_block(machine, block, options);
  return static_cast<double>(flops) / seconds;
}

/// One suite's bandwidth measurements, shared across probes. Two savings,
/// both bitwise-invisible in the results:
///  * the node-contention prefix (a full MachineConfig copy per executed
///    measurement) is applied once up front and the executor is told not
///    to re-derive it;
///  * each distinct (working set, stride, dependency) point is measured
///    once. The STREAM and GUPS main-memory points land on the MAPS
///    sweep grid for most machines, so the sweeps stop recomputing the
///    suite's most expensive measurements.
class SuiteRunner {
 public:
  explicit SuiteRunner(const machine::MachineConfig& machine)
      : contended_(simulate::apply_contention(machine)) {
    options_ = probe_options();
    options_.apply_contention = false;  // already folded into contended_
    // A full suite touches ~150 distinct points; one up-front bucket
    // allocation instead of growth rehashes mid-sweep.
    memo_.reserve(256);
  }

  double bandwidth(std::uint64_t working_set, StrideClass stride,
                   bool dependency_limited) {
    static obs::Counter& hits =
        obs::Registry::instance().counter("probes.memo.hits");
    static obs::Counter& misses =
        obs::Registry::instance().counter("probes.memo.misses");
    const std::uint64_t key = working_set * 8 +
                              static_cast<std::uint64_t>(stride) * 2 +
                              (dependency_limited ? 1 : 0);
    const auto found = memo_.find(key);
    if (found != memo_.end()) {
      hits.add();
      return found->second;
    }
    misses.add();
    const double bw = measure_bandwidth(contended_, working_set, stride,
                                        dependency_limited, options_);
    memo_.emplace(key, bw);
    return bw;
  }

  MapsCurve maps(StrideClass stride, bool dependency_limited,
                 const std::vector<std::uint64_t>& sizes) {
    MSIM_REQUIRE(!sizes.empty(), "MAPS needs at least one size");
    MapsCurve curve;
    curve.stride = stride;
    curve.dependency_limited = dependency_limited;
    for (std::uint64_t size : sizes) {
      curve.points.push_back(MapsPoint{
          .working_set_bytes = size,
          .bandwidth = bandwidth(size, stride, dependency_limited)});
    }
    return curve;
  }

  const machine::MachineConfig& contended() const { return contended_; }
  const simulate::ExecutorOptions& options() const { return options_; }

 private:
  machine::MachineConfig contended_;
  simulate::ExecutorOptions options_;
  std::unordered_map<std::uint64_t, double> memo_;
};

}  // namespace

double hpl_probe(const machine::MachineConfig& machine) {
  return hpl_probe_on(machine, probe_options());
}

double stream_probe(const machine::MachineConfig& machine) {
  return measure_bandwidth(machine, main_memory_working_set(machine),
                           StrideClass::Unit, false, probe_options());
}

double gups_probe(const machine::MachineConfig& machine) {
  return measure_bandwidth(machine, main_memory_working_set(machine),
                           StrideClass::Random, false, probe_options());
}

std::vector<std::uint64_t> default_maps_sizes() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t size = 2 * KiB; size <= 256 * MiB; size *= 2) {
    sizes.push_back(size);
    const std::uint64_t half_octave = size + size / 2;
    if (half_octave <= 256 * MiB) sizes.push_back(half_octave);
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

MapsCurve maps_probe(const machine::MachineConfig& machine,
                     memsim::StrideClass stride, bool dependency_limited,
                     const std::vector<std::uint64_t>& sizes) {
  MSIM_REQUIRE(!sizes.empty(), "MAPS needs at least one size");
  MapsCurve curve;
  curve.stride = stride;
  curve.dependency_limited = dependency_limited;
  for (std::uint64_t size : sizes) {
    curve.points.push_back(MapsPoint{
        .working_set_bytes = size,
        .bandwidth = measure_bandwidth(machine, size, stride,
                                       dependency_limited,
                                       probe_options())});
  }
  return curve;
}

NetbenchResult netbench_probe(const machine::MachineConfig& machine) {
  // A dedicated two-rank ping-pong: no node sharing — the probe cannot see
  // the NIC contention applications will create.
  NetbenchResult result;
  result.latency_s = netsim::pt2pt_time(machine.net, 0, 1.0);
  const std::uint64_t big = 4 * MiB;
  const double big_time = netsim::pt2pt_time(machine.net, big, 1.0);
  result.bandwidth = static_cast<double>(big) / big_time;
  result.allreduce_small_s = netsim::collective_time(
      machine.net, netsim::CommType::AllReduce, 8, 64, 1.0);
  return result;
}

ProbeSet run_probe_suite(const machine::MachineConfig& machine) {
  machine::validate(machine);
  static obs::Counter& suites =
      obs::Registry::instance().counter("probes.suites");
  suites.add();
  obs::Span suite_span("probe-suite", "probes");
  suite_span.arg("machine", machine.name);

  // One span per probe so stage imbalance inside a suite is visible in the
  // trace (the MAPS sweeps dominate).
  auto probe = [&machine](const char* name, auto run) {
    // Every caller passes a literal probe name ("hpl", "stream", ...);
    // the span set stays statically enumerable.
    // msim-lint: allow(obs.name-literal)
    obs::Span span(name, "probes");
    span.arg("machine", machine.name);
    return run();
  };
  // Shared measurement state for the whole suite: the contention prefix is
  // applied once and repeated bandwidth points are memoized (the suite's
  // probes agree on what a measurement at a given point is, so reuse is
  // bitwise-invisible in the ProbeSet).
  SuiteRunner runner(machine);
  const std::vector<std::uint64_t> sizes = default_maps_sizes();
  const std::uint64_t main_ws = main_memory_working_set(machine);

  ProbeSet set;
  set.machine = machine.name;
  set.hpl_rmax = probe("hpl", [&] {
    return hpl_probe_on(runner.contended(), runner.options());
  });
  set.stream_bw = probe("stream", [&] {
    return runner.bandwidth(main_ws, StrideClass::Unit, false);
  });
  set.gups_bw = probe("gups", [&] {
    return runner.bandwidth(main_ws, StrideClass::Random, false);
  });
  set.maps_unit = probe("maps:unit", [&] {
    return runner.maps(StrideClass::Unit, false, sizes);
  });
  set.maps_random = probe("maps:random", [&] {
    return runner.maps(StrideClass::Random, false, sizes);
  });
  set.maps_unit_dep = probe("maps:unit-dep", [&] {
    return runner.maps(StrideClass::Unit, true, sizes);
  });
  set.maps_random_dep = probe("maps:random-dep", [&] {
    return runner.maps(StrideClass::Random, true, sizes);
  });
  set.net = probe("netbench", [&] { return netbench_probe(machine); });
  return set;
}

std::vector<ProbeSet> run_probe_suites(
    const std::vector<machine::MachineConfig>& machines) {
  std::vector<ProbeSet> sets;
  sets.reserve(machines.size());
  for (const auto& machine : machines) {
    sets.push_back(run_probe_suite(machine));
  }
  return sets;
}

}  // namespace msim::probes
