// Client <-> daemon protocol for the resident prediction service.
//
// `msim serve` holds the paper study resident — artifact cache opened
// once, probe artifacts memory-mapped — and answers prediction queries
// over a line-framed JSON protocol on a Unix socket or stdin/stdout. The
// wire conventions are the distributed worker protocol's
// (pipeline/dist_protocol.hpp): one JSON object per line (newlines inside
// JSON strings are escaped, so '\n' is an unambiguous frame boundary),
// 64-bit integers ride as decimal strings (JSON numbers are doubles and
// would round past 2^53), and doubles render as %.17g so every predicted
// second round-trips bitwise.
//
//   request:  {"op":"predict","id":N,"app":"...","nprocs":K,
//              "machine":"...","metric":"9"}      (metric optional = all)
//             {"op":"ping","id":N}
//             {"op":"stats","id":N}
//             {"op":"shutdown","id":N}
//   reply:    {"id":N,"status":"ok","result":{...}}     (predict)
//             {"id":N,"status":"ok"}                    (ping)
//             {"id":N,"status":"ok","stats":{...}}      (stats)
//             {"id":N,"status":"bye"}                   (shutdown ack)
//             {"id":N,"status":"error","message":"..."}
//
// The predict result object is exactly what `msim predict --json` prints,
// so a served reply is byte-comparable against the batch CLI — the parity
// CI checks and the serve_traffic bench rely on that identity. A request
// line that does not parse, names an unknown op, or is missing fields is
// answered with a status:"error" reply (id 0 when even the id is
// unrecoverable); the connection stays usable. See docs/FORMATS.md
// ("Serve request/response schema") for the full schema.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "metrics/metric_set.hpp"

namespace msim::metrics {
class Study;
}  // namespace msim::metrics

namespace msim::serve {

/// One parsed request line.
struct ServeRequest {
  enum class Op { Predict, Ping, Stats, Shutdown };
  Op op = Op::Ping;
  std::uint64_t id = 0;
  // Predict fields; default-empty for the other ops.
  std::string app;
  int nprocs = 0;
  std::string machine;
  std::optional<std::string> metric;  ///< row label / 1..9; absent = all
};

/// Request line (newline-terminated) for clients: the bench traffic
/// generator and tests.
[[nodiscard]] std::string request_line(const ServeRequest& request);

/// Parse a request from its JSON object form. Throws
/// msim::precondition_error on an unknown op, a missing or mistyped
/// field, or a non-positive nprocs.
[[nodiscard]] ServeRequest request_from_json(const json::Value& value);

/// Metric tokens accepted on the wire and the CLI: a row label ("1-S",
/// "B-E") or a bare paper-metric number ("1".."9"). Throws
/// msim::precondition_error on anything else.
[[nodiscard]] metrics::Metric metric_from_token(const std::string& token);

/// The predict result object: app/nprocs/machine echo, the "actual"
/// (detailed-simulator) seconds, and one {metric,seconds,error_pct} row
/// per requested metric, all doubles %.17g. Shared verbatim by the serve
/// reply and `msim predict --json`. Throws when the study does not hold
/// the configuration (unknown app/machine, wrong count).
[[nodiscard]] std::string predict_result_json(
    const metrics::Study& study, const std::string& app, int nprocs,
    const std::string& machine,
    const std::vector<metrics::Metric>& metric_list);

// --- reply construction ------------------------------------------------

[[nodiscard]] std::string ok_reply(std::uint64_t id);
[[nodiscard]] std::string predict_reply(std::uint64_t id,
                                        const std::string& result_json);
/// `stats_json` is a pre-rendered JSON object (u64s as decimal strings).
[[nodiscard]] std::string stats_reply(std::uint64_t id,
                                      const std::string& stats_json);
[[nodiscard]] std::string bye_reply(std::uint64_t id);
[[nodiscard]] std::string error_reply(std::uint64_t id,
                                      const std::string& message);

}  // namespace msim::serve
