#include "serve/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>

#include "common/json.hpp"
#include "common/parse.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/scheduler.hpp"
#include "serve/serve_protocol.hpp"

namespace msim::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Handles resolved once; updates are relaxed atomic adds after that.
struct ServeMetrics {
  obs::Counter& queries =
      obs::Registry::instance().counter("serve.queries");
  obs::Counter& errors = obs::Registry::instance().counter("serve.errors");
  obs::Counter& batches =
      obs::Registry::instance().counter("serve.batch.count");
  obs::Histogram& batch_size =
      obs::Registry::instance().histogram("serve.batch.size");
  obs::Histogram& latency =
      obs::Registry::instance().histogram("serve.latency.seconds");
};

ServeMetrics& metrics() {
  static ServeMetrics* const handles = new ServeMetrics();
  return *handles;
}

/// The stats-op payload: service counters plus the cache read-path
/// counters that prove residency (mmap hits instead of string loads).
/// u64s ride as decimal strings per the wire conventions.
// msim-lint: proto(serve.reply, writer)
std::string stats_json() {
  auto& registry = obs::Registry::instance();
  auto member = [](const char* key, std::uint64_t value, bool comma) {
    std::string out;
    if (comma) out += ',';
    out += '"';
    out += key;
    out += "\":\"";
    out += std::to_string(value);
    out += '"';
    return out;
  };
  std::string out = "{";
  out += member("queries", metrics().queries.value(), false);
  out += member("errors", metrics().errors.value(), true);
  out += member("batches", metrics().batches.value(), true);
  out += member("cache_hits", registry.counter("cache.hit").value(), true);
  out += member("map_count", registry.counter("cache.map.count").value(),
                true);
  out += member("map_bytes", registry.counter("cache.map.bytes").value(),
                true);
  out += '}';
  return out;
}

bool write_all(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    // MSG_NOSIGNAL: a client that hung up yields EPIPE, not SIGPIPE.
    const ssize_t n = ::send(fd, text.data() + written,
                             text.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: the client is gone
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ServeOptions ServeOptions::from_env() {
  ServeOptions options;
  options.threads = env_unsigned("MSIM_SERVE_THREADS", options.threads);
  const std::uint64_t batch = env_u64(
      "MSIM_SERVE_MAX_BATCH", static_cast<std::uint64_t>(options.max_batch));
  if (batch > 0) options.max_batch = static_cast<std::size_t>(batch);
  return options;
}

PredictionService::PredictionService(metrics::Study study, unsigned threads,
                                     std::size_t max_batch)
    : study_(std::move(study)),
      threads_(threads),
      max_batch_(max_batch > 0 ? max_batch : 1) {}

Answer PredictionService::answer_line(const std::string& line) const {
  const bool timed = obs::collecting();
  const auto start = timed ? Clock::now() : Clock::time_point{};
  obs::Span span("serve:query", "serve");
  metrics().queries.add();

  Answer answer;
  std::uint64_t id = 0;
  try {
    const json::Value value = json::parse(line);
    const ServeRequest request = request_from_json(value);
    id = request.id;
    switch (request.op) {
      case ServeRequest::Op::Predict: {
        std::vector<metrics::Metric> metric_list;
        if (request.metric) {
          metric_list = {metric_from_token(*request.metric)};
        } else {
          metric_list = metrics::all_metrics();
        }
        answer.line = predict_reply(
            request.id,
            predict_result_json(study_, request.app, request.nprocs,
                                request.machine, metric_list));
        break;
      }
      case ServeRequest::Op::Ping:
        answer.line = ok_reply(request.id);
        break;
      case ServeRequest::Op::Stats:
        answer.line = stats_reply(request.id, stats_json());
        break;
      case ServeRequest::Op::Shutdown:
        answer.line = bye_reply(request.id);
        answer.shutdown = true;
        break;
    }
  } catch (const std::exception& error) {
    // Malformed line, unknown op/metric, or a configuration the study
    // does not hold: the connection stays usable, the error rides back.
    metrics().errors.add();
    answer.line = error_reply(id, error.what());
  }
  if (timed) metrics().latency.record(seconds_since(start));
  return answer;
}

std::vector<Answer> PredictionService::answer_batch(
    const std::vector<std::string>& lines) const {
  obs::Span span("serve:batch", "serve");
  metrics().batches.add();
  metrics().batch_size.record(static_cast<double>(lines.size()));
  std::vector<Answer> replies(lines.size());
  pipeline::run_indexed(
      lines.size(), threads_,
      [&](std::size_t i) { replies[i] = answer_line(lines[i]); }, "serve");
  return replies;
}

int run_stdio_server(std::FILE* in, std::FILE* out,
                     const PredictionService& service) {
  char* buffer = nullptr;
  std::size_t capacity = 0;
  int code = 0;
  while (true) {
    const ssize_t length = ::getline(&buffer, &capacity, in);
    if (length < 0) break;  // EOF: a vanished client is a normal end
    std::string line(buffer, static_cast<std::size_t>(length));
    if (!line.empty() && line.back() == '\n') line.pop_back();
    if (line.empty()) continue;
    const Answer answer = service.answer_line(line);
    std::fputs(answer.line.c_str(), out);
    std::fflush(out);
    if (answer.shutdown) break;
  }
  std::free(buffer);
  return code;
}

namespace {

/// One accepted client: its fd, unconsumed input, and replies owed.
struct Connection {
  int fd = -1;
  std::string in_buffer;
  std::vector<std::size_t> pending;  ///< indices into the round's batch
};

}  // namespace

int run_socket_server(const std::string& path,
                      const PredictionService& service) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) return 1;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return 1;
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    return 1;
  }

  std::vector<Connection> connections;
  bool shutdown = false;
  while (!shutdown) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    for (const Connection& connection : connections) {
      fds.push_back(pollfd{connection.fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // One accept per wakeup: the listen fd is blocking, so a second
    // accept with no client waiting would stall the loop. Further
    // backlogged clients keep the fd readable for the next round.
    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client >= 0) {
        Connection connection;
        connection.fd = client;
        connections.push_back(connection);
      }
    }

    // Drain readable connections, then slice every complete line into
    // this round's batch (request order preserved per connection).
    std::vector<std::string> batch;
    for (std::size_t c = 0; c + 1 < fds.size() && c < connections.size();
         ++c) {
      Connection& connection = connections[c];
      if ((fds[c + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      // One read per wakeup (the fd is blocking; POLLIN guarantees the
      // first read returns without stalling). Leftover bytes keep the fd
      // readable, so the next round picks them up.
      char chunk[65536];
      ssize_t n;
      do {
        n = ::read(connection.fd, chunk, sizeof chunk);
      } while (n < 0 && errno == EINTR);
      if (n > 0) {
        connection.in_buffer.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        connection.fd = -connection.fd - 2;  // EOF: mark closed, reap below
      }
      std::size_t begin = 0;
      while (true) {
        const std::size_t end = connection.in_buffer.find('\n', begin);
        if (end == std::string::npos) break;
        if (end > begin) {
          connection.pending.push_back(batch.size());
          batch.push_back(connection.in_buffer.substr(begin, end - begin));
        }
        begin = end + 1;
      }
      connection.in_buffer.erase(0, begin);
    }

    // Answer this round's lines in scheduler batches and route replies
    // back per connection, in request order.
    if (!batch.empty()) {
      std::vector<Answer> answers;
      answers.reserve(batch.size());
      for (std::size_t offset = 0; offset < batch.size();
           offset += service.max_batch()) {
        const std::size_t count =
            std::min(service.max_batch(), batch.size() - offset);
        std::vector<std::string> slice(
            batch.begin() + static_cast<std::ptrdiff_t>(offset),
            batch.begin() + static_cast<std::ptrdiff_t>(offset + count));
        std::vector<Answer> part = service.answer_batch(slice);
        for (Answer& answer : part) answers.push_back(std::move(answer));
      }
      for (Connection& connection : connections) {
        if (connection.pending.empty()) continue;
        std::string out;
        for (const std::size_t index : connection.pending) {
          out += answers[index].line;
          if (answers[index].shutdown) shutdown = true;
        }
        connection.pending.clear();
        const int fd = connection.fd < 0 ? -(connection.fd + 2)
                                         : connection.fd;
        if (fd >= 0) (void)write_all(fd, out);
      }
    }

    // Reap connections the client closed.
    for (std::size_t c = 0; c < connections.size();) {
      if (connections[c].fd < 0) {
        const int fd = -(connections[c].fd + 2);
        if (fd >= 0) ::close(fd);
        connections.erase(connections.begin() +
                          static_cast<std::ptrdiff_t>(c));
      } else {
        ++c;
      }
    }
  }

  for (const Connection& connection : connections) {
    if (connection.fd >= 0) ::close(connection.fd);
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace msim::serve
