#include "serve/serve_protocol.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "metrics/study.hpp"
#include "stats/summary.hpp"

namespace msim::serve {

namespace {

/// Shortest round-trip-exact rendering of a double (the dist protocol's
/// convention; matches the text serializers' precision(17) streams).
std::string double_text(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void append_string_member(std::string& out, const char* key,
                          const std::string& value, bool leading_comma) {
  if (leading_comma) out += ',';
  out += '"';
  out += key;
  out += "\":\"";
  out += json::escape(value);
  out += '"';
}

std::string string_field(const json::Value& value, const char* key) {
  const json::Value* field = value.find(key);
  MSIM_REQUIRE(field != nullptr && field->is_string(),
               std::string("serve request missing string field '") + key +
                   "'");
  return field->as_string();
}

// msim-lint: proto(serve.request, reader)
std::uint64_t id_field(const json::Value& value) {
  const json::Value* field = value.find("id");
  MSIM_REQUIRE(field != nullptr && field->is_number(),
               "serve request missing number field 'id'");
  return static_cast<std::uint64_t>(field->as_number());
}

// msim-lint: proto(serve.reply, writer)
std::string reply_prefix(std::uint64_t id, const char* status) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"status\":\"";
  out += status;
  out += '"';
  return out;
}

}  // namespace

// msim-lint: proto(serve.request, writer)
std::string request_line(const ServeRequest& request) {
  const char* op = nullptr;
  switch (request.op) {
    case ServeRequest::Op::Predict: op = "predict"; break;
    case ServeRequest::Op::Ping: op = "ping"; break;
    case ServeRequest::Op::Stats: op = "stats"; break;
    case ServeRequest::Op::Shutdown: op = "shutdown"; break;
  }
  std::string out = "{";
  append_string_member(out, "op", op, false);
  out += ",\"id\":" + std::to_string(request.id);
  if (request.op == ServeRequest::Op::Predict) {
    append_string_member(out, "app", request.app, true);
    out += ",\"nprocs\":" + std::to_string(request.nprocs);
    append_string_member(out, "machine", request.machine, true);
    if (request.metric) {
      append_string_member(out, "metric", *request.metric, true);
    }
  }
  out += "}\n";
  return out;
}

// msim-lint: proto(serve.request, reader)
ServeRequest request_from_json(const json::Value& value) {
  MSIM_REQUIRE(value.is_object(), "serve request is not a JSON object");
  ServeRequest request;
  request.id = id_field(value);
  const std::string op = string_field(value, "op");
  if (op == "predict") {
    request.op = ServeRequest::Op::Predict;
    request.app = string_field(value, "app");
    request.machine = string_field(value, "machine");
    const json::Value* nprocs = value.find("nprocs");
    MSIM_REQUIRE(nprocs != nullptr && nprocs->is_number(),
                 "serve request missing number field 'nprocs'");
    request.nprocs = static_cast<int>(nprocs->as_number());
    MSIM_REQUIRE(request.nprocs > 0 &&
                     static_cast<double>(request.nprocs) ==
                         nprocs->as_number(),
                 "serve request 'nprocs' is not a positive integer");
    if (const json::Value* metric = value.find("metric");
        metric != nullptr) {
      MSIM_REQUIRE(metric->is_string(),
                   "serve request 'metric' is not a string");
      request.metric = metric->as_string();
    }
  } else if (op == "ping") {
    request.op = ServeRequest::Op::Ping;
  } else if (op == "stats") {
    request.op = ServeRequest::Op::Stats;
  } else if (op == "shutdown") {
    request.op = ServeRequest::Op::Shutdown;
  } else {
    throw precondition_error("serve request has unknown op '" + op + "'");
  }
  return request;
}

metrics::Metric metric_from_token(const std::string& token) {
  for (metrics::Metric metric : metrics::all_metrics()) {
    if (metrics::row_label(metric) == token) return metric;
  }
  // Accept bare numbers 1..9 too (the CLI convention).
  for (metrics::Metric metric : metrics::paper_metrics()) {
    if (metrics::row_label(metric).substr(0, 1) == token) return metric;
  }
  throw precondition_error("unknown metric '" + token +
                           "' (use 1..9, 1-S..9-P, B-E, B-F)");
}

// msim-lint: proto(serve.reply, writer)
std::string predict_result_json(
    const metrics::Study& study, const std::string& app, int nprocs,
    const std::string& machine,
    const std::vector<metrics::Metric>& metric_list) {
  const double actual = study.observations().at(app, nprocs, machine);
  std::string out = "{";
  append_string_member(out, "app", app, false);
  out += ",\"nprocs\":" + std::to_string(nprocs);
  append_string_member(out, "machine", machine, true);
  out += ",\"actual\":" + double_text(actual);
  out += ",\"predictions\":[";
  bool first = true;
  for (metrics::Metric metric : metric_list) {
    if (!first) out += ',';
    first = false;
    const double predicted = study.predict(metric, app, nprocs, machine);
    out += '{';
    append_string_member(out, "metric", metrics::row_label(metric), false);
    out += ",\"seconds\":" + double_text(predicted);
    out += ",\"error_pct\":" +
           double_text(stats::signed_percent_error(predicted, actual));
    out += '}';
  }
  out += "]}";
  return out;
}

std::string ok_reply(std::uint64_t id) {
  return reply_prefix(id, "ok") + "}\n";
}

// msim-lint: proto(serve.reply, writer)
std::string predict_reply(std::uint64_t id,
                          const std::string& result_json) {
  return reply_prefix(id, "ok") + ",\"result\":" + result_json + "}\n";
}

// msim-lint: proto(serve.reply, writer)
std::string stats_reply(std::uint64_t id, const std::string& stats_json) {
  return reply_prefix(id, "ok") + ",\"stats\":" + stats_json + "}\n";
}

std::string bye_reply(std::uint64_t id) {
  return reply_prefix(id, "bye") + "}\n";
}

// msim-lint: proto(serve.reply, writer)
std::string error_reply(std::uint64_t id, const std::string& message) {
  std::string out = reply_prefix(id, "error");
  append_string_member(out, "message", message, true);
  out += "}\n";
  return out;
}

}  // namespace msim::serve
