// The resident prediction service and its two front-ends.
//
// PredictionService holds a fully built Study — observations, probe sets
// (served through the artifact cache's mmap read path on warm starts),
// signatures — and answers protocol request lines (serve_protocol.hpp).
// Queries batch onto the existing nesting-aware scheduler
// (pipeline/scheduler.hpp): the socket front-end collects every complete
// line the last poll round surfaced (up to max_batch) and fans the batch
// out with run_indexed, so concurrent clients share the worker pool
// instead of a thread per connection. Replies are pure functions of the
// resident study, so a batch's replies are byte-identical to answering
// each line alone — the property the parity tests and the serve_traffic
// bench assert.
//
// Two front-ends over one service:
//   stdio   — one request line in, one reply line out, flushed per reply
//             (the worker-loop convention); EOF or a shutdown op ends the
//             loop. What `msim serve` runs without --socket, and what CI
//             drives with a here-file of requests.
//   socket  — a Unix domain stream socket; poll()-driven single-threaded
//             I/O, line framing per connection, batched compute. A
//             shutdown op acks with "bye" and stops the server.
//
// Observability: `serve.queries` / `serve.errors` counters,
// `serve.batch.size` and `serve.latency.seconds` histograms, an
// obs::Span per query ("serve:query") and per batch ("serve:batch") when
// telemetry is collecting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "metrics/study.hpp"

namespace msim::serve {

struct ServeOptions {
  /// Unix socket path; empty = stdio front-end.
  std::string socket_path;
  /// Worker threads for query batches; 0 = default (MSIM_THREADS or
  /// hardware concurrency, see pipeline/scheduler.hpp).
  unsigned threads = 0;
  /// Largest query batch one scheduler fan-out answers.
  std::size_t max_batch = 64;

  /// MSIM_SERVE_THREADS / MSIM_SERVE_MAX_BATCH via the checked env
  /// parsers (common/parse.hpp): malformed or overflowing values fall
  /// back whole, never truncate.
  [[nodiscard]] static ServeOptions from_env();
};

/// One answered request line.
struct Answer {
  std::string line;      ///< newline-terminated reply
  bool shutdown = false; ///< the request was a shutdown op
};

class PredictionService {
 public:
  /// Serve `study` (built once, resident). `threads`/`max_batch` as in
  /// ServeOptions.
  explicit PredictionService(metrics::Study study, unsigned threads = 0,
                             std::size_t max_batch = 64);

  /// Answer one request line (with or without the trailing newline).
  /// Never throws: malformed requests and unknown configurations produce
  /// status:"error" replies.
  [[nodiscard]] Answer answer_line(const std::string& line) const;

  /// Answer a batch of request lines on the scheduler pool. Reply order
  /// matches request order, and every reply is byte-identical to what
  /// answer_line alone would produce.
  [[nodiscard]] std::vector<Answer> answer_batch(
      const std::vector<std::string>& lines) const;

  [[nodiscard]] const metrics::Study& study() const { return study_; }
  [[nodiscard]] std::size_t max_batch() const { return max_batch_; }

 private:
  metrics::Study study_;
  unsigned threads_ = 0;
  std::size_t max_batch_ = 64;
};

/// Stdio front-end: serve request lines from `in` to `out` until EOF or a
/// shutdown op. Returns a process exit code.
int run_stdio_server(std::FILE* in, std::FILE* out,
                     const PredictionService& service);

/// Unix-socket front-end: bind `path` (an existing socket file is
/// replaced), accept any number of client connections, serve until a
/// shutdown op. Returns a process exit code (nonzero when the socket
/// cannot be bound).
int run_socket_server(const std::string& path,
                      const PredictionService& service);

}  // namespace msim::serve
