#include "obs/span.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/registry.hpp"

namespace msim::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// One buffered trace event: a completed span ("ph":"X") or one sample of
/// a counter timeline ("ph":"C", see counter_track).
struct TraceEvent {
  std::string name;
  std::string category;
  double start_us = 0.0;
  double duration_us = 0.0;
  int depth = 0;
  std::string args;   ///< pre-escaped fragments, may be empty
  char phase = 'X';
  double value = 0.0;  ///< counter sample value (phase 'C' only)
};

/// Per-thread event buffer. Owned by the global lane registry (not the
/// thread), so events survive thread exit; the mutex is uncontended except
/// against write_trace/reset.
struct Lane {
  explicit Lane(int id) : tid(id) {}
  const int tid;
  int depth = 0;  ///< current span nesting; touched only by the owner
  std::mutex mutex;
  std::vector<TraceEvent> events;
};

struct LaneRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Lane>> lanes;
};

LaneRegistry& lane_registry() {
  static LaneRegistry* const registry = new LaneRegistry();
  return *registry;
}

Lane& this_lane() {
  thread_local Lane* lane = [] {
    LaneRegistry& registry = lane_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.lanes.push_back(
        std::make_unique<Lane>(static_cast<int>(registry.lanes.size())));
    return registry.lanes.back().get();
  }();
  return *lane;
}

std::atomic<bool> g_tracing{false};
std::mutex g_path_mutex;
std::string g_trace_path;  // guarded by g_path_mutex

// Pre-rendered event objects from other processes (worker traces merged
// by the distributed coordinator), spliced verbatim by write_trace.
std::mutex g_foreign_mutex;
std::vector<std::string> g_foreign_events;  // guarded by g_foreign_mutex

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void enable_tracing(std::string path) {
  (void)trace_epoch();  // pin the epoch no later than the first enable
  {
    std::lock_guard<std::mutex> lock(g_path_mutex);
    g_trace_path = std::move(path);
  }
  g_tracing.store(true, std::memory_order_relaxed);
}

void disable_tracing() noexcept {
  g_tracing.store(false, std::memory_order_relaxed);
}

std::string trace_path() {
  std::lock_guard<std::mutex> lock(g_path_mutex);
  return g_trace_path;
}

double now_us() noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   trace_epoch())
      .count();
}

void counter_track(const char* name, double value) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'C';
  event.start_us = now_us();
  event.value = value;
  Lane& lane = this_lane();
  std::lock_guard<std::mutex> lock(lane.mutex);
  lane.events.push_back(std::move(event));
}

std::size_t buffered_event_count() {
  LaneRegistry& registry = lane_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& lane : registry.lanes) {
    std::lock_guard<std::mutex> lane_lock(lane->mutex);
    total += lane->events.size();
  }
  return total;
}

void append_foreign_trace_events(std::vector<std::string> events) {
  std::lock_guard<std::mutex> lock(g_foreign_mutex);
  for (std::string& event : events) {
    g_foreign_events.push_back(std::move(event));
  }
}

void reset_tracing_for_testing() {
  disable_tracing();
  {
    std::lock_guard<std::mutex> lock(g_path_mutex);
    g_trace_path.clear();
  }
  {
    std::lock_guard<std::mutex> lock(g_foreign_mutex);
    g_foreign_events.clear();
  }
  LaneRegistry& registry = lane_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& lane : registry.lanes) {
    std::lock_guard<std::mutex> lane_lock(lane->mutex);
    lane->events.clear();
  }
}

Span::Span(const char* name, const char* category) noexcept
    : name_(name), category_(category) {
  if (!tracing_enabled()) return;
  recording_ = true;
  start_us_ = now_us();
  ++this_lane().depth;
}

Span& Span::arg(const char* key, const std::string& value) {
  if (recording_) {
    if (!args_.empty()) args_ += ',';
    args_ += '"';
    args_ += json_escape(key);
    args_ += "\":\"";
    args_ += json_escape(value);
    args_ += '"';
  }
  return *this;
}

Span& Span::arg(const char* key, std::int64_t value) {
  if (recording_) {
    if (!args_.empty()) args_ += ',';
    args_ += '"';
    args_ += json_escape(key);
    args_ += "\":";
    args_ += std::to_string(value);
  }
  return *this;
}

Span::~Span() {
  if (!recording_) return;
  const double end_us = now_us();
  Lane& lane = this_lane();
  const int depth = --lane.depth;
  TraceEvent event{name_,   category_,          start_us_,
                   end_us - start_us_, depth,   std::move(args_)};
  std::lock_guard<std::mutex> lock(lane.mutex);
  lane.events.push_back(std::move(event));
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_trace() { return write_trace(trace_path()); }

bool write_trace(const std::string& path) {
  if (path.empty()) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"msim\"}}";

  std::ostringstream events;
  events.setf(std::ios::fixed);
  events.precision(3);
  {
    LaneRegistry& registry = lane_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto& lane : registry.lanes) {
      std::lock_guard<std::mutex> lane_lock(lane->mutex);
      if (lane->events.empty()) continue;
      events << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
             << "\"tid\":" << lane->tid
             << ",\"args\":{\"name\":\"msim-thread-" << lane->tid
             << "\"}}";
      for (const TraceEvent& event : lane->events) {
        if (event.phase == 'C') {
          // Counter samples collapse onto tid 0 so every sample of one
          // name lands in a single Perfetto counter track, regardless of
          // which worker recorded it.
          events << ",\n{\"name\":\"" << json_escape(event.name)
                 << "\",\"ph\":\"C\",\"ts\":" << event.start_us
                 << ",\"pid\":1,\"tid\":0,\"args\":{\"value\":"
                 << event.value << "}}";
          continue;
        }
        events << ",\n{\"name\":\"" << json_escape(event.name)
               << "\",\"cat\":\"" << json_escape(event.category)
               << "\",\"ph\":\"X\",\"ts\":" << event.start_us
               << ",\"dur\":" << event.duration_us
               << ",\"pid\":1,\"tid\":" << lane->tid
               << ",\"args\":{\"depth\":" << event.depth;
        if (!event.args.empty()) events << ',' << event.args;
        events << "}}";
      }
    }
  }

  // Worker-process events merged in by the distributed coordinator; each
  // fragment is already a complete event object carrying its own pid.
  {
    std::lock_guard<std::mutex> lock(g_foreign_mutex);
    for (const std::string& fragment : g_foreign_events) {
      events << ",\n" << fragment;
    }
  }

  // Final counter/gauge values as Chrome counter events, so cache hit/miss
  // tallies (with miss reasons) travel inside the trace file itself.
  const Snapshot snapshot = Registry::instance().snapshot();
  const double ts = now_us();
  for (const auto& row : snapshot.counters) {
    events << ",\n{\"name\":\"" << json_escape(row.name)
           << "\",\"ph\":\"C\",\"ts\":" << ts
           << ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" << row.value
           << "}}";
  }
  for (const auto& row : snapshot.gauges) {
    events << ",\n{\"name\":\"" << json_escape(row.name)
           << "\",\"ph\":\"C\",\"ts\":" << ts
           << ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" << row.value
           << "}}";
  }

  out << events.str() << "\n]}\n";
  return out.good();
}

}  // namespace msim::obs
