// RAII scoped timers and the Chrome trace-event sink.
//
// A Span marks one timed region. When tracing is off (the default) its
// constructor reads a single relaxed atomic flag and does nothing else —
// no clock read, no allocation — so instrumentation can stay in hot paths
// permanently. When tracing is on, each completed span is appended to a
// per-thread buffer (one uncontended mutex acquisition per span) and
// write_trace() merges every buffer into one Chrome trace-event JSON file
// that Perfetto / chrome://tracing load directly; see docs/FORMATS.md for
// the exact schema.
//
// Threads are identified by a small dense lane id assigned on first use
// (the main thread is usually lane 0); spans also carry their per-thread
// nesting depth as an argument. Buffers are owned by a process-lifetime
// registry, never by the thread, so spans recorded by pool workers survive
// the workers joining.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msim::obs {

/// True while a trace destination is set. Relaxed read; safe anywhere.
[[nodiscard]] bool tracing_enabled() noexcept;

/// Start recording spans, to be written to `path` (Chrome trace JSON).
void enable_tracing(std::string path);

/// Stop recording. Buffered events are kept until write_trace/reset.
void disable_tracing() noexcept;

/// Destination set by enable_tracing (empty when tracing was never on).
[[nodiscard]] std::string trace_path();

/// Merge every thread's buffered spans plus a final snapshot of all
/// registry counters into the Chrome trace JSON at trace_path(). Returns
/// false when the file cannot be written or tracing was never enabled.
bool write_trace();

/// As write_trace() but to an explicit path.
bool write_trace(const std::string& path);

/// Microseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] double now_us() noexcept;

/// Record one timestamped sample of a named counter timeline. Samples are
/// emitted as Chrome counter events ("ph":"C") on tid 0, so all samples
/// of one name merge into a single counter track in Perfetto — used for
/// pool occupancy over time. `name` must outlive the call (string
/// literal); no-op when tracing is off.
void counter_track(const char* name, double value);

/// Splice pre-rendered Chrome trace event objects (one JSON object per
/// string, no trailing comma) into the next write_trace() output. Used by
/// the distributed coordinator to merge worker-process traces — workers
/// re-badged with their own pid — into the coordinator's file. Fragments
/// accumulate until reset_tracing_for_testing(); callers are responsible
/// for well-formed JSON.
void append_foreign_trace_events(std::vector<std::string> events);

/// Drop all buffered events, disable tracing, forget the path. Test-only.
void reset_tracing_for_testing();

/// Number of buffered events across all threads (test hook).
[[nodiscard]] std::size_t buffered_event_count();

class Span {
 public:
  /// `name` and `category` must be string literals (or otherwise outlive
  /// the span); they are copied only when the span completes.
  Span(const char* name, const char* category) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value argument (shown in the trace viewer). No-ops when
  /// the span is not recording.
  Span& arg(const char* key, const std::string& value);
  Span& arg(const char* key, std::int64_t value);

  [[nodiscard]] bool recording() const noexcept { return recording_; }

 private:
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
  bool recording_ = false;
  std::string args_;  ///< pre-escaped `"k":v` fragments, comma-joined
};

/// Escape a string for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace msim::obs
