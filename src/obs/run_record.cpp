#include "obs/run_record.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/build_info.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/parse.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace msim::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::mutex g_mutex;
std::string g_path;                         // msim-lint: guarded-by(g_mutex)
std::map<std::string, std::string> g_info;  // msim-lint: guarded-by(g_mutex)
// msim-lint: guarded-by(g_mutex)
std::vector<ErrorSummaryRecord> g_errors;

/// Shortest round-trip rendering of a double; integral values print
/// without a fraction so counters stay readable.
std::string number_to_json(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      value >= -9.0e15 && value <= 9.0e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Serialize a parsed json::Value back to text (used to carry existing
/// samples over on a merge; field order is the map's deterministic order).
void dump_value(const json::Value& value, std::ostream& out) {
  switch (value.type()) {
    case json::Value::Type::Null:
      out << "null";
      return;
    case json::Value::Type::Bool:
      out << (value.as_bool() ? "true" : "false");
      return;
    case json::Value::Type::Number:
      out << number_to_json(value.as_number());
      return;
    case json::Value::Type::String:
      out << '"' << json::escape(value.as_string()) << '"';
      return;
    case json::Value::Type::Array: {
      out << '[';
      bool first = true;
      for (const json::Value& item : value.items()) {
        if (!first) out << ',';
        first = false;
        dump_value(item, out);
      }
      out << ']';
      return;
    }
    case json::Value::Type::Object: {
      out << '{';
      bool first = true;
      for (const auto& [key, member] : value.fields()) {
        if (!first) out << ',';
        first = false;
        out << '"' << json::escape(key) << "\":";
        dump_value(member, out);
      }
      out << '}';
      return;
    }
  }
}

/// Identity of this process run: build + configuration environment +
/// caller-recorded info. Everything that must match for two records'
/// samples to be comparable.
struct Identity {
  std::string compiler;
  std::string build_type;
  std::string flags;
  std::string git;
  std::string threads;
  std::string cache_dir;
  std::string cache_max_bytes;
  std::string prefetch;
  std::map<std::string, std::string> info;

  [[nodiscard]] std::string fingerprint() const {
    Fnv1a hash;
    hash.update_i64(kRunRecordSchemaVersion);
    hash.update(compiler);
    hash.update(build_type);
    hash.update(flags);
    hash.update(git);
    hash.update(threads);
    hash.update(cache_dir);
    hash.update(cache_max_bytes);
    hash.update(prefetch);
    for (const auto& [key, value] : info) {  // map order: deterministic
      hash.update(key);
      hash.update(value);
    }
    return hex_digest(hash.digest());
  }
};

Identity current_identity() {
  const BuildInfo& build = build_info();
  Identity identity;
  identity.compiler = build.compiler;
  identity.build_type = build.build_type;
  identity.flags = build.flags;
  identity.git = build.git;
  identity.threads = env_string("MSIM_THREADS");
  identity.cache_dir = env_string("MSIM_CACHE_DIR");
  identity.cache_max_bytes = env_string("MSIM_CACHE_MAX_BYTES");
  identity.prefetch = env_string("MSIM_GRAPH_PREFETCH");
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    identity.info = g_info;
  }
  return identity;
}

// msim-lint: proto(run.record, writer)
void render_identity(const Identity& identity, std::ostream& out) {
  out << "\"identity\":{"
      << "\"fingerprint\":\"" << identity.fingerprint() << "\","
      << "\"compiler\":\"" << json::escape(identity.compiler) << "\","
      << "\"build_type\":\"" << json::escape(identity.build_type) << "\","
      << "\"flags\":\"" << json::escape(identity.flags) << "\","
      << "\"git\":\"" << json::escape(identity.git) << "\","
      << "\"threads\":\"" << json::escape(identity.threads) << "\","
      << "\"cache_dir\":\"" << json::escape(identity.cache_dir) << "\","
      << "\"cache_max_bytes\":\""
      << json::escape(identity.cache_max_bytes) << "\","
      << "\"prefetch\":\"" << json::escape(identity.prefetch) << "\","
      << "\"info\":{";
  bool first = true;
  for (const auto& [key, value] : identity.info) {
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(key) << "\":\"" << json::escape(value)
        << '"';
  }
  out << "}}";
}

/// Stage label when `name` is `scheduler.<label>.task.seconds`, else "".
std::string stage_label(const std::string& name) {
  constexpr const char* kPrefix = "scheduler.";
  constexpr const char* kSuffix = ".task.seconds";
  const std::size_t prefix = std::string(kPrefix).size();
  const std::size_t suffix = std::string(kSuffix).size();
  if (name.size() <= prefix + suffix) return {};
  if (name.rfind(kPrefix, 0) != 0) return {};
  if (name.compare(name.size() - suffix, suffix, kSuffix) != 0) return {};
  return name.substr(prefix, name.size() - prefix - suffix);
}

/// One sample object: the current registry state plus process-level
/// numbers (timestamp, wall clock since trace epoch, peak RSS).
// msim-lint: proto(run.record, writer)
void render_sample(std::ostream& out) {
  const Snapshot snapshot = Registry::instance().snapshot();
  out << "{\"created_unix\":" << static_cast<long long>(std::time(nullptr))
      << ",\"wall_seconds\":" << number_to_json(now_us() / 1e6)
      << ",\"peak_rss_bytes\":" << peak_rss_bytes();

  // Per-stage wall time, derived from the scheduler's per-task seconds
  // histograms (scheduler.<label>.task.seconds).
  out << ",\"stages\":{";
  bool first = true;
  for (const auto& row : snapshot.histograms) {
    const std::string label = stage_label(row.name);
    if (label.empty()) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(label) << "\":{\"count\":"
        << row.values.count
        << ",\"seconds\":" << number_to_json(row.values.sum)
        << ",\"max_seconds\":" << number_to_json(row.values.max) << '}';
  }
  out << '}';

  out << ",\"counters\":{";
  first = true;
  for (const auto& row : snapshot.counters) {
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(row.name) << "\":" << row.value;
  }
  out << '}';

  out << ",\"gauges\":{";
  first = true;
  for (const auto& row : snapshot.gauges) {
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(row.name)
        << "\":" << number_to_json(row.value);
  }
  out << '}';

  out << ",\"histograms\":{";
  first = true;
  for (const auto& row : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"' << json::escape(row.name) << "\":{\"count\":"
        << row.values.count << ",\"sum\":" << number_to_json(row.values.sum)
        << ",\"min\":" << number_to_json(row.values.min)
        << ",\"max\":" << number_to_json(row.values.max)
        << ",\"mean\":" << number_to_json(row.values.mean())
        << ",\"p50\":" << number_to_json(row.values.quantile(0.5))
        << ",\"p95\":" << number_to_json(row.values.quantile(0.95)) << '}';
  }
  out << '}';

  out << ",\"errors\":[";
  std::vector<ErrorSummaryRecord> errors;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    errors = g_errors;
  }
  first = true;
  for (const auto& summary : errors) {
    if (!first) out << ',';
    first = false;
    out << "{\"metric\":\"" << json::escape(summary.metric)
        << "\",\"count\":" << summary.count
        << ",\"mean_abs_pct\":" << number_to_json(summary.mean_abs_pct)
        << ",\"median_abs_pct\":" << number_to_json(summary.median_abs_pct)
        << ",\"max_abs_pct\":" << number_to_json(summary.max_abs_pct)
        << '}';
  }
  out << "]}";
}

/// Existing samples from a record at `path` whose schema version and
/// fingerprint match; empty when the file is missing, malformed, or from
/// a different build/configuration (the record then starts over).
// msim-lint: proto(run.record, reader)
std::vector<std::string> mergeable_samples(const std::string& path,
                                           const std::string& fingerprint) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const json::Value record = json::parse(text.str());
    if (record.number_or("schema", 0) != kRunRecordSchemaVersion) return {};
    const json::Value* identity = record.find("identity");
    if (identity == nullptr ||
        identity->string_or("fingerprint", "") != fingerprint) {
      return {};
    }
    const json::Value* samples = record.find("samples");
    if (samples == nullptr || !samples->is_array()) return {};
    std::vector<std::string> rendered;
    for (const json::Value& sample : samples->items()) {
      std::ostringstream os;
      dump_value(sample, os);
      rendered.push_back(os.str());
    }
    return rendered;
  } catch (const std::exception&) {
    return {};  // malformed record: overwrite fresh
  }
}

}  // namespace

void enable_run_record(std::string path) {
  // Pin the trace epoch now: the sample's wall_seconds measures from
  // enable time, not from the first (possibly exit-time) clock read.
  (void)now_us();
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_path = std::move(path);
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

bool run_record_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

std::string run_record_path() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_path;
}

void record_run_info(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_info.insert_or_assign(key, value);
}

void record_error_summaries(std::vector<ErrorSummaryRecord> summaries) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_errors = std::move(summaries);
}

std::string run_record_fingerprint() {
  return current_identity().fingerprint();
}

// msim-lint: proto(run.record, writer)
std::string render_run_record() {
  const Identity identity = current_identity();
  std::ostringstream out;
  out << "{\"schema\":" << kRunRecordSchemaVersion << ",\"tool\":\"msim\",";
  render_identity(identity, out);
  out << ",\"samples\":[";
  render_sample(out);
  out << "]}\n";
  return out.str();
}

bool write_run_record() { return write_run_record(run_record_path()); }

// msim-lint: proto(run.record, writer)
bool write_run_record(const std::string& path) {
  if (path.empty()) return false;
  const Identity identity = current_identity();
  const std::vector<std::string> existing =
      mergeable_samples(path, identity.fingerprint());

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\"schema\":" << kRunRecordSchemaVersion << ",\"tool\":\"msim\",";
  render_identity(identity, out);
  out << ",\"samples\":[";
  for (const std::string& sample : existing) out << sample << ',';
  render_sample(out);
  out << "]}\n";
  return out.good();
}

void reset_run_record_for_testing() {
  g_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_mutex);
  g_path.clear();
  g_info.clear();
  g_errors.clear();
}

}  // namespace msim::obs
