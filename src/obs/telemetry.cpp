#include "obs/telemetry.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/parse.hpp"
#include "obs/run_record.hpp"
#include "obs/span.hpp"

namespace msim::obs {

namespace {

std::atomic<bool> g_metrics{false};
std::atomic<MetricsRenderer> g_renderer{nullptr};
std::atomic<bool> g_exit_writer_installed{false};
std::mutex g_metrics_path_mutex;
// msim-lint: guarded-by(g_metrics_path_mutex)
std::string g_metrics_path;

std::string plain_render(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "telemetry metrics:\n";
  for (const auto& row : snapshot.counters) {
    os << "  " << row.name << " = " << row.value << "\n";
  }
  for (const auto& row : snapshot.gauges) {
    os << "  " << row.name << " = " << row.value << "\n";
  }
  for (const auto& row : snapshot.histograms) {
    os << "  " << row.name << " count=" << row.values.count
       << " mean=" << row.values.mean() << " max=" << row.values.max
       << "\n";
  }
  return os.str();
}

}  // namespace

void enable_metrics() noexcept {
  g_metrics.store(true, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics.load(std::memory_order_relaxed);
}

void enable_metrics_file(std::string path) {
  {
    std::lock_guard<std::mutex> lock(g_metrics_path_mutex);
    g_metrics_path = std::move(path);
  }
  enable_metrics();
}

std::string metrics_path() {
  std::lock_guard<std::mutex> lock(g_metrics_path_mutex);
  return g_metrics_path;
}

bool collecting() noexcept {
  return tracing_enabled() || metrics_enabled() || run_record_enabled();
}

void init_from_env() {
  if (const std::string path = env_string("MSIM_TRACE"); !path.empty()) {
    enable_tracing(path);
  }
  // MSIM_METRICS: "0" (or empty) off, "1" stderr only, anything else is a
  // file path that receives a copy of the table.
  if (const std::string flag = env_string("MSIM_METRICS");
      !flag.empty() && flag != "0") {
    if (flag == "1") {
      enable_metrics();
    } else {
      enable_metrics_file(flag);
    }
  }
  if (const std::string path = env_string("MSIM_RUN_RECORD");
      !path.empty()) {
    enable_run_record(path);
  }
}

bool handle_telemetry_flag(const std::string& token) {
  if (token == "--metrics") {
    enable_metrics();
    return true;
  }
  if (token.rfind("--metrics=", 0) == 0) {
    const std::string path = token.substr(10);
    if (path.empty()) {
      enable_metrics();
    } else {
      enable_metrics_file(path);
    }
    return true;
  }
  if (token == "--trace") {
    enable_tracing("trace.json");
    return true;
  }
  if (token.rfind("--trace=", 0) == 0) {
    const std::string path = token.substr(8);
    enable_tracing(path.empty() ? "trace.json" : path);
    return true;
  }
  if (token.rfind("--run-record=", 0) == 0) {
    const std::string path = token.substr(13);
    if (!path.empty()) enable_run_record(path);
    return true;
  }
  return false;
}

void set_metrics_renderer(MetricsRenderer renderer) noexcept {
  g_renderer.store(renderer, std::memory_order_relaxed);
}

void flush_telemetry() {
  if (tracing_enabled()) (void)write_trace();
  if (metrics_enabled()) {
    const MetricsRenderer renderer =
        g_renderer.load(std::memory_order_relaxed);
    const std::string table = (renderer != nullptr ? renderer
                                                   : &plain_render)(
        Registry::instance().snapshot());
    std::fputs(table.c_str(), stderr);
    if (const std::string path = metrics_path(); !path.empty()) {
      std::ofstream out(path, std::ios::trunc);
      if (out) {
        out << table;
      } else {
        std::fprintf(stderr, "error: could not write metrics file %s\n",
                     path.c_str());
      }
    }
  }
  if (run_record_enabled() && !write_run_record()) {
    std::fprintf(stderr, "error: could not write run record %s\n",
                 run_record_path().c_str());
  }
}

void install_exit_writer() {
  if (g_exit_writer_installed.exchange(true)) return;
  std::atexit(&flush_telemetry);
}

void reset_for_testing() {
  g_metrics.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_metrics_path_mutex);
    g_metrics_path.clear();
  }
  reset_tracing_for_testing();
  reset_run_record_for_testing();
  Registry::instance().reset_values();
}

}  // namespace msim::obs
