#include "obs/telemetry.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/span.hpp"

namespace msim::obs {

namespace {

std::atomic<bool> g_metrics{false};
std::atomic<MetricsRenderer> g_renderer{nullptr};
std::atomic<bool> g_exit_writer_installed{false};

std::string plain_render(const Snapshot& snapshot) {
  std::ostringstream os;
  os << "telemetry metrics:\n";
  for (const auto& row : snapshot.counters) {
    os << "  " << row.name << " = " << row.value << "\n";
  }
  for (const auto& row : snapshot.gauges) {
    os << "  " << row.name << " = " << row.value << "\n";
  }
  for (const auto& row : snapshot.histograms) {
    os << "  " << row.name << " count=" << row.values.count
       << " mean=" << row.values.mean() << " max=" << row.values.max
       << "\n";
  }
  return os.str();
}

}  // namespace

void enable_metrics() noexcept {
  g_metrics.store(true, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics.load(std::memory_order_relaxed);
}

bool collecting() noexcept { return tracing_enabled() || metrics_enabled(); }

void init_from_env() {
  if (const char* path = std::getenv("MSIM_TRACE");
      path != nullptr && path[0] != '\0') {
    enable_tracing(path);
  }
  if (const char* flag = std::getenv("MSIM_METRICS");
      flag != nullptr && flag[0] != '\0' &&
      !(flag[0] == '0' && flag[1] == '\0')) {
    enable_metrics();
  }
}

bool handle_telemetry_flag(const std::string& token) {
  if (token == "--metrics") {
    enable_metrics();
    return true;
  }
  if (token == "--trace") {
    enable_tracing("trace.json");
    return true;
  }
  if (token.rfind("--trace=", 0) == 0) {
    const std::string path = token.substr(8);
    enable_tracing(path.empty() ? "trace.json" : path);
    return true;
  }
  return false;
}

void set_metrics_renderer(MetricsRenderer renderer) noexcept {
  g_renderer.store(renderer, std::memory_order_relaxed);
}

void flush_telemetry() {
  if (tracing_enabled()) (void)write_trace();
  if (metrics_enabled()) {
    const MetricsRenderer renderer =
        g_renderer.load(std::memory_order_relaxed);
    const std::string table = (renderer != nullptr ? renderer
                                                   : &plain_render)(
        Registry::instance().snapshot());
    std::fputs(table.c_str(), stderr);
  }
}

void install_exit_writer() {
  if (g_exit_writer_installed.exchange(true)) return;
  std::atexit(&flush_telemetry);
}

void reset_for_testing() {
  g_metrics.store(false, std::memory_order_relaxed);
  reset_tracing_for_testing();
  Registry::instance().reset_values();
}

}  // namespace msim::obs
