#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace msim::obs {

namespace {

/// Relaxed CAS update helpers for atomic<double> aggregates.
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

template <typename Better>
void atomic_extreme(std::atomic<double>& target, double value,
                    Better better) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (better(value, expected) &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double value) noexcept {
  if (!(value > 0.0)) return 0;
  const int exponent = std::ilogb(value);
  return std::clamp(exponent + 40, 0, kBuckets - 1);
}

double Histogram::bucket_upper(int index) noexcept {
  return std::ldexp(1.0, index - 40 + 1);
}

void Histogram::record(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_extreme(min_, value, [](double a, double b) { return a < b; });
  atomic_extreme(max_, value, [](double a, double b) { return a > b; });
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = out.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  out.max = out.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    out.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += buckets[static_cast<std::size_t>(i)];
    if (cumulative > target) return Histogram::bucket_upper(i);
  }
  return max;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  // Leaked on purpose: instrumented destructors and atexit hooks may touch
  // metrics after static destruction would have run.
  static Registry* const registry = new Registry();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back(CounterRow{name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back(GaugeRow{name, gauge->value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.push_back(HistogramRow{name, histogram->snapshot()});
  }
  return out;  // std::map iteration is already name-sorted
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace msim::obs
