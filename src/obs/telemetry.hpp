// Telemetry activation and process-exit wiring.
//
// Everything is off by default. Two independent outputs:
//
//   tracing — MSIM_TRACE=<path> or --trace[=<path>] (default trace.json):
//             spans are buffered and written as Chrome trace-event JSON at
//             process exit (or via obs::write_trace()).
//   metrics — MSIM_METRICS=<non-empty, not "0"> or --metrics: a summary
//             table of all registry counters/gauges/histograms is printed
//             to *stderr* at process exit, keeping stdout diffable. Any
//             value other than "1" is also treated as a file path and the
//             table is written there in addition to stderr
//             (--metrics=<path> does the same).
//   records — MSIM_RUN_RECORD=<path> or --run-record=<path>: a JSON run
//             record (build identity, stage timings, cache/scheduler
//             stats, error summaries) is written at process exit; see
//             obs/run_record.hpp.
//
// The pretty fixed-width table lives in report::render_metrics; obs only
// holds a function-pointer hook so this module stays dependency-free (a
// plain "name value" fallback is used if no renderer was installed).
//
// collecting() gates optional clock reads (latency histograms, worker
// utilization): true when either output is active. Plain counters are NOT
// gated — a relaxed atomic add is cheaper than the branch would be worth,
// and tests rely on exact counts regardless of environment.
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace msim::obs {

/// Enable the exit-time metrics table (stderr).
void enable_metrics() noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

/// Additionally copy the exit-time metrics table to `path` (implies
/// enable_metrics; stderr keeps receiving the table too).
void enable_metrics_file(std::string path);
/// Metrics file destination; empty when only stderr is in use.
[[nodiscard]] std::string metrics_path();

/// True when any telemetry output is active (tracing, metrics, or a run
/// record); gates optional timing work in instrumented code.
[[nodiscard]] bool collecting() noexcept;

/// Read MSIM_TRACE / MSIM_METRICS / MSIM_RUN_RECORD and enable the
/// corresponding outputs.
void init_from_env();

/// Recognise and apply one command-line token: "--trace",
/// "--trace=<path>", "--metrics", "--metrics=<path>" or
/// "--run-record=<path>". Returns true when the token was a telemetry
/// flag (callers that validate argv should drop it).
bool handle_telemetry_flag(const std::string& token);

/// Renderer used for the exit-time metrics table (report::render_metrics).
using MetricsRenderer = std::string (*)(const Snapshot&);
void set_metrics_renderer(MetricsRenderer renderer) noexcept;

/// Register flush_telemetry with std::atexit (idempotent).
void install_exit_writer();

/// Write the trace file (if tracing), print the metrics table to stderr
/// and the metrics file (if metrics), and write the run record (if
/// recording). Called automatically at exit once install_exit_writer()
/// has run; safe to call directly and repeatedly.
void flush_telemetry();

/// Disable all outputs and zero metric values and span buffers. Test-only.
void reset_for_testing();

}  // namespace msim::obs
