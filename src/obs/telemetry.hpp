// Telemetry activation and process-exit wiring.
//
// Everything is off by default. Two independent outputs:
//
//   tracing — MSIM_TRACE=<path> or --trace[=<path>] (default trace.json):
//             spans are buffered and written as Chrome trace-event JSON at
//             process exit (or via obs::write_trace()).
//   metrics — MSIM_METRICS=<non-empty, not "0"> or --metrics: a summary
//             table of all registry counters/gauges/histograms is printed
//             to *stderr* at process exit, keeping stdout diffable.
//
// The pretty fixed-width table lives in report::render_metrics; obs only
// holds a function-pointer hook so this module stays dependency-free (a
// plain "name value" fallback is used if no renderer was installed).
//
// collecting() gates optional clock reads (latency histograms, worker
// utilization): true when either output is active. Plain counters are NOT
// gated — a relaxed atomic add is cheaper than the branch would be worth,
// and tests rely on exact counts regardless of environment.
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace msim::obs {

/// Enable the exit-time metrics table (stderr).
void enable_metrics() noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

/// True when any telemetry output is active (tracing or metrics); gates
/// optional timing work in instrumented code.
[[nodiscard]] bool collecting() noexcept;

/// Read MSIM_TRACE / MSIM_METRICS and enable the corresponding outputs.
void init_from_env();

/// Recognise and apply one command-line token: "--trace",
/// "--trace=<path>" or "--metrics". Returns true when the token was a
/// telemetry flag (callers that validate argv should drop it).
bool handle_telemetry_flag(const std::string& token);

/// Renderer used for the exit-time metrics table (report::render_metrics).
using MetricsRenderer = std::string (*)(const Snapshot&);
void set_metrics_renderer(MetricsRenderer renderer) noexcept;

/// Register flush_telemetry with std::atexit (idempotent).
void install_exit_writer();

/// Write the trace file (if tracing) and print the metrics table to
/// stderr (if metrics). Called automatically at exit once
/// install_exit_writer() has run; safe to call directly and repeatedly.
void flush_telemetry();

/// Disable all outputs and zero metric values and span buffers. Test-only.
void reset_for_testing();

}  // namespace msim::obs
