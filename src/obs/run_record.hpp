// Run records: one schema-versioned JSON ledger entry per process run.
//
// A run record captures everything needed to compare two runs of the same
// bench months apart: the build identity (compiler, flags, git revision),
// the run configuration (MSIM_THREADS, cache settings), per-stage wall
// times, scheduler occupancy, cache hit/miss/evict/prefetch tallies, graph
// node and dedup counts, sampled peak RSS, and the per-metric predictor
// error summaries the study produced. Records are written at process exit
// (flush_telemetry) when MSIM_RUN_RECORD=<path> is set, or on demand via
// enable_run_record() + write_run_record().
//
// Re-run variance is recorded in the file itself: writing to a path whose
// existing record has the same schema version and identity fingerprint
// appends a new sample to `samples[]` instead of overwriting, so a record
// accumulates the noise distribution `msim-report diff` needs for its
// thresholds. A fingerprint mismatch (different build or configuration)
// starts the file over.
//
// The exact JSON schema is documented in docs/FORMATS.md. src/obs is
// exempt from the repo's determinism lint (records carry wall-clock
// timestamps by design); nothing here executes unless recording was
// explicitly enabled, and stdout is never touched.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace msim::obs {

/// Version of the record layout; bump when a field changes meaning.
inline constexpr int kRunRecordSchemaVersion = 1;

/// Start recording: the record is written to `path` at flush_telemetry /
/// process exit. Also reachable via MSIM_RUN_RECORD (see init_from_env).
void enable_run_record(std::string path);

/// True once a record destination is set. Relaxed read; safe anywhere.
[[nodiscard]] bool run_record_enabled() noexcept;

/// Destination set by enable_run_record (empty when never enabled).
[[nodiscard]] std::string run_record_path();

/// Attach one identity key/value pair ("experiment" -> "table4", ...).
/// Identity pairs feed the fingerprint: records with different info do
/// not merge their samples. Last write per key wins.
void record_run_info(const std::string& key, const std::string& value);

/// Per-metric predictor error summary (one Table-4 row), published by
/// metrics::Study::evaluate while a record is enabled.
struct ErrorSummaryRecord {
  std::string metric;
  std::size_t count = 0;
  double mean_abs_pct = 0.0;
  double median_abs_pct = 0.0;
  double max_abs_pct = 0.0;
};

/// Replace the recorded error summaries (the last evaluate() wins — every
/// bench evaluates the same study, so later calls are refinements, not
/// additions).
void record_error_summaries(std::vector<ErrorSummaryRecord> summaries);

/// Identity fingerprint of the current process configuration: FNV-1a over
/// schema version, build identity, environment knobs and recorded info.
/// Two records merge samples only when their fingerprints match.
[[nodiscard]] std::string run_record_fingerprint();

/// Render the full record document (identity + one sample capturing the
/// current registry state) as a JSON string. Pure snapshot; no I/O.
[[nodiscard]] std::string render_run_record();

/// Write the record to run_record_path() / an explicit path, merging with
/// an existing same-fingerprint record (sample append). Returns false when
/// no path is set or the file cannot be written.
bool write_run_record();
bool write_run_record(const std::string& path);

/// Disable recording, forget the path, drop info and error summaries.
/// Test-only.
void reset_run_record_for_testing();

}  // namespace msim::obs
