// Process-wide metric registry: counters, gauges and histograms.
//
// Instrumented code asks the Registry once for a metric handle (typically
// cached in a function-local static) and then updates it with plain relaxed
// atomics — no lock, no allocation, no branch on any enable flag — so the
// hot path costs one atomic add whether telemetry output is on or off.
// Registration itself takes a mutex; handles stay valid for the life of the
// process (reset() zeroes values but never deallocates, so cached
// references cannot dangle).
//
// Naming convention: dot-separated lowercase paths, unit as the last
// component where one applies — "cache.load.bytes", "cache.load.seconds",
// "campaign.runs". The snapshot is sorted by name, which makes the rendered
// metrics table (report::render_metrics) diffable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace msim::obs {

/// Monotonic event count. Relaxed atomic add on the hot path.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (utilization, sizes).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution of a positive quantity (latency seconds,
/// payload bytes). Buckets cover 2^-40 .. 2^23 (~1e-12 s to ~8e6, clamped
/// beyond), enough for nanosecond latencies and multi-megabyte payloads.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Approximate quantile (upper bound of the covering bucket).
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

  /// Bucket index for a value (exposed for tests).
  [[nodiscard]] static int bucket_index(double value) noexcept;
  /// Upper bound of a bucket (2^(index-40)).
  [[nodiscard]] static double bucket_upper(int index) noexcept;

 private:
  // Extremes start at +/-infinity so concurrent first samples need no
  // special case; snapshot() reports 0 for an empty histogram.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

struct CounterRow {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeRow {
  std::string name;
  double value = 0.0;
};
struct HistogramRow {
  std::string name;
  Histogram::Snapshot values;
};

/// Point-in-time copy of every registered metric, each section sorted by
/// name.
struct Snapshot {
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class Registry {
 public:
  /// The process-wide registry (never destroyed, safe during atexit).
  [[nodiscard]] static Registry& instance();

  /// Find-or-create; the returned reference is valid forever.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every metric value. Entries are kept alive so handles cached by
  /// instrumented code never dangle. Test-only.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace msim::obs
