// Text (de)serialization of application models.
//
// Users bring their own workloads: an AppModel can be described in the same
// "dotted.key = value" format the machine registry uses, loaded at run
// time, traced, and predicted — no recompilation. The format is the
// public, documented way to feed custom applications to the CLI
// (`msim predict-custom --app-file my_app.msim ...`).
#pragma once

#include <string>

#include "workload/basic_block.hpp"

namespace msim::workload {

/// Serialize an app model to text.
[[nodiscard]] std::string to_text(const AppModel& app);

/// Parse an app model; throws precondition_error on malformed input and
/// validates the result.
[[nodiscard]] AppModel app_from_text(const std::string& text);

}  // namespace msim::workload
