// The five DoD TI-05 application test-case analogs (paper Section 2).
//
// Each builder instantiates an AppModel at a processor count with
// strong-scaled per-process work and surface-to-volume communication
// scaling. Operation mixes, working sets, dependency structure and branch
// densities are engineering reconstructions of each code's published
// character:
//   AVUS        — unstructured finite-volume CFD: memory-bound, substantial
//                 indirect (random) addressing, halo exchange + residual
//                 allreduces;
//   HYCOM       — structured ocean model: unit-stride-heavy baroclinic
//                 update, a latency-sensitive barotropic solver with many
//                 small allreduces, branchy isopycnal remapping;
//   OVERFLOW-2  — overset structured CFD: stencil sweeps plus implicit ADI
//                 line solves whose recurrences serialize cache-resident
//                 loops (the behaviour Metric #9 exists to capture), and a
//                 chimera interpolation with gather-style access;
//   RF-CTH      — AMR shock physics: very branchy hydro, random-access EOS
//                 table lookups, pointer-chasing regrid phase, load
//                 imbalance from adaptation.
//
// The paper's exact per-processor-count run configurations are kept
// (AVUS-Std 32/64/128, AVUS-Lg 128/256/384, HYCOM 59/96/124,
// OVERFLOW2 32/48/64, RFCTH 16/32/64).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "workload/basic_block.hpp"

namespace msim::workload {

[[nodiscard]] AppModel make_avus_standard(int nprocs);
[[nodiscard]] AppModel make_avus_large(int nprocs);
[[nodiscard]] AppModel make_hycom_standard(int nprocs);
[[nodiscard]] AppModel make_overflow2_standard(int nprocs);
[[nodiscard]] AppModel make_rfcth_standard(int nprocs);

/// One study test case: name, the paper's processor counts, and a builder.
struct TestCase {
  std::string name;
  std::vector<int> cpu_counts;
  std::function<AppModel(int)> build;
};

/// The five TI-05 test cases in the paper's order with the paper's counts.
[[nodiscard]] std::vector<TestCase> ti05_suite();

/// Look up a test case by name; throws precondition_error when unknown.
[[nodiscard]] const TestCase& find_test_case(const std::string& name);

}  // namespace msim::workload
