#include "workload/basic_block.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace msim::workload {

void validate(const MemoryMix& mix) {
  MSIM_REQUIRE(mix.unit >= 0.0 && mix.short_ >= 0.0 && mix.random >= 0.0,
               "mix fractions must be non-negative");
  const double total = mix.unit + mix.short_ + mix.random;
  MSIM_REQUIRE(std::abs(total - 1.0) < 1e-9, "mix fractions must sum to 1");
  MSIM_REQUIRE(mix.short_stride_elements >= 2 &&
                   mix.short_stride_elements <= 8,
               "short stride must be in [2, 8] elements");
}

std::uint64_t BasicBlock::bytes_per_timestep() const {
  return refs_per_iteration * iterations * element_bytes;
}

std::uint64_t BasicBlock::flops_per_timestep() const {
  return flops_per_iteration * iterations;
}

memsim::StreamSpec BasicBlock::stream_spec() const {
  std::uint64_t name_hash = 0x51ab5c17ull;
  for (char ch : name) name_hash = mix64(name_hash, static_cast<
                                         std::uint64_t>(ch));
  memsim::StreamSpec spec;
  spec.base_address = (name_hash | 0x1000ull) << 20;  // disjoint VA regions
  spec.working_set_bytes = working_set_bytes;
  spec.element_bytes = element_bytes;
  if (mix.unit > 0.0) {
    spec.components.push_back(
        {.stride_bytes = element_bytes, .weight = mix.unit});
  }
  if (mix.short_ > 0.0) {
    spec.components.push_back(
        {.stride_bytes = static_cast<std::int64_t>(element_bytes) *
                         mix.short_stride_elements,
         .weight = mix.short_});
  }
  if (mix.random > 0.0) {
    spec.components.push_back({.stride_bytes = 0, .weight = mix.random});
  }
  return spec;
}

void validate(const BasicBlock& block) {
  MSIM_REQUIRE(!block.name.empty(), "block name must be set");
  MSIM_REQUIRE(block.refs_per_iteration > 0 || block.flops_per_iteration > 0,
               "block must do some work: " + block.name);
  MSIM_REQUIRE(block.iterations > 0, "block iterations must be > 0: " +
                                         block.name);
  MSIM_REQUIRE(block.element_bytes > 0 && block.element_bytes <= 64,
               "element size out of range: " + block.name);
  MSIM_REQUIRE(block.working_set_bytes >= block.element_bytes,
               "working set too small: " + block.name);
  MSIM_REQUIRE(block.branch_density >= 0.0 && block.branch_density <= 1.0,
               "branch density must be in [0, 1]: " + block.name);
  MSIM_REQUIRE(block.ilp_efficiency > 0.0 && block.ilp_efficiency <= 1.0,
               "ilp efficiency must be in (0, 1]: " + block.name);
  MSIM_REQUIRE(block.page_locality >= 0.0 && block.page_locality < 1.0,
               "page locality must be in [0, 1): " + block.name);
  validate(block.mix);
}

void validate(const Phase& phase) {
  MSIM_REQUIRE(!phase.name.empty(), "phase name must be set");
  MSIM_REQUIRE(!phase.blocks.empty(), "phase needs blocks: " + phase.name);
  MSIM_REQUIRE(phase.load_imbalance >= 1.0,
               "load imbalance must be >= 1: " + phase.name);
  for (const auto& block : phase.blocks) validate(block);
}

std::uint64_t AppModel::total_flops_per_timestep() const {
  std::uint64_t total = 0;
  for (const auto& phase : phases) {
    for (const auto& block : phase.blocks) total += block.flops_per_timestep();
  }
  return total;
}

std::uint64_t AppModel::total_bytes_per_timestep() const {
  std::uint64_t total = 0;
  for (const auto& phase : phases) {
    for (const auto& block : phase.blocks) total += block.bytes_per_timestep();
  }
  return total;
}

void validate(const AppModel& app) {
  MSIM_REQUIRE(!app.name.empty(), "app name must be set");
  MSIM_REQUIRE(app.nprocs > 0, "nprocs must be > 0");
  MSIM_REQUIRE(app.timesteps > 0, "timesteps must be > 0");
  MSIM_REQUIRE(!app.phases.empty(), "app needs phases");
  for (const auto& phase : app.phases) validate(phase);
}

}  // namespace msim::workload
