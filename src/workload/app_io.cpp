#include "workload/app_io.hpp"

#include <map>
#include <sstream>

#include "common/check.hpp"

namespace msim::workload {

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    MSIM_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw precondition_error("bad number for '" + key + "': " + value);
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const auto parsed = std::stoull(value, &used);
    MSIM_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw precondition_error("bad integer for '" + key + "': " + value);
  }
}

netsim::CommType comm_type_from_string(const std::string& name) {
  for (auto type : {netsim::CommType::PointToPoint,
                    netsim::CommType::AllReduce, netsim::CommType::Broadcast,
                    netsim::CommType::AllToAll, netsim::CommType::Barrier}) {
    if (netsim::to_string(type) == name) return type;
  }
  throw precondition_error("unknown comm type '" + name + "'");
}

std::string dependency_to_string(memsim::DependencyClass dep) {
  return dep == memsim::DependencyClass::Serial ? "serial" : "independent";
}

memsim::DependencyClass dependency_from_string(const std::string& name) {
  if (name == "serial") return memsim::DependencyClass::Serial;
  if (name == "independent") return memsim::DependencyClass::Independent;
  throw precondition_error("unknown dependency class '" + name + "'");
}

}  // namespace

std::string to_text(const AppModel& app) {
  std::ostringstream os;
  os.precision(17);
  os << "# msim application model\n";
  os << "name = " << app.name << '\n';
  os << "nprocs = " << app.nprocs << '\n';
  os << "timesteps = " << app.timesteps << '\n';
  os << "phases = " << app.phases.size() << '\n';
  for (std::size_t p = 0; p < app.phases.size(); ++p) {
    const auto& phase = app.phases[p];
    const std::string phase_prefix = "phase." + std::to_string(p) + '.';
    os << phase_prefix << "name = " << phase.name << '\n';
    os << phase_prefix << "load_imbalance = " << phase.load_imbalance
       << '\n';
    os << phase_prefix << "blocks = " << phase.blocks.size() << '\n';
    for (std::size_t i = 0; i < phase.blocks.size(); ++i) {
      const auto& block = phase.blocks[i];
      const std::string prefix =
          phase_prefix + "block." + std::to_string(i) + '.';
      os << prefix << "name = " << block.name << '\n';
      os << prefix << "flops_per_iteration = " << block.flops_per_iteration
         << '\n';
      os << prefix << "refs_per_iteration = " << block.refs_per_iteration
         << '\n';
      os << prefix << "element_bytes = " << block.element_bytes << '\n';
      os << prefix << "iterations = " << block.iterations << '\n';
      os << prefix << "mix.unit = " << block.mix.unit << '\n';
      os << prefix << "mix.short = " << block.mix.short_ << '\n';
      os << prefix << "mix.random = " << block.mix.random << '\n';
      os << prefix << "mix.short_stride_elements = "
         << block.mix.short_stride_elements << '\n';
      os << prefix << "working_set_bytes = " << block.working_set_bytes
         << '\n';
      os << prefix << "dependency = "
         << dependency_to_string(block.dependency) << '\n';
      os << prefix << "branch_density = " << block.branch_density << '\n';
      os << prefix << "ilp_efficiency = " << block.ilp_efficiency << '\n';
      os << prefix << "page_locality = " << block.page_locality << '\n';
    }
    os << phase_prefix << "events = " << phase.comm.size() << '\n';
    for (std::size_t e = 0; e < phase.comm.size(); ++e) {
      const auto& event = phase.comm[e];
      const std::string prefix =
          phase_prefix + "event." + std::to_string(e) + '.';
      os << prefix << "type = " << netsim::to_string(event.type) << '\n';
      os << prefix << "bytes = " << event.bytes << '\n';
      os << prefix << "count = " << event.count << '\n';
    }
  }
  return os.str();
}

AppModel app_from_text(const std::string& text) {
  std::map<std::string, std::string> pairs;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    MSIM_REQUIRE(eq != std::string::npos, "missing '=' in: " + line);
    const std::string key = trim(line.substr(0, eq));
    MSIM_REQUIRE(pairs.emplace(key, trim(line.substr(eq + 1))).second,
                 "duplicate key '" + key + "'");
  }
  auto take = [&pairs](const std::string& key) {
    const auto it = pairs.find(key);
    MSIM_REQUIRE(it != pairs.end(), "missing key '" + key + "'");
    std::string value = it->second;
    pairs.erase(it);
    return value;
  };

  AppModel app;
  app.name = take("name");
  app.nprocs = static_cast<int>(parse_u64("nprocs", take("nprocs")));
  app.timesteps =
      static_cast<int>(parse_u64("timesteps", take("timesteps")));

  const std::uint64_t phase_count = parse_u64("phases", take("phases"));
  for (std::uint64_t p = 0; p < phase_count; ++p) {
    const std::string phase_prefix = "phase." + std::to_string(p) + '.';
    Phase phase;
    phase.name = take(phase_prefix + "name");
    phase.load_imbalance = parse_double(
        phase_prefix + "load_imbalance", take(phase_prefix +
                                              "load_imbalance"));

    const std::uint64_t block_count =
        parse_u64(phase_prefix + "blocks", take(phase_prefix + "blocks"));
    for (std::uint64_t i = 0; i < block_count; ++i) {
      const std::string prefix =
          phase_prefix + "block." + std::to_string(i) + '.';
      BasicBlock block;
      block.name = take(prefix + "name");
      block.flops_per_iteration = parse_u64(
          prefix + "flops_per_iteration", take(prefix +
                                               "flops_per_iteration"));
      block.refs_per_iteration = parse_u64(
          prefix + "refs_per_iteration", take(prefix +
                                              "refs_per_iteration"));
      block.element_bytes = static_cast<std::uint32_t>(parse_u64(
          prefix + "element_bytes", take(prefix + "element_bytes")));
      block.iterations =
          parse_u64(prefix + "iterations", take(prefix + "iterations"));
      block.mix.unit =
          parse_double(prefix + "mix.unit", take(prefix + "mix.unit"));
      block.mix.short_ =
          parse_double(prefix + "mix.short", take(prefix + "mix.short"));
      block.mix.random =
          parse_double(prefix + "mix.random", take(prefix + "mix.random"));
      block.mix.short_stride_elements = static_cast<int>(
          parse_u64(prefix + "mix.short_stride_elements",
                    take(prefix + "mix.short_stride_elements")));
      block.working_set_bytes = parse_u64(
          prefix + "working_set_bytes", take(prefix + "working_set_bytes"));
      block.dependency =
          dependency_from_string(take(prefix + "dependency"));
      block.branch_density = parse_double(prefix + "branch_density",
                                          take(prefix + "branch_density"));
      block.ilp_efficiency = parse_double(prefix + "ilp_efficiency",
                                          take(prefix + "ilp_efficiency"));
      block.page_locality = parse_double(prefix + "page_locality",
                                         take(prefix + "page_locality"));
      phase.blocks.push_back(std::move(block));
    }

    const std::uint64_t event_count =
        parse_u64(phase_prefix + "events", take(phase_prefix + "events"));
    for (std::uint64_t e = 0; e < event_count; ++e) {
      const std::string prefix =
          phase_prefix + "event." + std::to_string(e) + '.';
      netsim::CommEvent event;
      event.type = comm_type_from_string(take(prefix + "type"));
      event.bytes = parse_u64(prefix + "bytes", take(prefix + "bytes"));
      event.count = parse_u64(prefix + "count", take(prefix + "count"));
      phase.comm.push_back(event);
    }
    app.phases.push_back(std::move(phase));
  }

  MSIM_REQUIRE(pairs.empty(),
               "unknown key '" + pairs.begin()->first + "' in app model");
  validate(app);
  return app;
}

}  // namespace msim::workload
