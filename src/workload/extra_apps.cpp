#include "workload/extra_apps.hpp"

#include <cmath>

#include "common/check.hpp"

namespace msim::workload {

namespace {

using memsim::DependencyClass;
using netsim::CommEvent;
using netsim::CommType;

std::uint64_t u64(double value) {
  MSIM_CHECK(value >= 0.0, "negative count");
  return static_cast<std::uint64_t>(value + 0.5);
}

}  // namespace

AppModel make_fft3d(int nprocs) {
  MSIM_REQUIRE(nprocs > 0, "nprocs must be positive");
  const double total_points = 1024.0 * 1024.0 * 1024.0;  // 1024^3 grid
  const double points = total_points / nprocs;

  Phase step;
  step.name = "fft_step";

  // Local 1-D FFT passes: unit-stride butterflies over the local slab.
  step.blocks.push_back(BasicBlock{
      .name = "FFT3D/local_ffts",
      .flops_per_iteration = 40,  // ~5 N log N across the slab
      .refs_per_iteration = 12,
      .element_bytes = 16,  // complex doubles
      .iterations = u64(points * 2),
      .mix = {.unit = 0.70, .short_ = 0.25, .random = 0.05,
              .short_stride_elements = 8},
      .working_set_bytes = u64(points * 16),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.02,
      .ilp_efficiency = 0.35,
      .page_locality = 0.70});

  // Local transpose between dimensions: strided pathology.
  step.blocks.push_back(BasicBlock{
      .name = "FFT3D/local_transpose",
      .flops_per_iteration = 0,
      .refs_per_iteration = 2,
      .element_bytes = 16,
      .iterations = u64(points * 2),
      .mix = {.unit = 0.30, .short_ = 0.50, .random = 0.20,
              .short_stride_elements = 8},
      .working_set_bytes = u64(points * 16),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.01,
      .ilp_efficiency = 0.30,
      .page_locality = 0.60});

  // The global transpose: an alltoall moving the entire local slab, twice
  // per timestep (forward + inverse transform).
  step.comm = {CommEvent{.type = CommType::AllToAll,
                         .bytes = u64(points * 16 / nprocs),
                         .count = 2}};

  AppModel app;
  app.name = "FFT3D";
  app.nprocs = nprocs;
  app.timesteps = 200;
  app.phases.push_back(std::move(step));
  validate(app);
  return app;
}

AppModel make_krylov_latency(int nprocs) {
  MSIM_REQUIRE(nprocs > 0, "nprocs must be positive");
  const double rows = 2e8 / nprocs;

  Phase iterate;
  iterate.name = "krylov";
  iterate.blocks.push_back(BasicBlock{
      .name = "Krylov/spmv_small",
      .flops_per_iteration = 8,
      .refs_per_iteration = 6,
      .element_bytes = 8,
      .iterations = u64(rows * 4),
      .mix = {.unit = 0.55, .short_ = 0.15, .random = 0.30,
              .short_stride_elements = 4},
      .working_set_bytes = u64(rows * 48),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.04,
      .ilp_efficiency = 0.25,
      .page_locality = 0.55});
  // Two dot products per iteration, ~400 solver iterations per timestep:
  // pure allreduce latency at scale.
  iterate.comm = {
      CommEvent{.type = CommType::AllReduce, .bytes = 8, .count = 800},
      CommEvent{.type = CommType::PointToPoint,
                .bytes = u64(4.0 * std::sqrt(rows) * 8.0),
                .count = 400},
  };

  AppModel app;
  app.name = "KrylovLatency";
  app.nprocs = nprocs;
  app.timesteps = 60;
  app.phases.push_back(std::move(iterate));
  validate(app);
  return app;
}

}  // namespace msim::workload
