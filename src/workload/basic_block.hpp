// Application model vocabulary.
//
// An application is a set of phases executed every timestep; each phase is a
// set of basic blocks plus a communication schedule. A basic block carries
// *generative* ground truth about its behaviour — true stride mix, working
// set, dependency class, ILP — which only the simulator may read directly.
// The tracer (src/trace) must recover what it can by observing generated
// address streams, exactly like instrumentation on a real binary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/access_types.hpp"
#include "memsim/address_stream.hpp"
#include "netsim/comm_event.hpp"

namespace msim::workload {

/// True composition of a block's memory references by stride class.
struct MemoryMix {
  double unit = 1.0;    ///< fraction of references with stride 1
  double short_ = 0.0;  ///< fraction with short non-unit stride
  double random = 0.0;  ///< fraction with no usable stride
  /// Element stride (in elements) of the short-stride component, 2..8.
  int short_stride_elements = 4;
};

/// Validates that the mix is a distribution and the stride is in range.
void validate(const MemoryMix& mix);

/// One traced/simulated unit of computation.
struct BasicBlock {
  std::string name;

  std::uint64_t flops_per_iteration = 0;
  std::uint64_t refs_per_iteration = 0;  ///< loads + stores
  std::uint32_t element_bytes = 8;
  std::uint64_t iterations = 0;  ///< per process, per timestep

  MemoryMix mix;
  std::uint64_t working_set_bytes = 0;  ///< per process

  memsim::DependencyClass dependency =
      memsim::DependencyClass::Independent;
  double branch_density = 0.0;  ///< data-dependent branches per iteration
  double ilp_efficiency = 0.25; ///< achievable fraction of FP peak (OOO core)
  /// Fraction of this block's *random* references that land on a
  /// recently-touched page. Real indirect access (renumbered meshes, AMR
  /// blocks) is far from uniformly random at page granularity; GUPS-style
  /// probes have none of this locality. Ground-truth TLB effect only.
  double page_locality = 0.0;

  /// Total memory traffic of this block per timestep, bytes.
  [[nodiscard]] std::uint64_t bytes_per_timestep() const;
  /// Total FP operations per timestep.
  [[nodiscard]] std::uint64_t flops_per_timestep() const;

  /// Generative address-stream spec for the tracer's samplers. The seed
  /// space is disjoint per block via the block-name hash.
  [[nodiscard]] memsim::StreamSpec stream_spec() const;
};

void validate(const BasicBlock& block);

/// A phase: blocks plus the communication issued each timestep.
struct Phase {
  std::string name;
  std::vector<BasicBlock> blocks;
  std::vector<netsim::CommEvent> comm;  ///< per process, per timestep
  /// Ratio of slowest to mean process compute time (AMR and irregular
  /// meshes cause >1). Ground truth only; tracing a single process
  /// cannot see it.
  double load_imbalance = 1.0;
};

void validate(const Phase& phase);

/// A complete application test case instantiated at a processor count.
struct AppModel {
  std::string name;       ///< e.g. "AVUS_Standard"
  int nprocs = 0;
  int timesteps = 0;
  std::vector<Phase> phases;

  [[nodiscard]] std::uint64_t total_flops_per_timestep() const;
  [[nodiscard]] std::uint64_t total_bytes_per_timestep() const;
};

void validate(const AppModel& app);

}  // namespace msim::workload
