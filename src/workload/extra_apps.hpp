// Extension workloads beyond the TI-05 suite.
//
// The paper notes that adding the NETBENCH term (#8) helped only marginally
// "because these application cases are not communication bound". These
// extra application models exist to probe that caveat: workloads whose
// communication structure dominates at scale, where the network term is
// decisive rather than marginal.
#pragma once

#include "workload/basic_block.hpp"

namespace msim::workload {

/// A 3-D FFT pseudo-spectral solver: modest local compute (transpose +
/// butterfly passes) but an alltoall across the full machine every
/// timestep — the canonical communication-bound HPC pattern.
[[nodiscard]] AppModel make_fft3d(int nprocs);

/// A latency-bound implicit solver: tiny per-iteration compute with two
/// global reductions per Krylov iteration — dominated by allreduce latency
/// at scale.
[[nodiscard]] AppModel make_krylov_latency(int nprocs);

}  // namespace msim::workload
