#include "workload/apps.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace msim::workload {

namespace {

using memsim::DependencyClass;
using netsim::CommEvent;
using netsim::CommType;

[[nodiscard]] std::uint64_t u64(double value) {
  MSIM_CHECK(value >= 0.0, "negative count");
  return static_cast<std::uint64_t>(value + 0.5);
}

/// Halo surface of a 3D domain decomposition: 6 faces of a cube holding
/// `cells_per_proc` cells.
[[nodiscard]] double surface_3d(double cells_per_proc) {
  return 6.0 * std::pow(cells_per_proc, 2.0 / 3.0);
}

/// Halo perimeter of a 2D decomposition: 4 edges of a square patch.
[[nodiscard]] double perimeter_2d(double columns_per_proc) {
  return 4.0 * std::sqrt(columns_per_proc);
}

// ---------------------------------------------------------------- AVUS --

AppModel make_avus(const std::string& name, double total_cells,
                   int timesteps, int nprocs) {
  MSIM_REQUIRE(nprocs > 0, "nprocs must be positive");
  const double cells = total_cells / nprocs;

  Phase solve;
  solve.name = "implicit_solve";

  // Flux computation over unstructured faces: indirect addressing makes
  // roughly a third of references effectively random.
  solve.blocks.push_back(BasicBlock{
      .name = name + "/flux_sweep",
      .flops_per_iteration = 85,
      .refs_per_iteration = 22,
      .element_bytes = 8,
      .iterations = u64(cells * 140),
      .mix = {.unit = 0.52, .short_ = 0.16, .random = 0.32,
              .short_stride_elements = 4},
      .working_set_bytes = u64(cells * 176),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.08,
      .ilp_efficiency = 0.22,
      .page_locality = 0.50});

  // Gradient/limiter reconstruction: wider stencils, stride-8 gathers.
  solve.blocks.push_back(BasicBlock{
      .name = name + "/gradient_reconstruct",
      .flops_per_iteration = 25,
      .refs_per_iteration = 14,
      .element_bytes = 8,
      .iterations = u64(cells * 100),
      .mix = {.unit = 0.45, .short_ = 0.25, .random = 0.30,
              .short_stride_elements = 8},
      .working_set_bytes = u64(cells * 120),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.12,
      .ilp_efficiency = 0.25,
      .page_locality = 0.72});

  // Turbulence model update: mostly streaming, but the k-epsilon source
  // terms carry a loop recurrence.
  solve.blocks.push_back(BasicBlock{
      .name = name + "/turbulence_update",
      .flops_per_iteration = 20,
      .refs_per_iteration = 10,
      .element_bytes = 8,
      .iterations = u64(cells * 70),
      .mix = {.unit = 0.80, .short_ = 0.10, .random = 0.10,
              .short_stride_elements = 2},
      .working_set_bytes = u64(cells * 64),
      .dependency = DependencyClass::Serial,
      .branch_density = 0.15,
      .ilp_efficiency = 0.30,
      .page_locality = 0.60});

  // Chemistry/source-term evaluation: flop-dense with small state per
  // cell — the part of AVUS that actually tracks floating-point issue.
  solve.blocks.push_back(BasicBlock{
      .name = name + "/source_terms",
      .flops_per_iteration = 150,
      .refs_per_iteration = 5,
      .element_bytes = 8,
      .iterations = u64(cells * 40),
      .mix = {.unit = 0.75, .short_ = 0.15, .random = 0.10,
              .short_stride_elements = 2},
      .working_set_bytes = u64(cells * 48),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.10,
      .ilp_efficiency = 0.35,
      .page_locality = 0.60});

  // Halo exchanges every inner sweep plus per-sweep residual reductions.
  const double halo_bytes = surface_3d(cells) * 40.0;  // 5 doubles/cell
  solve.comm = {
      CommEvent{.type = CommType::PointToPoint, .bytes = u64(halo_bytes),
                .count = 30},
      CommEvent{.type = CommType::AllReduce, .bytes = 64, .count = 50},
  };
  solve.load_imbalance = 1.06;  // unstructured partitions are imperfect

  AppModel app;
  app.name = name;
  app.nprocs = nprocs;
  app.timesteps = timesteps;
  app.phases.push_back(std::move(solve));
  validate(app);
  return app;
}

// --------------------------------------------------------------- HYCOM --

AppModel make_hycom(int nprocs) {
  const double total_columns = 1440.0 * 720.0;  // 1/4-degree global grid
  const int layers = 26;
  const double columns = total_columns / nprocs;
  const double points = columns * layers;

  Phase baroclinic;
  baroclinic.name = "baroclinic";
  baroclinic.blocks.push_back(BasicBlock{
      .name = "HYCOM/baroclinic_momentum",
      .flops_per_iteration = 55,
      .refs_per_iteration = 18,
      .element_bytes = 8,
      .iterations = u64(points * 20),
      .mix = {.unit = 0.72, .short_ = 0.18, .random = 0.10,
              .short_stride_elements = 2},
      .working_set_bytes = u64(points * 120),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.05,
      .ilp_efficiency = 0.28});
  // Isopycnal remapping: layer-target logic is branchy and access jumps
  // across layers.
  baroclinic.blocks.push_back(BasicBlock{
      .name = "HYCOM/isopycnal_remap",
      .flops_per_iteration = 30,
      .refs_per_iteration = 15,
      .element_bytes = 8,
      .iterations = u64(points * 9),
      .mix = {.unit = 0.40, .short_ = 0.20, .random = 0.40,
              .short_stride_elements = 4},
      .working_set_bytes = u64(points * 96),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.30,
      .ilp_efficiency = 0.20,
      .page_locality = 0.45});
  const double halo = perimeter_2d(columns) * layers * 8.0 * 4.0;
  baroclinic.comm = {
      CommEvent{.type = CommType::PointToPoint, .bytes = u64(halo),
                .count = 18},
  };
  baroclinic.load_imbalance = 1.10;  // land/sea masking

  // Barotropic sub-cycling: 2D, cache-resident, serialized by the implicit
  // solve, and dominated by many small allreduces — the communication-
  // sensitive part of HYCOM.
  Phase barotropic;
  barotropic.name = "barotropic";
  barotropic.blocks.push_back(BasicBlock{
      .name = "HYCOM/barotropic_solve",
      .flops_per_iteration = 8,
      .refs_per_iteration = 12,
      .element_bytes = 8,
      .iterations = u64(columns * 200),
      .mix = {.unit = 0.85, .short_ = 0.10, .random = 0.05,
              .short_stride_elements = 2},
      .working_set_bytes = u64(columns * 48),
      .dependency = DependencyClass::Serial,
      .branch_density = 0.05,
      .ilp_efficiency = 0.35});
  barotropic.comm = {
      CommEvent{.type = CommType::AllReduce, .bytes = 16, .count = 50},
      CommEvent{.type = CommType::PointToPoint,
                .bytes = u64(perimeter_2d(columns) * 8.0 * 2.0),
                .count = 50},
  };

  AppModel app;
  app.name = "HYCOM_Standard";
  app.nprocs = nprocs;
  app.timesteps = 240;
  app.phases = {std::move(baroclinic), std::move(barotropic)};
  validate(app);
  return app;
}

// ----------------------------------------------------------- OVERFLOW2 --

AppModel make_overflow2(int nprocs) {
  const double total_points = 30e6;
  const double points = total_points / nprocs;

  Phase step;
  step.name = "adi_step";

  // Explicit RHS stencils: the streaming-friendly part.
  step.blocks.push_back(BasicBlock{
      .name = "OVERFLOW2/rhs_stencil",
      .flops_per_iteration = 60,
      .refs_per_iteration = 24,
      .element_bytes = 8,
      .iterations = u64(points * 8),
      .mix = {.unit = 0.78, .short_ = 0.17, .random = 0.05,
              .short_stride_elements = 3},
      .working_set_bytes = u64(points * 200),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.03,
      .ilp_efficiency = 0.32});

  // Implicit ADI line solves: the working set is a grid *plane* that fits
  // in outer cache, but the scalar penta-diagonal recurrence serializes
  // the loop — fast by MAPS, slow in reality. This block is why the
  // paper's Metric #7 loses to #6 and why Metric #9 wins.
  const double plane_points = std::pow(points, 2.0 / 3.0);
  step.blocks.push_back(BasicBlock{
      .name = "OVERFLOW2/adi_sweep",
      .flops_per_iteration = 12,
      .refs_per_iteration = 16,
      .element_bytes = 8,
      .iterations = u64(points * 58),  // sweeps x 3 directions
      .mix = {.unit = 0.55, .short_ = 0.40, .random = 0.05,
              .short_stride_elements = 4},
      .working_set_bytes = u64(plane_points * 40.0),
      .dependency = DependencyClass::Serial,
      .branch_density = 0.02,
      .ilp_efficiency = 0.35});

  // Chimera (overset) interpolation: gather/scatter between grids.
  step.blocks.push_back(BasicBlock{
      .name = "OVERFLOW2/chimera_interp",
      .flops_per_iteration = 15,
      .refs_per_iteration = 20,
      .element_bytes = 8,
      .iterations = u64(points * 1.0),
      .mix = {.unit = 0.20, .short_ = 0.15, .random = 0.65,
              .short_stride_elements = 8},
      .working_set_bytes = u64(points * 100),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.20,
      .ilp_efficiency = 0.15,
      .page_locality = 0.40});

  const double halo = surface_3d(points) * 40.0;
  step.comm = {
      CommEvent{.type = CommType::PointToPoint, .bytes = u64(halo),
                .count = 6},
      CommEvent{.type = CommType::PointToPoint,
                .bytes = u64(surface_3d(points) * 16.0), .count = 4},
      CommEvent{.type = CommType::AllReduce, .bytes = 32, .count = 6},
  };
  step.load_imbalance = 1.12;  // unequal overset grid sizes

  AppModel app;
  app.name = "OVERFLOW2_Standard";
  app.nprocs = nprocs;
  app.timesteps = 600;
  app.phases.push_back(std::move(step));
  validate(app);
  return app;
}

// --------------------------------------------------------------- RFCTH --

AppModel make_rfcth(int nprocs) {
  const double effective_cells = 5e6;  // AMR-refined rod/plate impact
  const double cells = effective_cells / nprocs;

  Phase hydro;
  hydro.name = "hydro";
  // Multi-material hydro sweep: heavy data-dependent branching on material
  // interfaces.
  hydro.blocks.push_back(BasicBlock{
      .name = "RFCTH/hydro_sweep",
      .flops_per_iteration = 70,
      .refs_per_iteration = 26,
      .element_bytes = 8,
      .iterations = u64(cells * 20),
      .mix = {.unit = 0.50, .short_ = 0.20, .random = 0.30,
              .short_stride_elements = 4},
      .working_set_bytes = u64(cells * 280),
      .dependency = DependencyClass::Independent,
      .branch_density = 0.35,
      .ilp_efficiency = 0.22,
      .page_locality = 0.50});
  // Equation-of-state table lookups: random access into a fixed-size table
  // that fits in large caches but not small ones.
  hydro.blocks.push_back(BasicBlock{
      .name = "RFCTH/eos_lookup",
      .flops_per_iteration = 12,
      .refs_per_iteration = 8,
      .element_bytes = 8,
      .iterations = u64(cells * 16),
      .mix = {.unit = 0.10, .short_ = 0.10, .random = 0.80,
              .short_stride_elements = 2},
      .working_set_bytes = 8 * MiB,
      .dependency = DependencyClass::Independent,
      .branch_density = 0.25,
      .ilp_efficiency = 0.10,
      .page_locality = 0.30});
  const double halo = surface_3d(cells) * 280.0;
  hydro.comm = {
      CommEvent{.type = CommType::PointToPoint, .bytes = u64(halo),
                .count = 12},
      CommEvent{.type = CommType::AllReduce, .bytes = 8, .count = 8},
  };
  hydro.load_imbalance = 1.30;  // refinement concentrates near the impact

  // Adaptive-mesh management: pointer chasing through the block tree.
  Phase amr;
  amr.name = "amr";
  amr.blocks.push_back(BasicBlock{
      .name = "RFCTH/amr_regrid",
      .flops_per_iteration = 5,
      .refs_per_iteration = 30,
      .element_bytes = 8,
      .iterations = u64(cells * 8),
      .mix = {.unit = 0.30, .short_ = 0.10, .random = 0.60,
              .short_stride_elements = 8},
      .working_set_bytes = u64(cells * 200),
      .dependency = DependencyClass::Serial,
      .branch_density = 0.40,
      .ilp_efficiency = 0.08,
      .page_locality = 0.40});
  amr.comm = {
      CommEvent{.type = CommType::AllToAll, .bytes = 2048, .count = 1},
  };
  amr.load_imbalance = 1.20;

  AppModel app;
  app.name = "RFCTH_Standard";
  app.nprocs = nprocs;
  app.timesteps = 160;
  app.phases = {std::move(hydro), std::move(amr)};
  validate(app);
  return app;
}

}  // namespace

AppModel make_avus_standard(int nprocs) {
  // 7M cells, 100 timesteps (wing/flap/end-plates case).
  return make_avus("AVUS_Standard", 7e6, 100, nprocs);
}

AppModel make_avus_large(int nprocs) {
  // 24M cells, 150 timesteps (UAV case).
  return make_avus("AVUS_Large", 24e6, 150, nprocs);
}

AppModel make_hycom_standard(int nprocs) { return make_hycom(nprocs); }

AppModel make_overflow2_standard(int nprocs) { return make_overflow2(nprocs); }

AppModel make_rfcth_standard(int nprocs) { return make_rfcth(nprocs); }

std::vector<TestCase> ti05_suite() {
  return {
      TestCase{"AVUS_Standard", {32, 64, 128}, make_avus_standard},
      TestCase{"AVUS_Large", {128, 256, 384}, make_avus_large},
      TestCase{"HYCOM_Standard", {59, 96, 124}, make_hycom_standard},
      TestCase{"OVERFLOW2_Standard", {32, 48, 64}, make_overflow2_standard},
      TestCase{"RFCTH_Standard", {16, 32, 64}, make_rfcth_standard},
  };
}

const TestCase& find_test_case(const std::string& name) {
  static const std::vector<TestCase> suite = ti05_suite();
  for (const auto& test_case : suite) {
    if (test_case.name == name) return test_case;
  }
  throw precondition_error("unknown test case '" + name + "'");
}

}  // namespace msim::workload
