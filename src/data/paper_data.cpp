#include "data/paper_data.hpp"

namespace msim::data {

namespace {

constexpr double kBlank = -1.0;

/// Build one appendix table from a dense row-major value matrix where
/// kBlank marks the paper's empty cells.
ObservedTable make_table(std::string app, std::vector<int> counts,
                         const std::vector<std::string>& machines,
                         const std::vector<double>& values) {
  ObservedTable table;
  table.app = std::move(app);
  table.cpu_counts = std::move(counts);
  std::size_t index = 0;
  for (const auto& machine : machines) {
    for (int nprocs : table.cpu_counts) {
      const double value = values[index++];
      ObservedCell cell;
      cell.machine = machine;
      cell.nprocs = nprocs;
      if (value != kBlank) cell.seconds = value;
      table.cells.push_back(std::move(cell));
    }
  }
  return table;
}

const std::vector<std::string>& machine_order() {
  static const std::vector<std::string> machines = {
      "ERDC_O3800", "MHPCC_P3",  "NAVO_P3",  "ASC_SC45", "MHPCC_690_1.3",
      "ARL_690_1.7", "ARL_Xeon", "ARL_Altix", "NAVO_655", "ARL_Opteron"};
  return machines;
}

std::vector<ObservedTable> build_observed() {
  std::vector<ObservedTable> tables;

  // Table 6: AVUS Standard, 32/64/128 CPUs.
  tables.push_back(make_table(
      "AVUS_Standard", {32, 64, 128}, machine_order(),
      {12737, 5881, 2733,   15051, 8354, 3779,   18195, 8601, 3870,
       6993,  3334, 1617,   10286, 4932, 2368,   8625,  4466, 1935,
       9115,  4686, 2422,   5872,  2842, kBlank, 6703,  3115, 1460,
       5527,  2747, 1401}));

  // Table 7: AVUS Large, 128/256/384 CPUs.
  tables.push_back(make_table(
      "AVUS_Large", {128, 256, 384}, machine_order(),
      {18103, 8577,  5736,   40177, 12123,  7706,   26362, 12379, 8042,
       10412, 5199,  3394,   14751, 7591,   kBlank, 12718, kBlank, kBlank,
       13654, 6890,  kBlank, kBlank, kBlank, kBlank, 9844,  4576,  2949,
       8599,  4273,  2884}));

  // Table 8: HYCOM Standard, 59/96/124 CPUs.
  tables.push_back(make_table(
      "HYCOM_Standard", {59, 96, 124}, machine_order(),
      {6619, 4329, 4449,   10453, 3912, 2992,   7129, 4420, 3348,
       3594, 2469, 1949,   3532,  2939, 2661,   2586, 1675, 1510,
       3705, 2504, 1991,   2263,  1462, 1176,   2010, 1281, 990,
       1936, 1268, 1031}));

  // Table 9: OVERFLOW-2 Standard, 32/48/64 CPUs.
  tables.push_back(make_table(
      "OVERFLOW2_Standard", {32, 48, 64}, machine_order(),
      {10875, 8008,   5497,   14939, kBlank, 7371,   14939, kBlank, 7371,
       6329,  kBlank, 4109,   9156,  kBlank, 4701,   kBlank, kBlank, kBlank,
       kBlank, kBlank, kBlank, 3143,  2389,   1730,   5454,  4031,  2908,
       kBlank, kBlank, kBlank}));

  // Table 10: RF-CTH2 (RFCTH Standard), 16/32/64 CPUs.
  tables.push_back(make_table(
      "RFCTH_Standard", {16, 32, 64}, machine_order(),
      {6182, 3268, 1793,   6557, 3475, 1869,   6557, 3475, 1869,
       3134, 2170, 1005,   2777, 1813, 1275,   2154, 1660, 5156,
       4203, 2308, 1368,   kBlank, 1122, 614,  1982, 1075, 607,
       1882, 1072, 671}));

  return tables;
}

}  // namespace

const std::vector<ObservedTable>& observed_tables() {
  static const std::vector<ObservedTable> tables = build_observed();
  return tables;
}

std::optional<double> observed_seconds(const std::string& app, int nprocs,
                                       const std::string& machine) {
  for (const auto& table : observed_tables()) {
    if (table.app != app) continue;
    for (const auto& cell : table.cells) {
      if (cell.machine == machine && cell.nprocs == nprocs) {
        return cell.seconds;
      }
    }
  }
  return std::nullopt;
}

const std::vector<Table4Row>& table4() {
  static const std::vector<Table4Row> rows = {
      {"1-S", "HPL", 63, 68},
      {"2-S", "STREAM", 43, 73},
      {"3-S", "GUPS", 33, 27},
      {"4-P", "HPL", 63, 68},
      {"5-P", "HPL+STREAM", 50, 72},
      {"6-P", "HPL+STREAM+GUPS", 22, 18},
      {"7-P", "HPL+MAPS", 24, 21},
      {"8-P", "HPL+MAPS+NET", 22, 18},
      {"9-P", "HPL+MAPS+NET+DEP", 18, 18},
  };
  return rows;
}

BalancedReference balanced_reference() { return BalancedReference{}; }

const std::vector<Table5Row>& table5() {
  static const std::vector<Table5Row> rows = {
      {"ERDC_O3800", {37, 12, 83, 37, 84, 35, 29, 20, 22}},
      {"MHPCC_P3", {58, 53, 19, 58, 52, 14, 29, 24, 25}},
      {"NAVO_P3", {37, 77, 28, 37, 75, 8, 15, 10, 7}},
      {"ASC_SC45", {167, 14, 59, 167, 15, 31, 28, 18, 16}},
      {"MHPCC_690_1.3", {122, 14, 14, 122, 13, 15, 17, 29, 24}},
      {"ARL_690_1.7", {26, 21, 21, 26, 21, 22, 23, 34, 28}},
      {"ARL_Xeon", {42, 37, 23, 42, 37, 21, 64, 39, 21}},
      {"ARL_Altix", {193, 281, 64, 193, 272, 36, 25, 27, 26}},
      {"NAVO_655", {19, 12, 19, 19, 12, 14, 16, 14, 9}},
      {"ARL_Opteron", {20, 29, 45, 20, 27, 44, 30, 32, 26}},
      {"OVERALL", {63, 43, 33, 63, 50, 22, 24, 22, 18}},
  };
  return rows;
}

}  // namespace msim::data
