// The paper's published numbers, embedded verbatim.
//
// Appendix Tables 6-10 give the observed times-to-solution of the five
// TI-05 test cases on the ten target systems (with the gaps the paper
// shows); Tables 4 and 5 give the error assessment we reproduce. These are
// the *reference* values every "paper vs measured" bench compares against.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace msim::data {

/// One appendix cell: a real observed run time (seconds), or absent where
/// the paper's table is blank.
struct ObservedCell {
  std::string machine;             ///< registry machine name
  int nprocs = 0;
  std::optional<double> seconds;   ///< nullopt = blank in the paper
};

/// One appendix table: all observed runs of one application test case.
struct ObservedTable {
  std::string app;                 ///< matches workload::TestCase::name
  std::vector<int> cpu_counts;     ///< the paper's three counts
  std::vector<ObservedCell> cells;
};

/// Appendix Tables 6-10, in paper order.
[[nodiscard]] const std::vector<ObservedTable>& observed_tables();

/// Observed time for (app, nprocs, machine); nullopt if blank or unknown.
[[nodiscard]] std::optional<double> observed_seconds(
    const std::string& app, int nprocs, const std::string& machine);

/// One row of the paper's Table 4.
struct Table4Row {
  std::string label;        ///< "1-S" .. "9-P"
  std::string description;  ///< "HPL+MAPS+NET" etc.
  double mean_abs_error_pct = 0.0;
  double stddev_pct = 0.0;
};

/// The paper's Table 4 (overall error per metric), nine rows.
[[nodiscard]] const std::vector<Table4Row>& table4();

/// The paper's Section 4 balanced-rating results.
struct BalancedReference {
  double equal_mean_pct = 35.0;
  double equal_stddev_pct = 25.0;
  double fitted_mean_pct = 33.0;
  double fitted_stddev_pct = 30.0;
  double fitted_weights[3] = {0.05, 0.50, 0.45};  ///< HPL, STREAM, all_reduce
};
[[nodiscard]] BalancedReference balanced_reference();

/// One row of the paper's Table 5 (per-system error for metrics #1-#9).
struct Table5Row {
  std::string machine;
  double error_pct[9] = {};
};

/// The paper's Table 5 (ten systems plus the OVERALL row last).
[[nodiscard]] const std::vector<Table5Row>& table5();

}  // namespace msim::data
