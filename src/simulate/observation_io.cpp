#include "simulate/observation_io.hpp"

#include <map>
#include <sstream>

#include "common/check.hpp"

namespace msim::simulate {

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

}  // namespace

std::string to_text(const ObservationSet& set) {
  std::ostringstream os;
  os.precision(17);
  os << "# msim observation set\n";
  os << "observations = " << set.size() << '\n';
  const auto& all = set.all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::string prefix = "obs." + std::to_string(i) + '.';
    os << prefix << "app = " << all[i].app << '\n';
    os << prefix << "nprocs = " << all[i].nprocs << '\n';
    os << prefix << "machine = " << all[i].machine << '\n';
    os << prefix << "seconds = " << all[i].seconds << '\n';
  }
  return os.str();
}

ObservationSet observation_set_from_text(const std::string& text) {
  std::map<std::string, std::string> pairs;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    MSIM_REQUIRE(eq != std::string::npos, "missing '=' in: " + line);
    const std::string key = trim(line.substr(0, eq));
    MSIM_REQUIRE(pairs.emplace(key, trim(line.substr(eq + 1))).second,
                 "duplicate key '" + key + "'");
  }
  auto take = [&pairs](const std::string& key) {
    const auto it = pairs.find(key);
    MSIM_REQUIRE(it != pairs.end(), "missing key '" + key + "'");
    std::string value = it->second;
    pairs.erase(it);
    return value;
  };
  auto parse_u64 = [](const std::string& key, const std::string& value) {
    try {
      std::size_t used = 0;
      const auto parsed = std::stoull(value, &used);
      MSIM_REQUIRE(used == value.size(), "trailing junk");
      return parsed;
    } catch (const std::exception&) {
      throw precondition_error("bad integer for '" + key + "': " + value);
    }
  };
  auto parse_double = [](const std::string& key, const std::string& value) {
    try {
      std::size_t used = 0;
      const double parsed = std::stod(value, &used);
      MSIM_REQUIRE(used == value.size(), "trailing junk");
      return parsed;
    } catch (const std::exception&) {
      throw precondition_error("bad number for '" + key + "': " + value);
    }
  };

  ObservationSet set;
  const std::uint64_t count =
      parse_u64("observations", take("observations"));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string prefix = "obs." + std::to_string(i) + '.';
    Observation observation;
    observation.app = take(prefix + "app");
    observation.nprocs = static_cast<int>(
        parse_u64(prefix + "nprocs", take(prefix + "nprocs")));
    observation.machine = take(prefix + "machine");
    observation.seconds =
        parse_double(prefix + "seconds", take(prefix + "seconds"));
    set.add(std::move(observation));
  }
  MSIM_REQUIRE(pairs.empty(),
               "unknown key '" + pairs.begin()->first +
                   "' in observation set");
  return set;
}

}  // namespace msim::simulate
