#include "simulate/executor.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "cpusim/flop_model.hpp"
#include "memsim/bandwidth_model.hpp"
#include "memsim/tlb.hpp"
#include "netsim/cost_model.hpp"

namespace msim::simulate {

namespace {

using memsim::AccessProfile;
using memsim::DependencyClass;
using memsim::StrideClass;

std::uint64_t hash_string(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char ch : text) h = mix64(h, static_cast<std::uint64_t>(ch));
  return h;
}

/// Deterministic relative noise in [-1, 1] for a (machine, app, nprocs)
/// triple — stands in for run-to-run weather (OS noise, placement).
double unit_noise(const std::string& machine, const std::string& app,
                  int nprocs, std::uint64_t salt) {
  std::uint64_t state = mix64(hash_string(machine) ^ salt,
                              hash_string(app));
  state = mix64(state, static_cast<std::uint64_t>(nprocs));
  const std::uint64_t draw = splitmix64(state);
  return static_cast<double>(draw >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

/// Memory time of a block: per-stride-class traffic divided by the
/// sustained bandwidth for that class at the block's (conflict-inflated)
/// working set.
double block_memory_time(const workload::BasicBlock& block,
                         const machine::MachineConfig& machine,
                         std::uint64_t effective_working_set) {
  const double total_bytes = static_cast<double>(block.bytes_per_timestep());
  struct ClassShare {
    StrideClass stride;
    double fraction;
  };
  const ClassShare shares[] = {
      {StrideClass::Unit, block.mix.unit},
      {StrideClass::Short, block.mix.short_},
      {StrideClass::Random, block.mix.random},
  };
  double seconds = 0.0;
  for (const auto& share : shares) {
    if (share.fraction <= 0.0) continue;
    const AccessProfile profile{.stride = share.stride,
                                .dependency = block.dependency,
                                .branch_density = block.branch_density};
    const double bw = memsim::sustained_bandwidth(
        machine, effective_working_set, profile);
    seconds += total_bytes * share.fraction / bw;
  }
  return seconds;
}

/// TLB stall time of a block per timestep.
double block_tlb_time(const workload::BasicBlock& block,
                      const machine::MachineConfig& machine) {
  const double refs = static_cast<double>(block.refs_per_iteration) *
                      static_cast<double>(block.iterations);
  struct ClassStride {
    double fraction;
    std::uint64_t stride_bytes;
    double locality;  ///< fraction of references that reuse a hot page
  };
  const ClassStride strides[] = {
      {block.mix.unit, block.element_bytes, 0.0},
      {block.mix.short_,
       static_cast<std::uint64_t>(block.element_bytes) *
           static_cast<std::uint64_t>(block.mix.short_stride_elements),
       0.0},
      {block.mix.random, 0, block.page_locality},
  };
  double seconds = 0.0;
  for (const auto& entry : strides) {
    if (entry.fraction <= 0.0) continue;
    const double miss_rate =
        memsim::Tlb::expected_miss_rate(machine.tlb,
                                        block.working_set_bytes,
                                        entry.stride_bytes) *
        (1.0 - entry.locality);
    seconds += refs * entry.fraction * miss_rate *
               machine.tlb.miss_penalty_s;
  }
  return seconds;
}

}  // namespace

double conflict_susceptibility(const machine::MachineConfig& machine) {
  double total = 0.0;
  for (const auto& level : machine.caches) {
    total += 1.0 / std::sqrt(static_cast<double>(level.associativity));
  }
  return total / static_cast<double>(machine.caches.size());
}

std::uint64_t conflict_inflated_working_set(
    const workload::BasicBlock& block, const machine::MachineConfig& machine,
    double strength) {
  const double u = block.mix.unit;
  const double s = block.mix.short_;
  const double r = block.mix.random;
  const double diversity = 1.0 - (u * u + s * s + r * r);
  const double inflation =
      1.0 + strength * diversity * conflict_susceptibility(machine);
  return static_cast<std::uint64_t>(
      static_cast<double>(block.working_set_bytes) * inflation);
}

machine::MachineConfig apply_contention(
    const machine::MachineConfig& machine) {
  machine::MachineConfig contended = machine;
  const double sharing =
      std::pow(static_cast<double>(machine.net.procs_per_node),
               machine.memory_contention);
  contended.memory.unit_stride_bw /= sharing;
  contended.memory.random_bw /= sharing;
  return contended;
}

RunResult execute(const workload::AppModel& app,
                  const machine::MachineConfig& machine,
                  const ExecutorOptions& options) {
  workload::validate(app);
  machine::validate(machine);

  const machine::MachineConfig effective =
      options.apply_contention ? apply_contention(machine) : machine;

  RunResult result;
  result.app = app.name;
  result.machine = machine.name;
  result.nprocs = app.nprocs;

  double compute_per_step = 0.0;
  double comm_per_step = 0.0;
  for (const auto& phase : app.phases) {
    PhaseTiming timing;
    timing.phase = phase.name;

    double phase_compute = 0.0;
    for (const auto& block : phase.blocks) {
      BlockTiming bt;
      bt.block = block.name;
      bt.flop_seconds = cpusim::flop_time(
          effective,
          cpusim::FlopWork{
              .flops = block.flops_per_timestep(),
              .ilp_efficiency = block.ilp_efficiency,
              .serial_dependent =
                  block.dependency == DependencyClass::Serial});
      const std::uint64_t effective_ws =
          options.apply_conflicts
              ? conflict_inflated_working_set(block, effective,
                                              options.conflict_strength)
              : block.working_set_bytes;
      bt.memory_seconds = block_memory_time(block, effective, effective_ws);
      bt.tlb_seconds =
          options.apply_tlb ? block_tlb_time(block, effective) : 0.0;
      bt.total_seconds =
          cpusim::combine_overlap(bt.flop_seconds,
                                  bt.memory_seconds + bt.tlb_seconds,
                                  options.overlap,
                                  effective.cpu.latency_hiding);
      phase_compute += bt.total_seconds;
      timing.blocks.push_back(std::move(bt));
    }
    timing.compute_seconds = phase_compute * phase.load_imbalance;

    double phase_comm = 0.0;
    for (const auto& event : phase.comm) {
      // Point-to-point halo exchanges fire from every rank on a node at
      // once and share the NIC; collectives are modeled as internally
      // scheduled (sharing 1).
      const double sharing =
          event.type == netsim::CommType::PointToPoint
              ? std::pow(static_cast<double>(effective.net.procs_per_node),
                         0.35)
              : 1.0;
      phase_comm +=
          netsim::event_time(effective.net, event, app.nprocs, sharing);
    }
    timing.comm_seconds = phase_comm;

    compute_per_step += timing.compute_seconds;
    comm_per_step += timing.comm_seconds;
    result.per_timestep.push_back(std::move(timing));
  }

  double scale = 1.0;
  if (options.apply_system_efficiency) scale /= machine.system_efficiency;
  if (options.apply_noise) {
    // Per-(machine, app) compiler/runtime affinity, constant across counts,
    // plus per-count run-to-run variability.
    scale *= 1.0 + options.affinity_amplitude *
                       unit_noise(machine.name, app.name, 0,
                                  options.noise_salt);
    scale *= 1.0 + options.noise_amplitude *
                       unit_noise(machine.name, app.name, app.nprocs,
                                  options.noise_salt);
  }

  const double steps = static_cast<double>(app.timesteps);
  result.compute_seconds = compute_per_step * steps * scale;
  result.comm_seconds = comm_per_step * steps * scale;
  result.wall_seconds = result.compute_seconds + result.comm_seconds;
  MSIM_CHECK(result.wall_seconds > 0.0, "simulated time must be positive");
  return result;
}

}  // namespace msim::simulate
