#include "simulate/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace msim::simulate {

namespace {

/// One detailed-simulator run, wrapped in telemetry: a span per
/// (app, machine, nprocs) and an always-on run counter.
RunResult traced_execute(const workload::AppModel& app,
                         const machine::MachineConfig& machine,
                         const ExecutorOptions& options,
                         const std::string& app_name, int nprocs) {
  static obs::Counter& runs =
      obs::Registry::instance().counter("campaign.runs");
  runs.add();
  obs::Span span("run", "campaign");
  span.arg("app", app_name)
      .arg("machine", machine.name)
      .arg("nprocs", nprocs);
  return execute(app, machine, options);
}

}  // namespace

void ObservationSet::add(Observation observation) {
  MSIM_REQUIRE(!find(observation.app, observation.nprocs, observation.machine)
                    .has_value(),
               "duplicate observation");
  obs_.push_back(std::move(observation));
}

std::optional<double> ObservationSet::find(const std::string& app, int nprocs,
                                           const std::string& machine) const {
  for (const auto& observation : obs_) {
    if (observation.app == app && observation.nprocs == nprocs &&
        observation.machine == machine) {
      return observation.seconds;
    }
  }
  return std::nullopt;
}

double ObservationSet::at(const std::string& app, int nprocs,
                          const std::string& machine) const {
  const auto found = find(app, nprocs, machine);
  MSIM_REQUIRE(found.has_value(),
               "no observation for " + app + "@" + std::to_string(nprocs) +
                   " on " + machine);
  return *found;
}

ObservationSet run_campaign(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options) {
  ObservationSet set;
  for (const auto& test_case : suite) {
    for (int nprocs : test_case.cpu_counts) {
      const workload::AppModel app = test_case.build(nprocs);
      for (const auto& machine : machines) {
        const RunResult run =
            traced_execute(app, machine, options, test_case.name, nprocs);
        set.add(Observation{.app = test_case.name,
                            .nprocs = nprocs,
                            .machine = machine.name,
                            .seconds = run.wall_seconds});
      }
    }
  }
  return set;
}

ObservationSet run_campaign_parallel(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options, unsigned threads) {
  // Work items: one per (test case, count), in deterministic order.
  struct WorkItem {
    const workload::TestCase* test_case;
    int nprocs;
  };
  std::vector<WorkItem> items;
  for (const auto& test_case : suite) {
    for (int nprocs : test_case.cpu_counts) {
      items.push_back(WorkItem{&test_case, nprocs});
    }
  }

  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(threads, items.size()));

  // Each slot is written by exactly one worker; no synchronization needed
  // beyond the atomic work counter and thread joins.
  std::vector<std::vector<Observation>> results(items.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t index = next.fetch_add(1); index < items.size();
         index = next.fetch_add(1)) {
      const WorkItem& item = items[index];
      const workload::AppModel app = item.test_case->build(item.nprocs);
      for (const auto& machine : machines) {
        const RunResult run = traced_execute(
            app, machine, options, item.test_case->name, item.nprocs);
        results[index].push_back(Observation{.app = item.test_case->name,
                                             .nprocs = item.nprocs,
                                             .machine = machine.name,
                                             .seconds = run.wall_seconds});
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  ObservationSet set;
  for (auto& chunk : results) {
    for (auto& observation : chunk) set.add(std::move(observation));
  }
  return set;
}

ObservationSet run_paper_campaign() {
  std::vector<machine::MachineConfig> machines = machine::targets();
  machines.push_back(machine::find(machine::base_system_name()));
  return run_campaign(machines, workload::ti05_suite());
}

}  // namespace msim::simulate
