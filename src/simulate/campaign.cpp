#include "simulate/campaign.hpp"

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
// Layering note: the campaign participates in the pipeline's shared stage
// scheduler instead of owning a pool — run_indexed honors MSIM_THREADS and
// degrades to inline execution when the campaign already runs on a
// scheduler worker (a StudyGraph ground-truth node), so nested campaigns
// can never oversubscribe the machine.
#include "pipeline/scheduler.hpp"  // msim-lint: allow(layer.back-edge)

namespace msim::simulate {

namespace {

/// One detailed-simulator run, wrapped in telemetry: a span per
/// (app, machine, nprocs) and an always-on run counter.
RunResult traced_execute(const workload::AppModel& app,
                         const machine::MachineConfig& machine,
                         const ExecutorOptions& options,
                         const std::string& app_name, int nprocs) {
  static obs::Counter& runs =
      obs::Registry::instance().counter("campaign.runs");
  runs.add();
  obs::Span span("run", "campaign");
  span.arg("app", app_name)
      .arg("machine", machine.name)
      .arg("nprocs", nprocs);
  return execute(app, machine, options);
}

}  // namespace

void ObservationSet::add(Observation observation) {
  MSIM_REQUIRE(!find(observation.app, observation.nprocs, observation.machine)
                    .has_value(),
               "duplicate observation");
  obs_.push_back(std::move(observation));
}

std::optional<double> ObservationSet::find(const std::string& app, int nprocs,
                                           const std::string& machine) const {
  for (const auto& observation : obs_) {
    if (observation.app == app && observation.nprocs == nprocs &&
        observation.machine == machine) {
      return observation.seconds;
    }
  }
  return std::nullopt;
}

double ObservationSet::at(const std::string& app, int nprocs,
                          const std::string& machine) const {
  const auto found = find(app, nprocs, machine);
  MSIM_REQUIRE(found.has_value(),
               "no observation for " + app + "@" + std::to_string(nprocs) +
                   " on " + machine);
  return *found;
}

ObservationSet run_campaign(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options) {
  ObservationSet set;
  for (const auto& test_case : suite) {
    for (int nprocs : test_case.cpu_counts) {
      const workload::AppModel app = test_case.build(nprocs);
      for (const auto& machine : machines) {
        const RunResult run =
            traced_execute(app, machine, options, test_case.name, nprocs);
        set.add(Observation{.app = test_case.name,
                            .nprocs = nprocs,
                            .machine = machine.name,
                            .seconds = run.wall_seconds});
      }
    }
  }
  return set;
}

std::vector<CampaignItem> campaign_items(
    const std::vector<workload::TestCase>& suite) {
  std::vector<CampaignItem> items;
  for (std::size_t c = 0; c < suite.size(); ++c) {
    for (int nprocs : suite[c].cpu_counts) {
      items.push_back(CampaignItem{.case_index = c, .nprocs = nprocs});
    }
  }
  return items;
}

std::vector<Observation> run_campaign_item(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite, const CampaignItem& item,
    const ExecutorOptions& options) {
  MSIM_REQUIRE(item.case_index < suite.size(),
               "campaign item outside the suite");
  const workload::TestCase& test_case = suite[item.case_index];
  const workload::AppModel app = test_case.build(item.nprocs);
  std::vector<Observation> observations;
  observations.reserve(machines.size());
  for (const auto& machine : machines) {
    const RunResult run =
        traced_execute(app, machine, options, test_case.name, item.nprocs);
    observations.push_back(Observation{.app = test_case.name,
                                       .nprocs = item.nprocs,
                                       .machine = machine.name,
                                       .seconds = run.wall_seconds});
  }
  return observations;
}

ObservationSet run_campaign_parallel(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options, unsigned threads) {
  const std::vector<CampaignItem> items = campaign_items(suite);

  // Each slot is written by exactly one worker; no synchronization needed
  // beyond what the scheduler provides.
  std::vector<std::vector<Observation>> results(items.size());
  pipeline::run_indexed(
      items.size(), threads,
      [&](std::size_t index) {
        results[index] =
            run_campaign_item(machines, suite, items[index], options);
      },
      "campaign");

  ObservationSet set;
  for (auto& chunk : results) {
    for (auto& observation : chunk) set.add(std::move(observation));
  }
  return set;
}

ObservationSet run_paper_campaign() {
  std::vector<machine::MachineConfig> machines = machine::targets();
  machines.push_back(machine::find(machine::base_system_name()));
  return run_campaign(machines, workload::ti05_suite());
}

}  // namespace msim::simulate
