// Full-study campaign driver: run every (application, processor count,
// machine) combination — the paper's 150 observations — and collect them in
// an indexed set the evaluation layer can query.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "simulate/executor.hpp"
#include "workload/apps.hpp"

namespace msim::simulate {

/// One (app, nprocs, machine) measured wall-clock observation.
struct Observation {
  std::string app;
  int nprocs = 0;
  std::string machine;
  double seconds = 0.0;
};

/// Indexed collection of observations.
class ObservationSet {
 public:
  void add(Observation observation);

  /// Time for a configuration, or nullopt if absent.
  [[nodiscard]] std::optional<double> find(const std::string& app, int nprocs,
                                           const std::string& machine) const;

  /// Time for a configuration; throws precondition_error if absent.
  [[nodiscard]] double at(const std::string& app, int nprocs,
                          const std::string& machine) const;

  [[nodiscard]] const std::vector<Observation>& all() const { return obs_; }
  [[nodiscard]] std::size_t size() const { return obs_.size(); }

 private:
  std::vector<Observation> obs_;
};

/// Run the given test cases at their paper processor counts on each machine.
[[nodiscard]] ObservationSet run_campaign(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options = {});

/// Same campaign fanned out across threads — one task per (test case,
/// processor count), each sweeping all machines. Results are identical to
/// run_campaign (the executor is pure), and observations are collected in
/// the same deterministic order. `threads` of 0 uses the hardware count.
[[nodiscard]] ObservationSet run_campaign_parallel(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options = {}, unsigned threads = 0);

/// Convenience: the full paper campaign (10 targets + base system, TI-05
/// suite, default executor options).
[[nodiscard]] ObservationSet run_paper_campaign();

}  // namespace msim::simulate
