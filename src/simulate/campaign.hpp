// Full-study campaign driver: run every (application, processor count,
// machine) combination — the paper's 150 observations — and collect them in
// an indexed set the evaluation layer can query.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "simulate/executor.hpp"
#include "workload/apps.hpp"

namespace msim::simulate {

/// One (app, nprocs, machine) measured wall-clock observation.
struct Observation {
  std::string app;
  int nprocs = 0;
  std::string machine;
  double seconds = 0.0;
};

/// Indexed collection of observations.
class ObservationSet {
 public:
  void add(Observation observation);

  /// Time for a configuration, or nullopt if absent.
  [[nodiscard]] std::optional<double> find(const std::string& app, int nprocs,
                                           const std::string& machine) const;

  /// Time for a configuration; throws precondition_error if absent.
  [[nodiscard]] double at(const std::string& app, int nprocs,
                          const std::string& machine) const;

  [[nodiscard]] const std::vector<Observation>& all() const { return obs_; }
  [[nodiscard]] std::size_t size() const { return obs_.size(); }

 private:
  std::vector<Observation> obs_;
};

/// Run the given test cases at their paper processor counts on each machine.
[[nodiscard]] ObservationSet run_campaign(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options = {});

/// One (test case, processor count) unit of campaign work. The campaign's
/// natural fan-out granularity: each item sweeps every machine, and items
/// are independent, so a scheduler (run_indexed or the cross-study
/// StudyGraph) can run them in any order or concurrently.
struct CampaignItem {
  std::size_t case_index = 0;  ///< index into the suite
  int nprocs = 0;
};

/// The campaign's work list for a suite, in deterministic (suite order,
/// then cpu_counts order) sequence — the order run_campaign emits
/// observations in.
[[nodiscard]] std::vector<CampaignItem> campaign_items(
    const std::vector<workload::TestCase>& suite);

/// Run one campaign item: build the application model once and execute it
/// on every machine, in machine order. Pure; the building block of both
/// run_campaign_parallel and the StudyGraph's ground-truth nodes.
[[nodiscard]] std::vector<Observation> run_campaign_item(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite, const CampaignItem& item,
    const ExecutorOptions& options = {});

/// Same campaign fanned out across threads — one task per (test case,
/// processor count), each sweeping all machines. Results are identical to
/// run_campaign (the executor is pure), and observations are collected in
/// the same deterministic order. Runs on the pipeline stage scheduler:
/// `threads` of 0 uses the scheduler default (MSIM_THREADS when set, else
/// the hardware count), and a campaign issued from inside a scheduler
/// worker runs inline instead of spawning a nested pool.
[[nodiscard]] ObservationSet run_campaign_parallel(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<workload::TestCase>& suite,
    const ExecutorOptions& options = {}, unsigned threads = 0);

/// Convenience: the full paper campaign (10 targets + base system, TI-05
/// suite, default executor options).
[[nodiscard]] ObservationSet run_paper_campaign();

}  // namespace msim::simulate
