// Detailed ("ground truth") application execution on a machine model.
//
// This executor stands in for running the real application on real hardware.
// It reads the workload's generative spec directly and applies every effect
// the machine model knows about — including the ones that no probe measures
// and no trace records (TLB misses, per-node memory contention, system
// efficiency, load imbalance, deterministic per-configuration noise). The
// prediction pipeline (trace -> convolve -> metrics) must approximate these
// observations from strictly less information, which is what makes its error
// profile meaningful.
#pragma once

#include <string>
#include <vector>

#include "cpusim/overlap.hpp"
#include "machine/machine_config.hpp"
#include "workload/basic_block.hpp"

namespace msim::simulate {

/// Per-block timing breakdown for one timestep.
struct BlockTiming {
  std::string block;
  double flop_seconds = 0.0;
  double memory_seconds = 0.0;
  double tlb_seconds = 0.0;
  double total_seconds = 0.0;  ///< after overlap combination
};

/// Per-phase timing for one timestep.
struct PhaseTiming {
  std::string phase;
  double compute_seconds = 0.0;  ///< includes load imbalance
  double comm_seconds = 0.0;
  std::vector<BlockTiming> blocks;

  [[nodiscard]] double total_seconds() const {
    return compute_seconds + comm_seconds;
  }
};

/// Result of a full simulated run.
struct RunResult {
  std::string app;
  std::string machine;
  int nprocs = 0;
  double wall_seconds = 0.0;
  double compute_seconds = 0.0;  ///< totals over all timesteps
  double comm_seconds = 0.0;
  std::vector<PhaseTiming> per_timestep;  ///< one entry per phase

  [[nodiscard]] double comm_fraction() const {
    const double total = compute_seconds + comm_seconds;
    return total > 0.0 ? comm_seconds / total : 0.0;
  }
};

/// Knobs for ablating ground-truth-only effects (all on by default).
struct ExecutorOptions {
  bool apply_tlb = true;
  bool apply_contention = true;
  bool apply_system_efficiency = true;
  bool apply_noise = true;
  /// Seed for the deterministic weather/affinity draws. One value of this
  /// salt corresponds to one "world" of unmodeled machine-application
  /// interactions; the default is the repository's reference world.
  std::uint64_t noise_salt = 14;
  /// Run-to-run variability per (machine, app, count): placement, OS noise.
  double noise_amplitude = 0.08;
  /// Code-generation affinity per (machine, app): how well this system's
  /// compiler and runtime happen to like this code. Persistent across
  /// processor counts, invisible to every probe, and not cancelled by
  /// base-ratio normalization — a major real-world error floor.
  double affinity_amplitude = 0.15;
  /// Mixed-pattern blocks thrash caches in ways single-pattern probes never
  /// see: interleaved streams conflict in low-associativity caches,
  /// inflating the effective working set. Scale of that inflation.
  bool apply_conflicts = true;
  double conflict_strength = 0.9;
  cpusim::OverlapPolicy overlap = cpusim::OverlapPolicy::Partial;
};

/// Execute an application model on a machine model.
[[nodiscard]] RunResult execute(const workload::AppModel& app,
                                const machine::MachineConfig& machine,
                                const ExecutorOptions& options = {});

/// The machine as the application experiences it: main-memory bandwidth
/// derated by per-node contention. Exposed for tests.
[[nodiscard]] machine::MachineConfig apply_contention(
    const machine::MachineConfig& machine);

/// Average conflict susceptibility of a machine's caches (mean of
/// 1/sqrt(associativity) across levels); a direct-mapped hierarchy is 1.
[[nodiscard]] double conflict_susceptibility(
    const machine::MachineConfig& machine);

/// Effective working set of a block once stream interference is accounted
/// for: spec working set times (1 + strength * diversity * susceptibility),
/// where diversity = 1 - sum of squared mix fractions. Exposed for tests.
[[nodiscard]] std::uint64_t conflict_inflated_working_set(
    const workload::BasicBlock& block, const machine::MachineConfig& machine,
    double strength);

}  // namespace msim::simulate
