// Text (de)serialization for observation sets.
//
// An ObservationSet is the ground-truth artifact of a campaign — the
// paper's 150+15 measured wall-clocks. Campaigns are the most expensive
// pipeline stage, so the artifact cache archives them in the same
// "dotted.key = value" style as the other formats, losslessly (times are
// written at full precision and round-trip bitwise).
#pragma once

#include <string>

#include "simulate/campaign.hpp"

namespace msim::simulate {

/// Serialize an observation set to text (observation order preserved).
[[nodiscard]] std::string to_text(const ObservationSet& set);

/// Parse an observation set; throws precondition_error on malformed input.
[[nodiscard]] ObservationSet observation_set_from_text(
    const std::string& text);

}  // namespace msim::simulate
