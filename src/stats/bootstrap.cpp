#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "stats/summary.hpp"

namespace msim::stats {

BootstrapInterval bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence, std::size_t resamples, std::uint64_t seed) {
  MSIM_REQUIRE(!values.empty(), "bootstrap needs data");
  MSIM_REQUIRE(confidence > 0.0 && confidence < 1.0,
               "confidence must be in (0, 1)");
  MSIM_REQUIRE(resamples >= 10, "need a sensible number of resamples");

  BootstrapInterval interval;
  interval.point = statistic(values);

  Rng rng(seed);
  std::vector<double> resample(values.size());
  std::vector<double> estimates;
  estimates.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& value : resample) {
      value = values[rng.uniform_u64(values.size())];
    }
    estimates.push_back(statistic(resample));
  }
  std::sort(estimates.begin(), estimates.end());

  const double alpha = (1.0 - confidence) / 2.0;
  const auto index = [&](double quantile) {
    const double position =
        quantile * static_cast<double>(estimates.size() - 1);
    return estimates[static_cast<std::size_t>(std::llround(position))];
  };
  interval.lower = index(alpha);
  interval.upper = index(1.0 - alpha);
  return interval;
}

BootstrapInterval bootstrap_mean_ci(std::span<const double> values,
                                    double confidence,
                                    std::size_t resamples,
                                    std::uint64_t seed) {
  return bootstrap_ci(
      values, [](std::span<const double> sample) { return mean(sample); },
      confidence, resamples, seed);
}

}  // namespace msim::stats
