#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "stats/summary.hpp"

namespace msim::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  MSIM_REQUIRE(x.size() == y.size(), "series must have equal length");
  MSIM_REQUIRE(x.size() >= 2, "correlation needs at least two points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
/// Fractional ranks with ties replaced by their average rank.
std::vector<double> fractional_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) +
                                   static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  MSIM_REQUIRE(x.size() == y.size(), "series must have equal length");
  const auto rx = fractional_ranks(x);
  const auto ry = fractional_ranks(y);
  return pearson(rx, ry);
}

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  MSIM_REQUIRE(x.size() == y.size(), "series must have equal length");
  MSIM_REQUIRE(x.size() >= 2, "correlation needs at least two points");
  const std::size_t n = x.size();
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (n - 1) / 2.0;
  const double denom = std::sqrt((n0 - static_cast<double>(ties_x)) *
                                 (n0 - static_cast<double>(ties_y)));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace msim::stats
