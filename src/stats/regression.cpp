#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace msim::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  MSIM_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  MSIM_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  MSIM_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) {
        sum += at(r, i) * at(r, j);
      }
      g.at(i, j) = sum;
      g.at(j, i) = sum;
    }
  }
  return g;
}

std::vector<double> Matrix::transpose_times(std::span<const double> v) const {
  MSIM_REQUIRE(v.size() == rows_, "vector length must equal rows");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out[c] += at(r, c) * v[r];
    }
  }
  return out;
}

std::vector<double> Matrix::times(std::span<const double> x) const {
  MSIM_REQUIRE(x.size() == cols_, "vector length must equal cols");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      sum += at(r, c) * x[c];
    }
    out[r] = sum;
  }
  return out;
}

std::vector<double> solve_spd(const Matrix& s, std::span<const double> b) {
  MSIM_REQUIRE(s.rows() == s.cols(), "solve_spd needs a square matrix");
  MSIM_REQUIRE(b.size() == s.rows(), "rhs length must match matrix");
  const std::size_t n = s.rows();

  // Cholesky factorization S = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = s.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        MSIM_CHECK(sum > 0.0, "matrix is not positive definite");
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }

  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * y[k];
    y[i] = sum / l.at(i, i);
  }

  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l.at(k, ii) * x[k];
    x[ii] = sum / l.at(ii, ii);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  double ridge) {
  MSIM_REQUIRE(ridge >= 0.0, "ridge must be non-negative");
  Matrix gram = a.gram();
  for (std::size_t i = 0; i < gram.rows(); ++i) gram.at(i, i) += ridge;
  const auto rhs = a.transpose_times(b);
  return solve_spd(gram, rhs);
}

std::vector<double> project_to_simplex(std::span<const double> v) {
  MSIM_REQUIRE(!v.empty(), "projection of empty vector");
  // Held, Wolfe & Crowder / Duchi et al.: sort descending, find threshold.
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double cumulative = 0.0;
  double theta = 0.0;
  std::size_t support = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cumulative += sorted[i];
    const double candidate =
        (cumulative - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      theta = candidate;
      support = i + 1;
    }
  }
  MSIM_CHECK(support > 0, "simplex projection found empty support");
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = std::max(0.0, v[i] - theta);
  }
  return out;
}

SimplexFit least_squares_simplex(const Matrix& a, std::span<const double> b,
                                 std::size_t max_iters, double tolerance) {
  const std::size_t k = a.cols();
  const Matrix gram = a.gram();
  const auto atb = a.transpose_times(b);

  // Lipschitz constant of the gradient = largest eigenvalue of A^T A;
  // the trace is a cheap upper bound and suffices for a fixed step size.
  double lipschitz = 0.0;
  for (std::size_t i = 0; i < k; ++i) lipschitz += gram.at(i, i);
  if (lipschitz <= 0.0) lipschitz = 1.0;
  const double step = 1.0 / lipschitz;

  std::vector<double> w(k, 1.0 / static_cast<double>(k));
  auto objective = [&](std::span<const double> weights) {
    const auto aw = a.times(weights);
    double sum = 0.0;
    for (std::size_t r = 0; r < aw.size(); ++r) {
      const double d = aw[r] - b[r];
      sum += d * d;
    }
    return 0.5 * sum;
  };

  double prev = objective(w);
  std::size_t iter = 0;
  for (; iter < max_iters; ++iter) {
    // gradient = A^T A w - A^T b
    std::vector<double> grad(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      double sum = -atb[i];
      for (std::size_t j = 0; j < k; ++j) sum += gram.at(i, j) * w[j];
      grad[i] = sum;
    }
    std::vector<double> trial(k);
    for (std::size_t i = 0; i < k; ++i) trial[i] = w[i] - step * grad[i];
    w = project_to_simplex(trial);
    const double cur = objective(w);
    if (std::abs(prev - cur) <= tolerance * std::max(1.0, prev)) {
      prev = cur;
      ++iter;
      break;
    }
    prev = cur;
  }
  return SimplexFit{.weights = std::move(w), .objective = prev,
                    .iterations = iter};
}

}  // namespace msim::stats
