// Small dense linear algebra for the balanced-rating experiments.
//
// The paper's Section 4 fits category weights (HPL, STREAM, all_reduce) by
// linear regression to minimize prediction error, finding 5%/50%/45%. We
// provide ordinary least squares (normal equations + Cholesky) and a
// projected-gradient solver for weights constrained to the probability
// simplex (non-negative, summing to one), which is what a "balanced rating"
// requires.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace msim::stats {

/// Dense row-major matrix, sized at construction.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// A^T * A (cols x cols).
  [[nodiscard]] Matrix gram() const;

  /// A^T * v for a vector of length rows().
  [[nodiscard]] std::vector<double> transpose_times(
      std::span<const double> v) const;

  /// A * x for a vector of length cols().
  [[nodiscard]] std::vector<double> times(std::span<const double> x) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solve S x = b for symmetric positive definite S via Cholesky.
/// Throws invariant_error if S is not positive definite.
[[nodiscard]] std::vector<double> solve_spd(const Matrix& s,
                                            std::span<const double> b);

/// Ordinary least squares: argmin_x ||A x - b||_2. A small ridge term
/// (lambda >= 0) stabilizes rank-deficient designs.
[[nodiscard]] std::vector<double> least_squares(const Matrix& a,
                                                std::span<const double> b,
                                                double ridge = 0.0);

/// Result of the constrained simplex fit.
struct SimplexFit {
  std::vector<double> weights;  ///< non-negative, sums to 1
  double objective = 0.0;       ///< final 0.5*||A w - b||^2
  std::size_t iterations = 0;
};

/// argmin_w ||A w - b||^2 subject to w >= 0, sum(w) = 1 — projected gradient
/// with Euclidean projection onto the simplex. Deterministic; converges for
/// any PSD Gram matrix.
[[nodiscard]] SimplexFit least_squares_simplex(const Matrix& a,
                                               std::span<const double> b,
                                               std::size_t max_iters = 20000,
                                               double tolerance = 1e-12);

/// Euclidean projection of v onto {w : w >= 0, sum w = 1}.
[[nodiscard]] std::vector<double> project_to_simplex(
    std::span<const double> v);

}  // namespace msim::stats
