// Bootstrap confidence intervals.
//
// The paper reports mean absolute errors over 150 predictions without
// uncertainty; with only 15 (application, count) configurations the means
// are noisier than they look. This resamples the per-prediction errors
// with replacement to put percentile confidence intervals on any summary
// statistic — used by the Table-4 bench's --ci flag and the multi-world
// analysis discussion.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace msim::stats {

struct BootstrapInterval {
  double point = 0.0;  ///< the statistic on the original sample
  double lower = 0.0;  ///< percentile CI lower bound
  double upper = 0.0;  ///< percentile CI upper bound
};

/// Percentile-bootstrap CI of `statistic` over `values`.
/// `confidence` in (0, 1), e.g. 0.95. Deterministic for a fixed seed.
[[nodiscard]] BootstrapInterval bootstrap_ci(
    std::span<const double> values,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence = 0.95, std::size_t resamples = 2000,
    std::uint64_t seed = 0xb007);

/// Convenience: CI of the mean.
[[nodiscard]] BootstrapInterval bootstrap_mean_ci(
    std::span<const double> values, double confidence = 0.95,
    std::size_t resamples = 2000, std::uint64_t seed = 0xb007);

}  // namespace msim::stats
