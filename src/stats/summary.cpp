#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace msim::stats {

double signed_percent_error(double predicted, double measured) {
  MSIM_REQUIRE(measured > 0.0, "measured time must be positive");
  return (predicted - measured) / measured * 100.0;
}

double absolute_percent_error(double predicted, double measured) {
  return std::abs(signed_percent_error(predicted, measured));
}

double mean(std::span<const double> values) {
  MSIM_REQUIRE(!values.empty(), "mean of empty span");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

namespace {
double sum_sq_dev(std::span<const double> values, double mu) {
  double sum = 0.0;
  for (double v : values) {
    const double d = v - mu;
    sum += d * d;
  }
  return sum;
}
}  // namespace

double sample_stddev(std::span<const double> values) {
  MSIM_REQUIRE(!values.empty(), "stddev of empty span");
  if (values.size() == 1) return 0.0;
  return std::sqrt(sum_sq_dev(values, mean(values)) /
                   static_cast<double>(values.size() - 1));
}

double population_stddev(std::span<const double> values) {
  MSIM_REQUIRE(!values.empty(), "stddev of empty span");
  return std::sqrt(sum_sq_dev(values, mean(values)) /
                   static_cast<double>(values.size()));
}

double median(std::vector<double> values) {
  MSIM_REQUIRE(!values.empty(), "median of empty vector");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double min(std::span<const double> values) {
  MSIM_REQUIRE(!values.empty(), "min of empty span");
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  MSIM_REQUIRE(!values.empty(), "max of empty span");
  return *std::max_element(values.begin(), values.end());
}

double geometric_mean(std::span<const double> values) {
  MSIM_REQUIRE(!values.empty(), "geometric mean of empty span");
  double log_sum = 0.0;
  for (double v : values) {
    MSIM_REQUIRE(v > 0.0, "geometric mean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

void RunningStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const {
  MSIM_REQUIRE(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::sample_stddev() const {
  MSIM_REQUIRE(count_ > 0, "stddev of empty accumulator");
  if (count_ == 1) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double RunningStats::population_stddev() const {
  MSIM_REQUIRE(count_ > 0, "stddev of empty accumulator");
  return std::sqrt(m2_ / static_cast<double>(count_));
}

}  // namespace msim::stats
