// Correlation measures used to relate metric scores to observed application
// performance (the paper's framing: "determine the correlation of each
// estimator to true performance data"). Spearman rank correlation also backs
// the appendix-validation bench, where we compare how our simulated machine
// models *rank* systems against the paper's observed run times.
#pragma once

#include <span>

namespace msim::stats {

/// Pearson product-moment correlation of two equal-length series (n >= 2).
/// Returns 0 when either series is constant.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

/// Spearman rank correlation (Pearson on fractional ranks; ties averaged).
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

/// Kendall's tau-b (handles ties in both series).
[[nodiscard]] double kendall_tau(std::span<const double> x,
                                 std::span<const double> y);

}  // namespace msim::stats
