// Error and summary statistics used throughout the study.
//
// Equation 2 of the paper: %error = (T' - T) / T * 100, where T' is the
// predicted and T the measured wall-clock time. Negative error means the
// prediction was faster (optimistic) than reality. Averages across
// experiments are taken over |error| to prevent cancellation.
#pragma once

#include <span>
#include <vector>

namespace msim::stats {

/// Signed percent error per the paper's Equation 2.
[[nodiscard]] double signed_percent_error(double predicted, double measured);

/// |Equation 2| — the quantity averaged in Tables 4 and 5.
[[nodiscard]] double absolute_percent_error(double predicted, double measured);

/// Arithmetic mean. Empty input is a precondition violation.
[[nodiscard]] double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for a single value.
[[nodiscard]] double sample_stddev(std::span<const double> values);

/// Population standard deviation (n denominator).
[[nodiscard]] double population_stddev(std::span<const double> values);

/// Median (average of middle two for even n).
[[nodiscard]] double median(std::vector<double> values);

/// Minimum / maximum of a non-empty span.
[[nodiscard]] double min(std::span<const double> values);
[[nodiscard]] double max(std::span<const double> values);

/// Geometric mean of strictly positive values.
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Running accumulator (Welford) for mean and standard deviation.
class RunningStats {
 public:
  void add(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sample_stddev() const;
  [[nodiscard]] double population_stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace msim::stats
