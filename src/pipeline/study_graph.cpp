#include "pipeline/study_graph.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/parse.hpp"
#include "machine/config_io.hpp"
#include "machine/registry.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/stage_tasks.hpp"
#include "simulate/observation_io.hpp"
#include "workload/app_io.hpp"

namespace msim::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// MSIM_GRAPH_PREFETCH gates the graph-level artifact prefetch; anything
/// but an explicit off value (including unset) leaves it on.
bool prefetch_default() { return env_bool("MSIM_GRAPH_PREFETCH", true); }

/// MSIM_TEST_STAGE_SLEEP_MS: artificial per-assemble delay for regression
/// tests of the run-record trajectory tooling (an env-injected "slow
/// stage" that msim-report diff must flag). 0 / unset in normal use.
unsigned test_stage_sleep_ms() {
  static const unsigned ms = env_unsigned("MSIM_TEST_STAGE_SLEEP_MS", 0);
  return ms;
}

}  // namespace

StudySpec paper_spec(metrics::StudyOptions options) {
  StudySpec spec;
  spec.targets = machine::targets();
  spec.base = machine::find(machine::base_system_name());
  spec.suite = workload::ti05_suite();
  spec.options = std::move(options);
  return spec;
}

std::string GraphStats::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "graph: %zu studies, %zu probe batches, %zu nodes, "
                "%zu deduped, %zu cache hits (%zu prefetched), %u workers, "
                "busy %.2fs, wall %.2fs",
                studies, probe_batches, nodes, dedup_hits, cache_hits,
                prefetch_hits, workers, busy_seconds, wall_seconds);
  return line;
}

struct StudyGraph::Impl {
  struct Node {
    enum class Kind { GroundTruthItem, GroundTruthCollect, Probe, Trace,
                      Assemble };
    Kind kind;
    const char* span_name = "stage";
    std::function<void()> run;
    std::vector<std::size_t> dependents;
    std::size_t pending = 0;  ///< unmet dependencies (guarded by pool lock)
    bool cache_hit = false;
    double seconds = 0.0;
    std::uint64_t key = 0;  ///< content key (0 for per-study nodes)

    // Outputs (the slot matching `kind` is used).
    std::vector<simulate::Observation> gt_chunk;   ///< GroundTruthItem
    simulate::ObservationSet observations;         ///< GroundTruthCollect
    std::vector<std::size_t> gt_item_nodes;        ///< GroundTruthCollect
    probes::ProbeSet probe;                        ///< Probe
    trace::ApplicationSignature signature;         ///< Trace
  };

  struct StudyRecord {
    StudySpec spec;
    std::vector<machine::MachineConfig> machines;  ///< targets + base, in order
    std::vector<SuiteItem> items;
    std::size_t gt_collect = 0;
    std::vector<std::size_t> probe_nodes;  ///< one per machine, in order
    std::vector<std::size_t> trace_nodes;  ///< one per item, in order
    std::optional<metrics::Study> study;
    bool taken = false;
    BuildStats stats;
  };

  struct ProbeBatch {
    std::vector<machine::MachineConfig> machines;
    std::vector<std::size_t> probe_nodes;
    StageStats stats{.name = "probes"};
  };

  // Configuration.
  unsigned threads = 0;
  bool cache_enabled = false;
  std::string cache_root;
  std::uint64_t cache_max = 0;
  bool prefetch_enabled = prefetch_default();
  std::optional<DistOptions> dist_options;  ///< explicit distribute()

  // Graph state.
  std::vector<std::unique_ptr<StudyRecord>> studies;
  std::vector<std::unique_ptr<ProbeBatch>> batches;
  std::vector<std::unique_ptr<Node>> nodes;
  std::map<std::pair<int, std::uint64_t>, std::size_t> node_by_key;
  ArtifactCache cache;
  GraphStats graph_stats;
  bool built = false;

  // Prefetch candidates, recorded when a node is first created (dedup'd
  // requests reuse the original node, so each artifact appears once).
  // Machine pointers refer to StudyRecord/ProbeBatch members, which are
  // heap-allocated and never mutated after lowering.
  std::vector<std::pair<std::size_t, const machine::MachineConfig*>>
      probe_candidates;
  std::vector<std::pair<std::size_t, std::string>> trace_candidates;

  std::size_t new_node(Node::Kind kind, const char* span_name) {
    auto node = std::make_unique<Node>();
    node->kind = kind;
    node->span_name = span_name;
    nodes.push_back(std::move(node));
    return nodes.size() - 1;
  }

  /// Node for (kind, key), creating it via `make` on first request.
  /// Requests served by an existing node count as dedup hits.
  template <typename Make>
  std::size_t dedup_node(Node::Kind kind, std::uint64_t key, Make make) {
    const auto found = node_by_key.find({static_cast<int>(kind), key});
    if (found != node_by_key.end()) {
      ++graph_stats.dedup_hits;
      return found->second;
    }
    const std::size_t id = make();
    nodes[id]->key = key;
    node_by_key.emplace(std::make_pair(static_cast<int>(kind), key), id);
    return id;
  }

  void depends_on(std::size_t dependent, std::size_t dependency) {
    nodes[dependency]->dependents.push_back(dependent);
    ++nodes[dependent]->pending;
  }

  // Node closures capture pointers to objects with graph lifetime (nodes
  // are heap-allocated and stable; records and their members are never
  // mutated after lowering), never references to lowering-time locals.
  std::size_t probe_node_for(const machine::MachineConfig& machine) {
    return dedup_node(Node::Kind::Probe, probe_key(machine), [&] {
      const std::size_t id = new_node(Node::Kind::Probe, "stage:probes");
      Node* node = nodes[id].get();
      const machine::MachineConfig* config = &machine;
      node->run = [this, node, config] {
        node->probe = probe_task(*config, cache, &node->cache_hit);
      };
      probe_candidates.emplace_back(id, config);
      return id;
    });
  }

  /// Lower one study spec into nodes (ground truth, probes, traces,
  /// assemble), deduplicating against everything lowered before it.
  void lower_study(StudyRecord& record) {
    // Ground truth: item nodes feeding a collect node that orders the
    // observations deterministically and owns the campaign artifact. A
    // cached campaign collapses to a pre-loaded collect node, probed here
    // (at lowering time) because the artifact covers the whole fan-out.
    const std::uint64_t gt_key = ground_truth_key(
        record.machines, record.items, record.spec.options.executor);
    record.gt_collect =
        dedup_node(Node::Kind::GroundTruthCollect, gt_key, [&] {
          const std::string artifact = ground_truth_artifact_name(gt_key);
          const std::size_t collect_id =
              new_node(Node::Kind::GroundTruthCollect, "stage:ground-truth");
          if (auto cached = load_ground_truth(cache, artifact)) {
            Node* collect = nodes[collect_id].get();
            collect->observations = std::move(*cached);
            collect->cache_hit = true;
            collect->run = [] {};
            return collect_id;
          }
          std::vector<std::size_t> item_ids;
          for (std::size_t i = 0; i < record.items.size(); ++i) {
            const std::size_t item_id =
                new_node(Node::Kind::GroundTruthItem, "stage:ground-truth");
            Node* item_node = nodes[item_id].get();
            StudyRecord* rec = &record;
            item_node->run = [this, item_node, rec, i] {
              const SuiteItem& item = rec->items[i];
              item_node->gt_chunk = simulate::run_campaign_item(
                  rec->machines, rec->spec.suite,
                  simulate::CampaignItem{.case_index = item.case_index,
                                         .nprocs = item.nprocs},
                  rec->spec.options.executor);
            };
            item_ids.push_back(item_id);
          }
          Node* collect = nodes[collect_id].get();
          collect->gt_item_nodes = item_ids;
          collect->run = [this, collect, artifact] {
            for (std::size_t item_id : collect->gt_item_nodes) {
              for (auto& observation : nodes[item_id]->gt_chunk) {
                collect->observations.add(std::move(observation));
              }
            }
            cache.store(artifact, simulate::to_text(collect->observations));
          };
          for (std::size_t item_id : item_ids) {
            depends_on(collect_id, item_id);
          }
          return collect_id;
        });

    for (const auto& machine : record.machines) {
      record.probe_nodes.push_back(probe_node_for(machine));
    }

    for (std::size_t i = 0; i < record.items.size(); ++i) {
      const std::uint64_t key = trace_key(
          record.items[i], record.spec.base.name, record.spec.options.tracer);
      record.trace_nodes.push_back(
          dedup_node(Node::Kind::Trace, key, [&] {
            const std::size_t id = new_node(Node::Kind::Trace, "stage:traces");
            Node* node = nodes[id].get();
            StudyRecord* rec = &record;
            node->run = [this, node, rec, i] {
              const SuiteItem& item = rec->items[i];
              node->signature = trace_task(
                  rec->spec.suite[item.case_index], item, rec->spec.base.name,
                  rec->spec.options.tracer, cache, &node->cache_hit);
            };
            trace_candidates.emplace_back(id, trace_artifact_name(key));
            return id;
          }));
    }

    const std::size_t assemble_id =
        new_node(Node::Kind::Assemble, "stage:assemble");
    Node& assemble = *nodes[assemble_id];
    StudyRecord* rec = &record;
    assemble.run = [this, rec] { assemble_study(*rec); };
    depends_on(assemble_id, record.gt_collect);
    for (std::size_t id : record.probe_nodes) depends_on(assemble_id, id);
    for (std::size_t id : record.trace_nodes) depends_on(assemble_id, id);
  }

  /// The Assemble node body: copy stage outputs (they may be shared with
  /// other studies) into StudyParts and record per-study stats.
  void assemble_study(StudyRecord& record) {
    const auto start = Clock::now();
    if (const unsigned ms = test_stage_sleep_ms(); ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
    metrics::StudyParts parts;
    for (const auto& target : record.spec.targets) {
      parts.target_names.push_back(target.name);
    }
    parts.base = record.spec.base.name;
    parts.suite = record.spec.suite;
    parts.options = record.spec.options;
    const Node& collect = *nodes[record.gt_collect];
    parts.observations = collect.observations;
    for (std::size_t i = 0; i < record.machines.size(); ++i) {
      parts.probes.emplace(record.machines[i].name,
                           nodes[record.probe_nodes[i]]->probe);
    }
    for (std::size_t i = 0; i < record.items.size(); ++i) {
      parts.signatures.emplace(
          std::make_pair(
              record.spec.suite[record.items[i].case_index].name,
              record.items[i].nprocs),
          nodes[record.trace_nodes[i]]->signature);
    }
    record.study.emplace(metrics::Study::assemble(std::move(parts)));

    BuildStats& stats = record.stats;
    stats.ground_truth.items = 1;
    stats.ground_truth.cache_hits = collect.cache_hit ? 1 : 0;
    stats.ground_truth.seconds = collect.seconds;
    for (std::size_t id : collect.gt_item_nodes) {
      stats.ground_truth.seconds += nodes[id]->seconds;
    }
    stats.probes.items = record.probe_nodes.size();
    for (std::size_t id : record.probe_nodes) {
      stats.probes.cache_hits += nodes[id]->cache_hit ? 1 : 0;
      stats.probes.seconds += nodes[id]->seconds;
    }
    stats.traces.items = record.trace_nodes.size();
    for (std::size_t id : record.trace_nodes) {
      stats.traces.cache_hits += nodes[id]->cache_hit ? 1 : 0;
      stats.traces.seconds += nodes[id]->seconds;
    }
    stats.assemble_seconds = seconds_since(start);
  }

  void run_node(Node& node, unsigned slot) {
    const auto start = Clock::now();
    if (obs::collecting()) {
      // span_name is one of the literal stage names passed to new_node
      // ("stage:probes", "stage:traces", ...): statically enumerable.
      // The label passed to record_task_seconds strips the "stage:"
      // prefix, giving the run record's stage section the same vocabulary
      // run_indexed uses.
      const char* label = std::strncmp(node.span_name, "stage:", 6) == 0
                              ? node.span_name + 6
                              : node.span_name;
      {
        // msim-lint: allow(obs.name-literal)
        obs::Span span(node.span_name, "pipeline");
        span.arg("kind", label);
        if (node.key != 0) span.arg("key", hex_digest(node.key).substr(0, 8));
        span.arg("worker", static_cast<std::int64_t>(slot));
        node.run();
        // Attached after run(): uncached nodes discover their hit status
        // while executing (prefetched nodes arrive with it set).
        span.arg("cache", node.cache_hit ? "hit" : "miss");
      }
      node.seconds = seconds_since(start);
      record_task_seconds(label, node.seconds);
      return;
    }
    node.run();
    node.seconds = seconds_since(start);
  }

  /// Execute the DAG on `workers` pool threads: per-worker deques (own
  /// work popped LIFO for locality, steals FIFO from siblings), one lock
  /// for the structural state — node tasks run unlocked and dominate, so
  /// the lock is uncontended. Every pool thread registers a WorkerScope,
  /// so fan-outs issued from inside a node run inline.
  void execute(unsigned workers) {
    std::vector<std::deque<std::size_t>> queues(workers);
    std::mutex lock;
    std::condition_variable work_ready;
    std::size_t remaining = nodes.size();
    std::exception_ptr first_error;
    bool abort = false;

    // Steal accounting (count = tasks taken from a sibling's deque, fail =
    // scans that found every deque empty) plus a queue-depth histogram
    // sampled at each dequeue. Counters are unconditional per the obs
    // convention; the depth histogram is gated on collecting() because the
    // sum over deques costs O(workers) inside the pool lock.
    static obs::Counter& steal_count =
        obs::Registry::instance().counter("scheduler.steal.count");
    static obs::Counter& steal_fail =
        obs::Registry::instance().counter("scheduler.steal.fail");
    static obs::Histogram& queue_depth =
        obs::Registry::instance().histogram("scheduler.queue.depth");
    const bool collect = obs::collecting();
    const bool trace = obs::tracing_enabled();
    std::atomic<int> occupancy{0};

    std::size_t seed = 0;
    for (std::size_t id = 0; id < nodes.size(); ++id) {
      if (nodes[id]->pending == 0) {
        queues[seed++ % workers].push_back(id);
      }
    }

    auto worker = [&](unsigned slot) {
      WorkerScope scope;
      std::unique_lock<std::mutex> guard(lock);
      while (!abort && remaining > 0) {
        std::size_t id = 0;
        bool found = false;
        if (!queues[slot].empty()) {
          id = queues[slot].back();
          queues[slot].pop_back();
          found = true;
        } else {
          for (unsigned step = 1; step < workers && !found; ++step) {
            auto& victim = queues[(slot + step) % workers];
            if (!victim.empty()) {
              id = victim.front();
              victim.pop_front();
              found = true;
              steal_count.add();
            }
          }
          if (!found) steal_fail.add();
        }
        if (!found) {
          work_ready.wait(guard);
          continue;
        }
        if (collect) {
          std::size_t queued = 0;
          for (const auto& queue : queues) queued += queue.size();
          queue_depth.record(static_cast<double>(queued));
        }

        guard.unlock();
        std::exception_ptr error;
        try {
          if (trace) {
            obs::counter_track("graph.pool.occupancy",
                               occupancy.fetch_add(1) + 1);
          }
          run_node(*nodes[id], slot);
        } catch (...) {
          error = std::current_exception();
        }
        if (trace) {
          obs::counter_track("graph.pool.occupancy",
                             occupancy.fetch_sub(1) - 1);
        }
        guard.lock();

        if (error) {
          if (!first_error) first_error = error;
          abort = true;
          work_ready.notify_all();
          break;
        }
        --remaining;
        for (std::size_t dependent : nodes[id]->dependents) {
          if (--nodes[dependent]->pending == 0) {
            queues[slot].push_back(dependent);
          }
        }
        // Wake siblings: new work may have appeared, or the graph drained.
        work_ready.notify_all();
      }
      work_ready.notify_all();
    };

    if (workers == 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
      for (auto& thread : pool) thread.join();
    }

    if (first_error) std::rethrow_exception(first_error);
    MSIM_CHECK(remaining == 0, "study graph stalled with nodes pending");
  }

  /// Graph-level cache prefetch: one index snapshot answers "which node
  /// artifacts exist?" for the whole lowered graph, then the hits are
  /// loaded sequentially in artifact-name order before the pool starts —
  /// a warm build streams the store instead of issuing random point
  /// lookups from every worker. A prefetched node's task is replaced by a
  /// no-op with the output already in place; the load path is the same
  /// try_*_cache consultation the task itself would run, so results (and
  /// the cache.hit counter stream) are bitwise-identical either way.
  /// Index-listed entries that fail to load (corrupt, malformed) stay
  /// un-prefetched and recompute under the pool as usual.
  void prefetch_artifacts() {
    if (!prefetch_enabled || !cache.enabled()) return;
    static obs::Counter& probed =
        obs::Registry::instance().counter("cache.prefetch.probed");
    static obs::Counter& hits =
        obs::Registry::instance().counter("cache.prefetch.hits");

    std::vector<std::string> index;
    for (const auto& entry : cache.index_entries()) {
      index.push_back(entry.name);
    }
    const auto indexed = [&index](const std::string& name) {
      return std::binary_search(index.begin(), index.end(), name);
    };

    struct Hit {
      std::string name;  ///< load-order sort key
      std::size_t node;
      const machine::MachineConfig* machine;  ///< null for trace nodes
    };
    std::vector<Hit> worklist;
    for (const auto& [id, machine] : probe_candidates) {
      ++graph_stats.prefetch_probed;
      const std::string name = probe_artifact_name(*machine);
      if (indexed(name)) {
        worklist.push_back(Hit{name, id, machine});
      } else if (indexed(legacy_probe_artifact_name(*machine))) {
        worklist.push_back(
            Hit{legacy_probe_artifact_name(*machine), id, machine});
      }
    }
    for (const auto& [id, name] : trace_candidates) {
      ++graph_stats.prefetch_probed;
      if (indexed(name)) worklist.push_back(Hit{name, id, nullptr});
    }
    probed.add(graph_stats.prefetch_probed);

    std::sort(worklist.begin(), worklist.end(),
              [](const Hit& a, const Hit& b) { return a.name < b.name; });
    for (const Hit& hit : worklist) {
      Node* node = nodes[hit.node].get();
      if (hit.machine != nullptr) {
        if (auto probe = try_probe_cache(*hit.machine, cache)) {
          node->probe = std::move(*probe);
        } else {
          continue;
        }
      } else {
        if (auto signature = try_trace_cache(cache, hit.name)) {
          node->signature = std::move(*signature);
        } else {
          continue;
        }
      }
      node->cache_hit = true;
      node->run = [] {};
      ++graph_stats.prefetch_hits;
    }
    hits.add(graph_stats.prefetch_hits);
  }

  /// Distributed pre-pass: before lowering, compute every stage artifact
  /// the queued specs will need, skip the ones the cache index already
  /// holds, and dispatch the rest to worker processes (run_shard_plan).
  /// By the time lowering runs, ground-truth campaigns collapse to cached
  /// collect nodes and probe/trace nodes prefetch — so the in-process
  /// pool (and stdout) behave exactly as on a warm cache, which is the
  /// byte-identity guarantee. Explicit distribute() beats the env opt-in
  /// (MSIM_DIST_WORKERS + MSIM_WORKER_CMD); the env form is silently
  /// ignored when the cache is off or the build is nested inside a
  /// scheduler worker, since both make process fan-out wrong.
  void run_dist_prepass() {
    std::optional<DistOptions> options = dist_options;
    if (options) {
      if (options->workers == 0) return;
      MSIM_REQUIRE(cache.enabled(),
                   "distribute() needs the artifact cache enabled");
      if (options->worker_cmd.empty()) {
        options->worker_cmd = DistOptions::from_env().worker_cmd;
      }
    } else {
      DistOptions env = DistOptions::from_env();
      if (env.workers == 0) return;
      if (!cache.enabled() || inside_scheduler_worker()) return;
      options = std::move(env);
    }

    std::vector<std::string> index;
    for (const auto& entry : cache.index_entries()) {
      index.push_back(entry.name);
    }
    const auto indexed = [&index](const std::string& name) {
      return std::binary_search(index.begin(), index.end(), name);
    };

    ShardPlan plan;
    std::set<std::string> planned;
    const auto add_unit = [&](WorkUnit unit) {
      // Unit dedup mirrors node dedup: artifact names are the content
      // keys, so identical work across studies plans once.
      if (!planned.insert(unit.artifact).second) return;
      plan.units.push_back(std::move(unit));
    };

    for (const auto& record : studies) {
      std::vector<std::string> machine_texts;
      for (const auto& machine : record->machines) {
        machine_texts.push_back(machine::to_text(machine));
      }

      const std::uint64_t gt_key = ground_truth_key(
          record->machines, record->items, record->spec.options.executor);
      const std::string gt_artifact = ground_truth_artifact_name(gt_key);
      if (!indexed(gt_artifact) && planned.insert(gt_artifact).second) {
        GtAssembly assembly;
        assembly.artifact = gt_artifact;
        for (std::size_t i = 0; i < record->items.size(); ++i) {
          const SuiteItem& item = record->items[i];
          const workload::TestCase& test_case =
              record->spec.suite[item.case_index];
          WorkUnit unit;
          unit.kind = WorkUnit::Kind::GtItem;
          unit.artifact = ground_truth_chunk_name(gt_key, i);
          unit.app_name = test_case.name;
          unit.nprocs = item.nprocs;
          unit.app_text = workload::to_text(test_case.build(item.nprocs));
          unit.machine_texts = machine_texts;
          unit.executor = record->spec.options.executor;
          assembly.chunks.push_back(unit.artifact);
          if (!indexed(unit.artifact)) add_unit(std::move(unit));
        }
        plan.assemblies.push_back(std::move(assembly));
      }

      for (const auto& machine : record->machines) {
        const std::string name = probe_artifact_name(machine);
        if (indexed(name) || indexed(legacy_probe_artifact_name(machine))) {
          continue;
        }
        WorkUnit unit;
        unit.kind = WorkUnit::Kind::Probe;
        unit.artifact = name;
        unit.machine_text = machine::to_text(machine);
        add_unit(std::move(unit));
      }

      for (const SuiteItem& item : record->items) {
        const std::string name = trace_artifact_name(
            trace_key(item, record->spec.base.name,
                      record->spec.options.tracer));
        if (indexed(name)) continue;
        const workload::TestCase& test_case =
            record->spec.suite[item.case_index];
        WorkUnit unit;
        unit.kind = WorkUnit::Kind::Trace;
        unit.artifact = name;
        unit.base = record->spec.base.name;
        unit.app_text = workload::to_text(test_case.build(item.nprocs));
        unit.tracer = record->spec.options.tracer;
        add_unit(std::move(unit));
      }
    }
    for (const auto& batch : batches) {
      for (const auto& machine : batch->machines) {
        const std::string name = probe_artifact_name(machine);
        if (indexed(name) || indexed(legacy_probe_artifact_name(machine))) {
          continue;
        }
        WorkUnit unit;
        unit.kind = WorkUnit::Kind::Probe;
        unit.artifact = name;
        unit.machine_text = machine::to_text(machine);
        add_unit(std::move(unit));
      }
    }

    if (!options->plan_path.empty()) {
      std::ofstream out(options->plan_path, std::ios::trunc);
      if (out) out << plan_to_json(plan);
    }
    graph_stats.dist = run_shard_plan(plan, cache, *options);
  }

  void build_all() {
    MSIM_REQUIRE(!built, "study graph already built");
    MSIM_REQUIRE(!studies.empty() || !batches.empty(),
                 "study graph has nothing to build");
    built = true;
    const auto wall_start = Clock::now();
    obs::Span graph_span("graph:build", "pipeline");

    cache = cache_enabled ? ArtifactCache(cache_root, cache_max)
                          : ArtifactCache();

    // Must precede lowering: a campaign the workers computed collapses to
    // a cached collect node only if its artifact exists by then.
    run_dist_prepass();

    for (auto& record : studies) lower_study(*record);
    for (auto& batch : batches) {
      for (const auto& machine : batch->machines) {
        batch->probe_nodes.push_back(probe_node_for(machine));
      }
    }
    prefetch_artifacts();

    graph_stats.studies = studies.size();
    graph_stats.probe_batches = batches.size();
    graph_stats.nodes = nodes.size();
    obs::Registry& registry = obs::Registry::instance();
    registry.counter("graph.builds").add();
    registry.counter("graph.studies").add(studies.size());
    registry.counter("graph.nodes").add(nodes.size());
    registry.counter("graph.dedup.hits").add(graph_stats.dedup_hits);

    const unsigned workers =
        inside_scheduler_worker()
            ? 1
            : effective_threads(threads, nodes.size());
    graph_stats.workers = workers;
    execute(workers);

    for (const auto& node : nodes) {
      graph_stats.busy_seconds += node->seconds;
      if (node->cache_hit) ++graph_stats.cache_hits;
    }
    graph_stats.wall_seconds = seconds_since(wall_start);
    if (obs::collecting()) {
      publish_fanout_metrics("graph", nodes.size(), workers,
                             graph_stats.busy_seconds,
                             graph_stats.wall_seconds);
    }

    // Per-study cache totals and overall wall clock (one shared build, so
    // every study reports the same bottom line — same as a lone builder).
    ArtifactCache::Stats cache_stats{};
    if (cache.enabled()) cache_stats = cache.stats();
    for (auto& record : studies) {
      BuildStats& stats = record->stats;
      stats.total_seconds = graph_stats.wall_seconds;
      stats.cache_enabled = cache.enabled();
      stats.cache_dir = cache.enabled() ? cache.dir() : std::string{};
      stats.cache_entries = cache_stats.entries;
      stats.cache_bytes = cache_stats.bytes;
      stats.cache_max_bytes = cache_stats.max_bytes;
      stats.cache_evictions = cache_stats.evictions;
    }
    for (auto& batch : batches) {
      batch->stats.items = batch->probe_nodes.size();
      for (std::size_t id : batch->probe_nodes) {
        batch->stats.cache_hits += nodes[id]->cache_hit ? 1 : 0;
        batch->stats.seconds += nodes[id]->seconds;
      }
    }
  }
};

StudyGraph::StudyGraph() : impl_(std::make_unique<Impl>()) {}
StudyGraph::~StudyGraph() = default;

StudyGraph& StudyGraph::threads(unsigned threads) {
  impl_->threads = threads;
  return *this;
}

StudyGraph& StudyGraph::cache(bool enabled) {
  impl_->cache_enabled = enabled;
  return *this;
}

StudyGraph& StudyGraph::cache_dir(std::string dir) {
  impl_->cache_root = std::move(dir);
  return *this;
}

StudyGraph& StudyGraph::cache_max_bytes(std::uint64_t max_bytes) {
  impl_->cache_max = max_bytes;
  return *this;
}

StudyGraph& StudyGraph::prefetch(bool enabled) {
  impl_->prefetch_enabled = enabled;
  return *this;
}

StudyGraph& StudyGraph::distribute(DistOptions options) {
  impl_->dist_options = std::move(options);
  return *this;
}

std::size_t StudyGraph::add_study(StudySpec spec) {
  MSIM_REQUIRE(!impl_->built, "study graph already built");
  MSIM_REQUIRE(!spec.targets.empty(), "study needs target machines");
  MSIM_REQUIRE(!spec.suite.empty(), "study needs test cases");
  auto record = std::make_unique<Impl::StudyRecord>();
  record->spec = std::move(spec);
  record->machines = record->spec.targets;
  record->machines.push_back(record->spec.base);
  record->items = suite_items(record->spec.suite);
  impl_->studies.push_back(std::move(record));
  return impl_->studies.size() - 1;
}

std::size_t StudyGraph::add_probes(
    std::vector<machine::MachineConfig> machines) {
  MSIM_REQUIRE(!impl_->built, "study graph already built");
  MSIM_REQUIRE(!machines.empty(), "probe batch needs machines");
  auto batch = std::make_unique<Impl::ProbeBatch>();
  batch->machines = std::move(machines);
  impl_->batches.push_back(std::move(batch));
  return impl_->batches.size() - 1;
}

void StudyGraph::build_all() { impl_->build_all(); }

metrics::Study StudyGraph::take_study(std::size_t study) {
  MSIM_REQUIRE(impl_->built, "build_all() must run before take_study");
  MSIM_REQUIRE(study < impl_->studies.size(), "unknown study handle");
  Impl::StudyRecord& record = *impl_->studies[study];
  MSIM_REQUIRE(!record.taken, "study already taken from the graph");
  record.taken = true;
  metrics::Study taken = std::move(*record.study);
  record.study.reset();
  return taken;
}

const BuildStats& StudyGraph::study_stats(std::size_t study) const {
  MSIM_REQUIRE(impl_->built, "build_all() must run before study_stats");
  MSIM_REQUIRE(study < impl_->studies.size(), "unknown study handle");
  return impl_->studies[study]->stats;
}

std::map<std::string, probes::ProbeSet> StudyGraph::probe_sets(
    std::size_t batch) const {
  MSIM_REQUIRE(impl_->built, "build_all() must run before probe_sets");
  MSIM_REQUIRE(batch < impl_->batches.size(), "unknown probe batch handle");
  const Impl::ProbeBatch& record = *impl_->batches[batch];
  std::map<std::string, probes::ProbeSet> sets;
  for (std::size_t i = 0; i < record.machines.size(); ++i) {
    sets.emplace(record.machines[i].name,
                 impl_->nodes[record.probe_nodes[i]]->probe);
  }
  return sets;
}

const StageStats& StudyGraph::probe_stats(std::size_t batch) const {
  MSIM_REQUIRE(impl_->built, "build_all() must run before probe_stats");
  MSIM_REQUIRE(batch < impl_->batches.size(), "unknown probe batch handle");
  return impl_->batches[batch]->stats;
}

const GraphStats& StudyGraph::stats() const { return impl_->graph_stats; }

}  // namespace msim::pipeline
