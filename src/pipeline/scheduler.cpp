#include "pipeline/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace msim::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

// Worker accounting: a per-thread depth (nested scopes on one thread
// count once) plus process-wide current/peak counts.
thread_local unsigned tl_worker_depth = 0;
std::atomic<unsigned> g_active_workers{0};
std::atomic<unsigned> g_peak_workers{0};

}  // namespace

bool inside_scheduler_worker() noexcept { return tl_worker_depth > 0; }

unsigned peak_workers() noexcept {
  return g_peak_workers.load(std::memory_order_relaxed);
}

void reset_peak_workers() noexcept {
  g_peak_workers.store(g_active_workers.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

WorkerScope::WorkerScope() noexcept : counted_(tl_worker_depth == 0) {
  ++tl_worker_depth;
  if (!counted_) return;
  const unsigned active =
      g_active_workers.fetch_add(1, std::memory_order_relaxed) + 1;
  unsigned peak = g_peak_workers.load(std::memory_order_relaxed);
  while (active > peak &&
         !g_peak_workers.compare_exchange_weak(peak, active,
                                               std::memory_order_relaxed)) {
  }
}

WorkerScope::~WorkerScope() {
  --tl_worker_depth;
  if (counted_) g_active_workers.fetch_sub(1, std::memory_order_relaxed);
}

void publish_fanout_metrics(const char* label, std::size_t items,
                            unsigned workers, double busy_seconds,
                            double wall_seconds) {
  // The label is a compile-time stage name (every call site passes a
  // string literal: "ground-truth", "probes", "traces", ...), so the name
  // set stays statically enumerable even though the tokens are joined at
  // runtime.
  const std::string prefix = std::string("scheduler.") + label;
  obs::Registry& registry = obs::Registry::instance();
  registry.counter(prefix + ".tasks").add(items);  // msim-lint: allow(obs.name-literal)
  // A histogram, not a gauge: concurrent fan-outs of the same stage (two
  // studies on one graph) would clobber a last-write-wins gauge.
  const double capacity = wall_seconds * static_cast<double>(workers);
  // msim-lint: allow(obs.name-literal)
  registry.histogram(prefix + ".utilization")
      .record(capacity > 0.0 ? busy_seconds / capacity : 0.0);
  // The process-wide concurrency high-water mark (all pools share the
  // WorkerScope accounting), refreshed as each fan-out retires.
  registry.gauge("scheduler.workers.peak")
      .set(static_cast<double>(peak_workers()));
}

void record_task_seconds(const char* label, double seconds) {
  // `label` is a compile-time stage name (see publish_fanout_metrics), so
  // scheduler.<label>.task.seconds stays statically enumerable. Run
  // records derive their per-stage wall-time section from exactly this
  // name pattern.
  obs::Registry::instance()
      // msim-lint: allow(obs.name-literal)
      .histogram(std::string("scheduler.") + label + ".task.seconds")
      .record(seconds);
}

unsigned env_threads() {
  // Strict parse with fallback 0 ("derive from hardware"); the cap keeps
  // an operator typo from spawning an absurd pool.
  return std::min(env_unsigned("MSIM_THREADS", 0), 1024u);
}

unsigned effective_threads(unsigned threads, std::size_t items) {
  if (threads == 0) threads = env_threads();
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return std::max<unsigned>(
      1, static_cast<unsigned>(
             std::min<std::size_t>(threads, std::max<std::size_t>(items, 1))));
}

void run_indexed(std::size_t items, unsigned threads,
                 const std::function<void(std::size_t)>& task,
                 const char* label) {
  if (items == 0) return;
  const char* stage = label != nullptr ? label : "tasks";
  // A fan-out issued from inside a worker runs inline: the pool is
  // already sized to effective_threads, so spawning another would
  // oversubscribe N x N threads.
  const unsigned workers =
      inside_scheduler_worker() ? 1 : effective_threads(threads, items);
  const bool collect = obs::collecting();
  const auto wall_start = Clock::now();

  // Per-worker busy time; slot 0 doubles as the serial path's slot.
  std::vector<double> busy(workers, 0.0);

  auto run_one = [&](std::size_t index, double& busy_seconds) {
    if (!collect) {
      task(index);
      return;
    }
    // `stage` is the fan-out's compile-time label (see publish_fanout_
    // metrics above); the span name set stays statically enumerable.
    obs::Span span(stage, "scheduler");  // msim-lint: allow(obs.name-literal)
    span.arg("index", static_cast<std::int64_t>(index));
    const auto start = Clock::now();
    task(index);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    busy_seconds += seconds;
    record_task_seconds(stage, seconds);
  };

  if (workers == 1) {
    WorkerScope scope;
    for (std::size_t index = 0; index < items; ++index) {
      run_one(index, busy[0]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&](unsigned slot) {
      WorkerScope scope;
      for (std::size_t index = next.fetch_add(1); index < items;
           index = next.fetch_add(1)) {
        try {
          run_one(index, busy[slot]);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          // Drain the remaining work so siblings stop picking up tasks.
          next.store(items);
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
    for (auto& thread : pool) thread.join();

    if (first_error) std::rethrow_exception(first_error);
  }

  if (collect) {
    double busy_seconds = 0.0;
    for (double b : busy) busy_seconds += b;
    publish_fanout_metrics(
        stage, items, workers,
        busy_seconds,
        std::chrono::duration<double>(Clock::now() - wall_start).count());
  }
}

}  // namespace msim::pipeline
