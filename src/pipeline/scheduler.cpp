#include "pipeline/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace msim::pipeline {

unsigned effective_threads(unsigned threads, std::size_t items) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return std::max<unsigned>(
      1, static_cast<unsigned>(
             std::min<std::size_t>(threads, std::max<std::size_t>(items, 1))));
}

void run_indexed(std::size_t items, unsigned threads,
                 const std::function<void(std::size_t)>& task) {
  if (items == 0) return;
  const unsigned workers = effective_threads(threads, items);

  if (workers == 1) {
    for (std::size_t index = 0; index < items; ++index) task(index);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (std::size_t index = next.fetch_add(1); index < items;
         index = next.fetch_add(1)) {
      try {
        task(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining work so siblings stop picking up tasks.
        next.store(items);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace msim::pipeline
