#include "pipeline/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace msim::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

/// Publish per-stage task count and worker utilization after a fan-out.
/// Cold path (once per stage), so the by-name registry lookups are fine.
void publish_stage_metrics(const char* label, std::size_t items,
                           unsigned workers, double busy_seconds,
                           double wall_seconds) {
  const std::string prefix = std::string("scheduler.") + label;
  obs::Registry& registry = obs::Registry::instance();
  registry.counter(prefix + ".tasks").add(items);
  const double capacity = wall_seconds * static_cast<double>(workers);
  registry.gauge(prefix + ".utilization")
      .set(capacity > 0.0 ? busy_seconds / capacity : 0.0);
}

}  // namespace

unsigned env_threads() {
  const char* env = std::getenv("MSIM_THREADS");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<unsigned>(std::min<unsigned long>(value, 1024));
}

unsigned effective_threads(unsigned threads, std::size_t items) {
  if (threads == 0) threads = env_threads();
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return std::max<unsigned>(
      1, static_cast<unsigned>(
             std::min<std::size_t>(threads, std::max<std::size_t>(items, 1))));
}

void run_indexed(std::size_t items, unsigned threads,
                 const std::function<void(std::size_t)>& task,
                 const char* label) {
  if (items == 0) return;
  const char* stage = label != nullptr ? label : "tasks";
  const unsigned workers = effective_threads(threads, items);
  const bool collect = obs::collecting();
  const auto wall_start = Clock::now();

  // Per-worker busy time; slot 0 doubles as the serial path's slot.
  std::vector<double> busy(workers, 0.0);

  auto run_one = [&](std::size_t index, double& busy_seconds) {
    if (!collect) {
      task(index);
      return;
    }
    obs::Span span(stage, "scheduler");
    span.arg("index", static_cast<std::int64_t>(index));
    const auto start = Clock::now();
    task(index);
    busy_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
  };

  if (workers == 1) {
    for (std::size_t index = 0; index < items; ++index) {
      run_one(index, busy[0]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&](unsigned slot) {
      for (std::size_t index = next.fetch_add(1); index < items;
           index = next.fetch_add(1)) {
        try {
          run_one(index, busy[slot]);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          // Drain the remaining work so siblings stop picking up tasks.
          next.store(items);
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
    for (auto& thread : pool) thread.join();

    if (first_error) std::rethrow_exception(first_error);
  }

  if (collect) {
    double busy_seconds = 0.0;
    for (double b : busy) busy_seconds += b;
    publish_stage_metrics(
        stage, items, workers,
        busy_seconds,
        std::chrono::duration<double>(Clock::now() - wall_start).count());
  }
}

}  // namespace msim::pipeline
