#include "pipeline/artifact_cache.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

namespace msim::pipeline {

namespace fs = std::filesystem;

ArtifactCache::ArtifactCache(std::string dir)
    : enabled_(true), dir_(dir.empty() ? default_dir() : std::move(dir)) {}

std::string ArtifactCache::default_dir() {
  if (const char* env = std::getenv("MSIM_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".msim-cache";
}

std::optional<std::string> ArtifactCache::load(
    const std::string& name) const {
  if (!enabled_) return std::nullopt;
  std::ifstream in(fs::path(dir_) / name, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buffer.str();
}

void ArtifactCache::store(const std::string& name,
                          const std::string& content) const {
  if (!enabled_) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;

  // Unique temp name per process/thread so concurrent stores never share a
  // staging file; rename() then publishes atomically.
  static std::atomic<unsigned> counter{0};
  const fs::path target = fs::path(dir_) / name;
  const fs::path temp =
      fs::path(dir_) / (name + ".tmp." +
                        std::to_string(static_cast<unsigned long>(
                            counter.fetch_add(1))) +
                        "." + std::to_string(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << content;
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, target, ec);
  if (ec) fs::remove(temp, ec);
}

}  // namespace msim::pipeline
