#include "pipeline/artifact_cache.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace msim::pipeline {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

/// Handles resolved once; updates are relaxed atomic adds after that.
struct CacheMetrics {
  obs::Counter& miss_absent =
      obs::Registry::instance().counter("cache.miss.absent");
  obs::Counter& miss_unreadable =
      obs::Registry::instance().counter("cache.miss.unreadable");
  obs::Counter& loads = obs::Registry::instance().counter("cache.load.count");
  obs::Counter& load_bytes =
      obs::Registry::instance().counter("cache.load.bytes");
  obs::Counter& stores =
      obs::Registry::instance().counter("cache.store.count");
  obs::Counter& store_bytes =
      obs::Registry::instance().counter("cache.store.bytes");
  obs::Histogram& load_seconds =
      obs::Registry::instance().histogram("cache.load.seconds");
  obs::Histogram& store_seconds =
      obs::Registry::instance().histogram("cache.store.seconds");
};

CacheMetrics& metrics() {
  static CacheMetrics* const handles = new CacheMetrics();
  return *handles;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

ArtifactCache::ArtifactCache(std::string dir)
    : enabled_(true), dir_(dir.empty() ? default_dir() : std::move(dir)) {}

std::string ArtifactCache::default_dir() {
  if (const char* env = std::getenv("MSIM_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".msim-cache";
}

std::optional<std::string> ArtifactCache::load(
    const std::string& name) const {
  if (!enabled_) return std::nullopt;
  // Latency is only measured while telemetry output is active; the
  // counters below are always-on relaxed atomics.
  const bool timed = obs::collecting();
  const auto start = timed ? Clock::now() : Clock::time_point{};

  std::ifstream in(fs::path(dir_) / name, std::ios::binary);
  if (!in) {
    metrics().miss_absent.add();
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    metrics().miss_unreadable.add();
    return std::nullopt;
  }
  std::string content = buffer.str();
  metrics().loads.add();
  metrics().load_bytes.add(content.size());
  if (timed) metrics().load_seconds.record(seconds_since(start));
  return content;
}

void ArtifactCache::store(const std::string& name,
                          const std::string& content) const {
  if (!enabled_) return;
  const bool timed = obs::collecting();
  const auto start = timed ? Clock::now() : Clock::time_point{};

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;

  // Unique temp name per process/thread so concurrent stores never share a
  // staging file; rename() then publishes atomically.
  static std::atomic<unsigned> counter{0};
  const fs::path target = fs::path(dir_) / name;
  const fs::path temp =
      fs::path(dir_) / (name + ".tmp." +
                        std::to_string(static_cast<unsigned long>(
                            counter.fetch_add(1))) +
                        "." + std::to_string(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << content;
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    return;
  }
  metrics().stores.add();
  metrics().store_bytes.add(content.size());
  if (timed) metrics().store_seconds.record(seconds_since(start));
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats totals;
  if (!enabled_) return totals;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return totals;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    // Skip in-flight staging files (`<name>.tmp.<n>.<pid>`).
    if (entry.path().filename().string().find(".tmp.") !=
        std::string::npos) {
      continue;
    }
    ++totals.entries;
    const auto size = entry.file_size(ec);
    if (!ec) totals.bytes += size;
  }
  return totals;
}

}  // namespace msim::pipeline
