#include "pipeline/artifact_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <system_error>
#include <vector>

#include "common/hash.hpp"
#include "common/parse.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace msim::pipeline {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kIndexName = "index.msim";
constexpr const char* kLockName = "index.lock";

/// Handles resolved once; updates are relaxed atomic adds after that.
struct CacheMetrics {
  obs::Counter& miss_absent =
      obs::Registry::instance().counter("cache.miss.absent");
  obs::Counter& miss_unreadable =
      obs::Registry::instance().counter("cache.miss.unreadable");
  obs::Counter& miss_corrupt =
      obs::Registry::instance().counter("cache.miss.corrupt");
  obs::Counter& loads = obs::Registry::instance().counter("cache.load.count");
  obs::Counter& load_bytes =
      obs::Registry::instance().counter("cache.load.bytes");
  obs::Counter& stores =
      obs::Registry::instance().counter("cache.store.count");
  obs::Counter& store_bytes =
      obs::Registry::instance().counter("cache.store.bytes");
  obs::Counter& evict_count =
      obs::Registry::instance().counter("cache.evict.count");
  obs::Counter& evict_bytes =
      obs::Registry::instance().counter("cache.evict.bytes");
  obs::Counter& index_rebuilds =
      obs::Registry::instance().counter("cache.index.rebuild");
  obs::Counter& index_lock_fails =
      obs::Registry::instance().counter("cache.index.lock_fail");
  obs::Counter& maps = obs::Registry::instance().counter("cache.map.count");
  obs::Counter& map_bytes =
      obs::Registry::instance().counter("cache.map.bytes");
  obs::Histogram& load_seconds =
      obs::Registry::instance().histogram("cache.load.seconds");
  obs::Histogram& store_seconds =
      obs::Registry::instance().histogram("cache.store.seconds");
};

CacheMetrics& metrics() {
  static CacheMetrics* const handles = new CacheMetrics();
  return *handles;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Payload files are everything except the index, its lock, and in-flight
/// staging files (`<name>.tmp.<n>.<pid>`).
bool is_payload_name(const std::string& name) {
  return name != kIndexName && name != kLockName &&
         name.find(".tmp.") == std::string::npos;
}

std::int64_t file_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             fs::file_time_type::clock::now().time_since_epoch())
      .count();
}

std::int64_t mtime_ns(const fs::path& path) {
  std::error_code ec;
  const fs::file_time_type stamp = fs::last_write_time(path, ec);
  if (ec) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             stamp.time_since_epoch())
      .count();
}

/// Best-effort mtime refresh: loads "touch" their entry so file mtimes
/// stay a cross-process LRU ordering that index rebuilds recover for free.
void touch_now(const fs::path& path) {
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

/// Advisory exclusive lock on `<dir>/index.lock`, held for the duration of
/// an index read-merge-write. flock() locks the open file description, so
/// it excludes other threads' FileLocks in this process *and* other
/// processes sharing the directory. If the lock file cannot be opened the
/// open is retried once (a transient EMFILE/ENOENT race heals); a second
/// failure leaves the lock unacquired and counted
/// (`cache.index.lock_fail`) — callers must then *skip* publishing the
/// on-disk index rather than write it unlocked, which in a long-lived
/// process sharing the directory would silently race other writers.
class FileLock {
 public:
  explicit FileLock(const fs::path& dir) {
    const fs::path path = dir / kLockName;
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    }
    if (fd_ >= 0) {
      // The paired LOCK_UN lives in ~FileLock — this class IS the RAII
      // holder the pairing rule points callers at.
      // msim-lint: allow(conc.flock-unpaired)
      while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
      }
    } else {
      metrics().index_lock_fails.add();
    }
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  /// False when the lock file could not be opened even after the retry;
  /// on-disk index updates must not proceed.
  [[nodiscard]] bool acquired() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

using IndexMap = std::map<std::string, ArtifactCache::IndexEntry>;

std::string index_to_text(const IndexMap& index) {
  std::ostringstream os;
  os << "# msim cache index v2\n";
  os << "entries = " << index.size() << '\n';
  std::size_t i = 0;
  for (const auto& [name, entry] : index) {
    const std::string prefix = "entry." + std::to_string(i++);
    os << prefix << ".name = " << name << '\n';
    os << prefix << ".bytes = " << entry.bytes << '\n';
    os << prefix << ".checksum = " << hex_digest(entry.checksum) << '\n';
    os << prefix << ".access_ns = " << entry.access_ns << '\n';
  }
  return os.str();
}

enum class IndexRead { Ok, Missing, Garbled };

std::optional<std::string> take_pair(
    std::map<std::string, std::string>& pairs, const std::string& key) {
  const auto it = pairs.find(key);
  if (it == pairs.end()) return std::nullopt;
  std::string value = it->second;
  pairs.erase(it);
  return value;
}

/// Strict parse; any anomaly (bad count, missing key, malformed number,
/// leftovers) reports Garbled so the caller rebuilds from the directory.
IndexRead read_index_file(const fs::path& dir, IndexMap& out) {
  out.clear();
  std::ifstream in(dir / kIndexName, std::ios::binary);
  if (!in) return IndexRead::Missing;
  std::map<std::string, std::string> pairs;
  std::string line;
  while (std::getline(in, line)) {
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return IndexRead::Garbled;
    auto trim = [](std::string text) {
      const auto first = text.find_first_not_of(" \t\r");
      if (first == std::string::npos) return std::string{};
      const auto last = text.find_last_not_of(" \t\r");
      return text.substr(first, last - first + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    if (!pairs.emplace(key, trim(line.substr(eq + 1))).second) {
      return IndexRead::Garbled;
    }
  }
  if (!in.eof()) return IndexRead::Garbled;

  auto parse_u64 = [](const std::string& value, int base,
                      std::uint64_t& parsed) {
    try {
      std::size_t used = 0;
      parsed = std::stoull(value, &used, base);
      return used == value.size() && !value.empty() && value[0] != '-';
    } catch (const std::exception&) {
      return false;
    }
  };
  auto parse_i64 = [](const std::string& value, std::int64_t& parsed) {
    try {
      std::size_t used = 0;
      parsed = std::stoll(value, &used);
      return used == value.size() && !value.empty();
    } catch (const std::exception&) {
      return false;
    }
  };

  const auto count_text = take_pair(pairs, "entries");
  std::uint64_t count = 0;
  if (!count_text || !parse_u64(*count_text, 10, count)) {
    return IndexRead::Garbled;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string prefix = "entry." + std::to_string(i);
    const auto name = take_pair(pairs, prefix + ".name");
    const auto bytes = take_pair(pairs, prefix + ".bytes");
    const auto checksum = take_pair(pairs, prefix + ".checksum");
    const auto access = take_pair(pairs, prefix + ".access_ns");
    if (!name || !bytes || !checksum || !access ||
        !is_payload_name(*name)) {
      return IndexRead::Garbled;
    }
    ArtifactCache::IndexEntry entry;
    entry.name = *name;
    if (!parse_u64(*bytes, 10, entry.bytes) ||
        !parse_u64(*checksum, 16, entry.checksum) ||
        !parse_i64(*access, entry.access_ns)) {
      return IndexRead::Garbled;
    }
    if (!out.emplace(entry.name, entry).second) return IndexRead::Garbled;
  }
  if (!pairs.empty()) return IndexRead::Garbled;
  return IndexRead::Ok;
}

/// The directory is the source of truth: index every payload file with
/// its size, content checksum and mtime stamp.
IndexMap scan_directory(const fs::path& dir) {
  IndexMap scanned;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return scanned;
  for (const auto& file : it) {
    if (!file.is_regular_file(ec) || ec) continue;
    const std::string name = file.path().filename().string();
    if (!is_payload_name(name)) continue;
    std::ifstream in(file.path(), std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) continue;
    const std::string content = buffer.str();
    ArtifactCache::IndexEntry entry;
    entry.name = name;
    entry.bytes = content.size();
    entry.checksum = Fnv1a{}.update(content).digest();
    entry.access_ns = mtime_ns(file.path());
    scanned.emplace(name, entry);
  }
  return scanned;
}

/// Crash-safe index publish: stage to a unique temp file, rename over.
void write_index_file(const fs::path& dir, const IndexMap& index) {
  static std::atomic<unsigned> counter{0};
  std::error_code ec;
  const fs::path temp =
      dir / (std::string(kIndexName) + ".tmp." +
             std::to_string(
                 static_cast<unsigned long>(counter.fetch_add(1))) +
             "." + std::to_string(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << index_to_text(index);
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, dir / kIndexName, ec);
  if (ec) fs::remove(temp, ec);
}

}  // namespace

/// The mmap region behind a MappedArtifact: unmapped when the last
/// handle releases it. A zero-length payload keeps addr null (mmap
/// rejects empty mappings); bytes() then views the empty string.
struct MappedArtifact::Region {
  void* addr = nullptr;
  std::size_t size = 0;
  ~Region() {
    if (addr != nullptr) ::munmap(addr, size);
  }
  Region() = default;
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
};

std::string_view MappedArtifact::bytes() const {
  if (!region_ || region_->addr == nullptr) return {};
  return std::string_view(static_cast<const char*>(region_->addr),
                          region_->size);
}

struct ArtifactCache::State {
  std::string dir;
  std::uint64_t max_bytes = 0;

  // In-memory view of the index. `loaded` flips once the on-disk index
  // has been read (or rebuilt); until then the map is empty.
  mutable std::mutex mutex;
  mutable IndexMap index;
  mutable bool loaded = false;
  mutable std::atomic<std::uint64_t> evictions{0};

  /// Read-or-heal the on-disk index (caller holds `mutex`). A missing
  /// index over a non-empty directory, or a garbled one, is rebuilt from
  /// a directory scan and republished — self-healing, never fatal.
  void ensure_loaded() const {
    if (loaded) return;
    const fs::path root(dir);
    FileLock lock(root);
    IndexMap disk;
    const IndexRead result = read_index_file(root, disk);
    if (result == IndexRead::Ok) {
      index = std::move(disk);
    } else {
      IndexMap scanned = scan_directory(root);
      // A fresh (or still absent) cache directory with no index is the
      // normal cold start, not a fault: nothing to rebuild. Without the
      // lock the rebuilt index stays in memory only — publishing it
      // unlocked could tear another writer's read-merge-write.
      if ((result == IndexRead::Garbled || !scanned.empty()) &&
          lock.acquired()) {
        write_index_file(root, scanned);
        metrics().index_rebuilds.add();
      }
      index = std::move(scanned);
    }
    loaded = true;
  }

  /// Evict least-recently-used rows until `merged` fits the cap. `keep`
  /// (the entry just stored) is never evicted by its own store. Caller
  /// holds `mutex` and the FileLock.
  void evict_over_cap(IndexMap& merged, const std::string& keep) const {
    std::uint64_t total = 0;
    for (const auto& [name, entry] : merged) total += entry.bytes;
    if (total <= max_bytes) return;

    std::vector<const IndexEntry*> order;
    order.reserve(merged.size());
    for (const auto& [name, entry] : merged) order.push_back(&entry);
    std::sort(order.begin(), order.end(),
              [](const IndexEntry* a, const IndexEntry* b) {
                return a->access_ns != b->access_ns
                           ? a->access_ns < b->access_ns
                           : a->name < b->name;
              });

    std::vector<std::string> dropped;
    for (const IndexEntry* victim : order) {
      if (total <= max_bytes) break;
      if (victim->name == keep) continue;
      std::error_code ec;
      const bool removed =
          fs::remove(fs::path(dir) / victim->name, ec) && !ec;
      if (removed) {
        metrics().evict_count.add();
        metrics().evict_bytes.add(victim->bytes);
        evictions.fetch_add(1, std::memory_order_relaxed);
      }
      // Even when the file was already gone the stale row leaves the
      // index.
      total -= victim->bytes;
      dropped.push_back(victim->name);
    }
    for (const auto& name : dropped) merged.erase(name);
  }
};

ArtifactCache::ArtifactCache(std::string dir, std::uint64_t max_bytes)
    : state_(std::make_shared<State>()) {
  state_->dir = dir.empty() ? default_dir() : std::move(dir);
  state_->max_bytes = max_bytes > 0 ? max_bytes : default_max_bytes();
}

std::string ArtifactCache::default_dir() {
  const std::string dir = env_string("MSIM_CACHE_DIR");
  return dir.empty() ? std::string(".msim-cache") : dir;
}

std::uint64_t ArtifactCache::default_max_bytes() {
  // parse_byte_size keeps the historical contract: k/m/g binary suffixes,
  // malformed or negative values fall back to 0 (uncapped), and a value
  // too large for 64 bits saturates instead of wrapping — "99999999999g"
  // must not silently become a tiny cap that evicts the whole cache.
  return env_byte_size("MSIM_CACHE_MAX_BYTES", 0);
}

const std::string& ArtifactCache::dir() const {
  static const std::string empty;
  return state_ ? state_->dir : empty;
}

std::uint64_t ArtifactCache::max_bytes() const {
  return state_ ? state_->max_bytes : 0;
}

std::optional<std::string> ArtifactCache::load(
    const std::string& name) const {
  if (!state_) return std::nullopt;
  const State& state = *state_;
  // Latency is only measured while telemetry output is active; the
  // counters below are always-on relaxed atomics.
  const bool timed = obs::collecting();
  const auto start = timed ? Clock::now() : Clock::time_point{};

  const fs::path path = fs::path(state.dir) / name;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    metrics().miss_absent.add();
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    metrics().miss_unreadable.add();
    return std::nullopt;
  }
  std::string content = buffer.str();
  const std::uint64_t checksum = Fnv1a{}.update(content).digest();

  bool corrupt = false;
  {
    std::lock_guard<std::mutex> guard(state.mutex);
    state.ensure_loaded();
    const auto it = state.index.find(name);
    if (it != state.index.end()) {
      if (it->second.bytes != content.size() ||
          it->second.checksum != checksum) {
        // The payload no longer matches what was stored: a truncated or
        // bit-flipped entry. Drop it — a miss recomputes; wrong data is
        // never returned.
        state.index.erase(it);
        corrupt = true;
      } else {
        it->second.access_ns = file_now_ns();
      }
    } else {
      // Stored by another process since the index was read: adopt it.
      IndexEntry entry;
      entry.name = name;
      entry.bytes = content.size();
      entry.checksum = checksum;
      entry.access_ns = file_now_ns();
      state.index.emplace(name, entry);
    }
  }
  if (corrupt) {
    metrics().miss_corrupt.add();
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  }
  touch_now(path);
  metrics().loads.add();
  metrics().load_bytes.add(content.size());
  if (timed) metrics().load_seconds.record(seconds_since(start));
  return content;
}

std::optional<MappedArtifact> ArtifactCache::map(
    const std::string& name) const {
  if (!state_) return std::nullopt;
  const State& state = *state_;

  const fs::path path = fs::path(state.dir) / name;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    metrics().miss_absent.add();
    return std::nullopt;
  }
  struct stat info {};
  if (::fstat(fd, &info) != 0 || !S_ISREG(info.st_mode)) {
    ::close(fd);
    metrics().miss_unreadable.add();
    return std::nullopt;
  }
  auto region = std::make_shared<MappedArtifact::Region>();
  region->size = static_cast<std::size_t>(info.st_size);
  if (region->size > 0) {
    void* addr =
        ::mmap(nullptr, region->size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      metrics().miss_unreadable.add();
      return std::nullopt;
    }
    region->addr = addr;
  }
  ::close(fd);  // the mapping outlives the descriptor

  MappedArtifact mapped;
  mapped.region_ = std::move(region);
  const std::string_view content = mapped.bytes();
  // One pass over the mapped bytes verifies the index checksum — the
  // same integrity bar as load(), with no intermediate copy. The index
  // stores string-overload digests (length-prefixed), so replicate that
  // framing over the view.
  const std::uint64_t checksum = Fnv1a{}
                                     .update_u64(content.size())
                                     .update(content.data(), content.size())
                                     .digest();

  bool corrupt = false;
  {
    std::lock_guard<std::mutex> guard(state.mutex);
    state.ensure_loaded();
    const auto it = state.index.find(name);
    if (it != state.index.end()) {
      if (it->second.bytes != content.size() ||
          it->second.checksum != checksum) {
        state.index.erase(it);
        corrupt = true;
      } else {
        it->second.access_ns = file_now_ns();
      }
    } else {
      // Stored by another process since the index was read: adopt it.
      IndexEntry entry;
      entry.name = name;
      entry.bytes = content.size();
      entry.checksum = checksum;
      entry.access_ns = file_now_ns();
      state.index.emplace(name, entry);
    }
  }
  if (corrupt) {
    metrics().miss_corrupt.add();
    std::error_code ec;
    fs::remove(path, ec);
    return std::nullopt;
  }
  touch_now(path);
  metrics().maps.add();
  metrics().map_bytes.add(content.size());
  return mapped;
}

void ArtifactCache::store(const std::string& name,
                          const std::string& content) const {
  if (!state_) return;
  const State& state = *state_;
  const bool timed = obs::collecting();
  const auto start = timed ? Clock::now() : Clock::time_point{};

  std::error_code ec;
  fs::create_directories(state.dir, ec);
  if (ec) return;

  // Unique temp name per process/thread so concurrent stores never share a
  // staging file; rename() then publishes atomically.
  static std::atomic<unsigned> counter{0};
  const fs::path target = fs::path(state.dir) / name;
  const fs::path temp =
      fs::path(state.dir) / (name + ".tmp." +
                             std::to_string(static_cast<unsigned long>(
                                 counter.fetch_add(1))) +
                             "." + std::to_string(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << content;
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    return;
  }

  // Index bookkeeping: read-merge-write under the cross-process lock so
  // concurrent writers never erase each other's rows, then enforce the
  // size cap by LRU eviction. When the lock could not be acquired (open
  // failed twice, counted cache.index.lock_fail) the on-disk update is
  // failed outright instead of racing: the payload rename above already
  // published the artifact, the in-memory row below keeps this process
  // coherent, and the next locked update or rebuild heals the index.
  {
    std::lock_guard<std::mutex> guard(state.mutex);
    FileLock lock(fs::path(state.dir));
    IndexEntry entry;
    entry.name = name;
    entry.bytes = content.size();
    entry.checksum = Fnv1a{}.update(content).digest();
    entry.access_ns = mtime_ns(target);
    if (lock.acquired()) {
      IndexMap merged;
      if (read_index_file(fs::path(state.dir), merged) != IndexRead::Ok) {
        merged = scan_directory(fs::path(state.dir));
        metrics().index_rebuilds.add();
      }
      for (const auto& [known_name, known] : state.index) {
        const auto it = merged.find(known_name);
        if (it == merged.end()) {
          // Known to us but not on disk's index: keep the row only if the
          // payload still exists (it may have been evicted elsewhere).
          if (fs::exists(fs::path(state.dir) / known_name, ec) && !ec) {
            merged.emplace(known_name, known);
          }
        } else if (known.access_ns > it->second.access_ns) {
          it->second.access_ns = known.access_ns;
        }
      }
      merged[name] = entry;
      if (state.max_bytes > 0) state.evict_over_cap(merged, name);
      write_index_file(fs::path(state.dir), merged);
      state.index = std::move(merged);
      state.loaded = true;
    } else {
      // Lock unavailable: the on-disk index update fails (counted by the
      // FileLock), but the in-memory row advances so this process keeps
      // verifying its own artifact.
      state.index[name] = entry;
    }
  }

  metrics().stores.add();
  metrics().store_bytes.add(content.size());
  if (timed) metrics().store_seconds.record(seconds_since(start));
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats totals;
  if (!state_) return totals;
  const State& state = *state_;
  totals.max_bytes = state.max_bytes;
  totals.evictions = state.evictions.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> guard(state.mutex);
  state.ensure_loaded();
  std::error_code ec;
  for (const auto& [name, entry] : state.index) {
    if (!fs::exists(fs::path(state.dir) / name, ec) || ec) continue;
    ++totals.entries;
    totals.bytes += entry.bytes;
  }
  return totals;
}

std::vector<ArtifactCache::IndexEntry> ArtifactCache::index_entries()
    const {
  std::vector<IndexEntry> entries;
  if (!state_) return entries;
  const State& state = *state_;
  std::lock_guard<std::mutex> guard(state.mutex);
  state.ensure_loaded();
  entries.reserve(state.index.size());
  for (const auto& [name, entry] : state.index) entries.push_back(entry);
  return entries;
}

std::size_t ArtifactCache::rebuild_index() const {
  if (!state_) return 0;
  const State& state = *state_;
  std::lock_guard<std::mutex> guard(state.mutex);
  const fs::path dir(state.dir);
  FileLock lock(dir);
  IndexMap scanned = scan_directory(dir);
  if (lock.acquired()) {
    write_index_file(dir, scanned);
    metrics().index_rebuilds.add();
  }
  state.index = std::move(scanned);
  state.loaded = true;
  return state.index.size();
}

bool ArtifactCache::index_consistent() const {
  if (!state_) return true;
  const State& state = *state_;
  std::lock_guard<std::mutex> guard(state.mutex);
  const fs::path dir(state.dir);
  FileLock lock(dir);
  IndexMap disk;
  if (read_index_file(dir, disk) != IndexRead::Ok) return false;
  const IndexMap actual = scan_directory(dir);
  if (disk.size() != actual.size()) return false;
  for (const auto& [name, entry] : disk) {
    const auto it = actual.find(name);
    if (it == actual.end()) return false;
    if (it->second.bytes != entry.bytes ||
        it->second.checksum != entry.checksum) {
      return false;
    }
  }
  return true;
}

}  // namespace msim::pipeline
