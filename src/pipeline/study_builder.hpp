// Staged, parallel, artifact-cached Study construction.
//
// Study::build()'s three expensive inputs are produced as explicit,
// independently schedulable stages, each fanned out on the stage scheduler
// and memoized in the on-disk artifact cache:
//
//   GroundTruth — the full campaign (run_campaign_parallel), one artifact
//                 keyed by every machine config + the suite + the executor
//                 options;
//   Probes      — one probe suite per machine, keyed per machine config
//                 (probe results depend on nothing else, so ablations that
//                 swap bases or noise salts reuse them);
//   Traces      — one signature per (application, count), keyed by the app
//                 model text + base system name + tracer options;
//   Assemble    — Study::assemble() over the collected parts (cheap, pure).
//
// Keys are stable FNV-1a digests of the canonical text forms, so a second
// bench, tool or test in the same tree gets cache hits instead of
// recomputes, and a changed machine field, suite definition or StudyOptions
// value changes the key instead of serving stale artifacts. Convolver
// options are deliberately excluded: they are applied at predict() time,
// after every cached stage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "metrics/study.hpp"
#include "pipeline/artifact_cache.hpp"
#include "probes/probe_set.hpp"

namespace msim::pipeline {

/// Execution record of one stage.
struct StageStats {
  std::string name;
  std::size_t items = 0;       ///< work items in the stage
  std::size_t cache_hits = 0;  ///< items served from the artifact cache
  double seconds = 0.0;        ///< wall-clock spent in the stage

  /// True when the whole stage was skipped in favour of cached artifacts.
  [[nodiscard]] bool all_cached() const {
    return items > 0 && cache_hits == items;
  }
};

/// Execution record of a full build (valid after StudyBuilder::build()).
struct BuildStats {
  StageStats ground_truth{.name = "ground-truth"};
  StageStats probes{.name = "probes"};
  StageStats traces{.name = "traces"};
  double assemble_seconds = 0.0;
  double total_seconds = 0.0;
  bool cache_enabled = false;
  std::string cache_dir;
  /// On-disk cache totals after the build (ArtifactCache::stats()).
  std::size_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_max_bytes = 0;  ///< configured cap, 0 = unlimited
  std::uint64_t cache_evictions = 0;  ///< entries evicted during the build

  /// The bench-banner cache-stats line (report::render_pipeline_stats).
  [[nodiscard]] std::string summary() const;
};

/// Cache keys of the current configuration (per-item keys folded together
/// for the fan-out stages). Exposed so tests can assert key sensitivity.
struct StageKeys {
  std::uint64_t ground_truth = 0;
  std::uint64_t probes = 0;
  std::uint64_t traces = 0;
};

class StudyBuilder {
 public:
  /// Defaults to the full paper study: registry targets, registry base
  /// system, TI-05 suite, reference StudyOptions.
  StudyBuilder() = default;

  StudyBuilder& targets(std::vector<machine::MachineConfig> targets);
  StudyBuilder& base(machine::MachineConfig base_machine);
  StudyBuilder& suite(std::vector<workload::TestCase> suite);
  StudyBuilder& options(metrics::StudyOptions options);
  /// Worker threads for every stage; 0 = hardware concurrency.
  StudyBuilder& threads(unsigned threads);
  /// Enable/disable the artifact cache (overrides options.cache_artifacts).
  StudyBuilder& cache(bool enabled);
  /// Cache root; empty = MSIM_CACHE_DIR or ".msim-cache".
  StudyBuilder& cache_dir(std::string dir);
  /// Cache size cap in bytes, enforced by LRU eviction at store time;
  /// 0 = MSIM_CACHE_MAX_BYTES or unlimited.
  StudyBuilder& cache_max_bytes(std::uint64_t max_bytes);

  /// Run GroundTruth, Probes, Traces and Assemble; callable repeatedly.
  [[nodiscard]] metrics::Study build();

  /// Stats of the most recent build().
  [[nodiscard]] const BuildStats& stats() const { return stats_; }

  /// Stage keys for the current configuration, without building.
  [[nodiscard]] StageKeys stage_keys() const;

 private:
  std::optional<std::vector<machine::MachineConfig>> targets_;
  std::optional<machine::MachineConfig> base_;
  std::optional<std::vector<workload::TestCase>> suite_;
  metrics::StudyOptions options_{};
  std::optional<unsigned> threads_;
  std::optional<bool> cache_enabled_;
  std::string cache_dir_{};
  std::optional<std::uint64_t> cache_max_bytes_;
  BuildStats stats_{};
};

/// Cache file name of a machine's probe artifact (framed binary since
/// cache v2) and the v1 text name the old code wrote. Exposed so tests
/// can stage artifacts at the exact names the probe stage looks up.
[[nodiscard]] std::string probe_artifact_name(
    const machine::MachineConfig& machine);
[[nodiscard]] std::string legacy_probe_artifact_name(
    const machine::MachineConfig& machine);

/// Probe a machine list on the stage scheduler with per-machine caching.
/// Shared by the Probes stage and by benches that probe machines outside a
/// study (e.g. proposed systems). `stats` may be null.
[[nodiscard]] std::map<std::string, probes::ProbeSet> run_probe_stage(
    const std::vector<machine::MachineConfig>& machines, unsigned threads,
    const ArtifactCache& cache, StageStats* stats);

}  // namespace msim::pipeline
