#include "pipeline/stage_tasks.hpp"

#include <exception>
#include <utility>

#include "common/binary.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "machine/config_io.hpp"
#include "obs/registry.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"
#include "simulate/observation_io.hpp"
#include "trace/signature_io.hpp"
#include "workload/app_io.hpp"

namespace msim::pipeline {

namespace {

// Every field of the spec struct must be fed to the hash — a field
// missing from the key would let semantically different configs share
// cached artifacts. Enforced at build time:
// msim-lint: key-for(simulate::ExecutorOptions)
void hash_executor_options(Fnv1a& hash,
                           const simulate::ExecutorOptions& executor) {
  hash.update("executor-v1");
  hash.update_bool(executor.apply_tlb);
  hash.update_bool(executor.apply_contention);
  hash.update_bool(executor.apply_system_efficiency);
  hash.update_bool(executor.apply_noise);
  hash.update_u64(executor.noise_salt);
  hash.update_double(executor.noise_amplitude);
  hash.update_double(executor.affinity_amplitude);
  hash.update_bool(executor.apply_conflicts);
  hash.update_double(executor.conflict_strength);
  hash.update_i64(static_cast<std::int64_t>(executor.overlap));
}

// msim-lint: key-for(trace::TracerOptions)
void hash_tracer_options(Fnv1a& hash, const trace::TracerOptions& tracer) {
  hash.update("tracer-v1");
  hash.update_u64(tracer.sample_refs);
  hash.update_i64(tracer.short_stride_threshold);
  hash.update_u64(tracer.seed);
  hash.update_double(tracer.analyzer.false_negative_rate());
  hash.update_double(tracer.analyzer.false_positive_rate());
  hash.update_u64(tracer.analyzer.seed());
}

/// Cached load via a format-specific parser; malformed or unreadable
/// entries count as misses (the artifact is recomputed and re-stored).
/// Feeds the obs registry: `cache.hit` for entries that parse,
/// `cache.miss.malformed` for entries that load but do not.
template <typename Parse>
auto try_cache(const ArtifactCache& cache, const std::string& name,
               Parse parse)
    -> std::optional<decltype(parse(std::string{}))> {
  static obs::Counter& hits = obs::Registry::instance().counter("cache.hit");
  static obs::Counter& malformed =
      obs::Registry::instance().counter("cache.miss.malformed");
  const auto text = cache.load(name);
  if (!text) return std::nullopt;
  try {
    auto parsed = parse(*text);
    hits.add();
    return parsed;
  } catch (const std::exception&) {
    malformed.add();
    return std::nullopt;
  }
}

}  // namespace

// The app digest is the identity of a suite item everywhere downstream
// (trace keys, ground-truth keys), so this loop is the key function for
// both the case list it reads and the items it mints.
// msim-lint: key-for(workload::TestCase)
// msim-lint: key-for(pipeline::SuiteItem)
std::vector<SuiteItem> suite_items(
    const std::vector<workload::TestCase>& suite) {
  std::vector<SuiteItem> items;
  for (std::size_t c = 0; c < suite.size(); ++c) {
    for (int nprocs : suite[c].cpu_counts) {
      Fnv1a hash;
      hash.update("msim-app-v1");
      hash.update(suite[c].name);
      hash.update_i64(nprocs);
      hash.update(workload::to_text(suite[c].build(nprocs)));
      items.push_back(SuiteItem{.case_index = c,
                                .nprocs = nprocs,
                                .app_digest = hash.digest()});
    }
  }
  return items;
}

std::uint64_t ground_truth_key(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<SuiteItem>& items,
    const simulate::ExecutorOptions& executor) {
  Fnv1a hash;
  hash.update("msim-gt-v1");
  hash.update_u64(machines.size());
  for (const auto& machine : machines) {
    hash.update_u64(machine::config_digest(machine));
  }
  hash.update_u64(items.size());
  for (const auto& item : items) hash.update_u64(item.app_digest);
  hash_executor_options(hash, executor);
  return hash.digest();
}

std::uint64_t probe_key(const machine::MachineConfig& machine) {
  return Fnv1a{}
      .update("msim-probe-v1")
      .update_u64(machine::config_digest(machine))
      .digest();
}

std::uint64_t trace_key(const SuiteItem& item, const std::string& base,
                        const trace::TracerOptions& tracer) {
  Fnv1a hash;
  hash.update("msim-trace-v1");
  hash.update_u64(item.app_digest);
  hash.update(base);
  hash_tracer_options(hash, tracer);
  return hash.digest();
}

std::string ground_truth_artifact_name(std::uint64_t key) {
  return "gt-" + hex_digest(key) + ".txt";
}

std::string trace_artifact_name(std::uint64_t key) {
  return "sig-" + hex_digest(key) + ".txt";
}

std::optional<simulate::ObservationSet> load_ground_truth(
    const ArtifactCache& cache, const std::string& name) {
  return try_cache(cache, name, simulate::observation_set_from_text);
}

std::optional<probes::ProbeSet> try_probe_cache(
    const machine::MachineConfig& machine, const ArtifactCache& cache) {
  // Probe sets are consulted through the cache's mmap read path: the v2
  // chunked frame validates and decodes in place over the mapped bytes,
  // so a hot hit never round-trips the four MAPS sweeps through a
  // contiguous string — the property the resident serving path depends
  // on. The parser sniffs the frame magic and version, so v1 binary and
  // v1 text artifacts still load; any hit that is not already chunked is
  // re-stored as v2 (counted cache.migrate.v2) so the cache converges to
  // the mappable format. A hit at the legacy text name migrates the same
  // way under the canonical name.
  static obs::Counter& hits = obs::Registry::instance().counter("cache.hit");
  static obs::Counter& malformed =
      obs::Registry::instance().counter("cache.miss.malformed");
  static obs::Counter& migrated =
      obs::Registry::instance().counter("cache.migrate.v2");

  const std::string name = probe_artifact_name(machine);
  std::optional<probes::ProbeSet> result;
  for (const std::string& candidate :
       {name, legacy_probe_artifact_name(machine)}) {
    const auto mapped = cache.map(candidate);
    if (!mapped) continue;
    bool chunked = false;
    try {
      result = probes::probe_set_from_artifact(mapped->bytes());
      chunked = frame_version(mapped->bytes()) == 2;
      hits.add();
    } catch (const std::exception&) {
      malformed.add();
      continue;
    }
    if (!chunked) {
      cache.store(name, probes::to_binary(*result));
      migrated.add();
    }
    break;
  }
  if (result) {
    MSIM_REQUIRE(result->machine == machine.name,
                 "probe artifact names the wrong machine (cache corrupt?)");
  }
  return result;
}

std::optional<trace::ApplicationSignature> try_trace_cache(
    const ArtifactCache& cache, const std::string& artifact_name) {
  return try_cache(cache, artifact_name, trace::signature_from_text);
}

probes::ProbeSet probe_task(const machine::MachineConfig& machine,
                            const ArtifactCache& cache, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  if (auto cached = try_probe_cache(machine, cache)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return std::move(*cached);
  }
  probes::ProbeSet result = probes::run_probe_suite(machine);
  cache.store(probe_artifact_name(machine), probes::to_binary(result));
  MSIM_REQUIRE(result.machine == machine.name,
               "probe artifact names the wrong machine (cache corrupt?)");
  return result;
}

trace::ApplicationSignature trace_task(
    const workload::TestCase& test_case, const SuiteItem& item,
    const std::string& base_name, const trace::TracerOptions& tracer,
    const ArtifactCache& cache, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  const std::string name =
      trace_artifact_name(trace_key(item, base_name, tracer));
  if (auto cached = try_trace_cache(cache, name)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return std::move(*cached);
  }
  const workload::AppModel app = test_case.build(item.nprocs);
  trace::ApplicationSignature signature =
      trace::trace_application(app, base_name, tracer);
  cache.store(name, trace::to_text(signature));
  return signature;
}

}  // namespace msim::pipeline
