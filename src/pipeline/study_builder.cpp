#include "pipeline/study_builder.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "machine/config_io.hpp"
#include "machine/registry.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "pipeline/scheduler.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"
#include "report/report.hpp"
#include "simulate/campaign.hpp"
#include "simulate/observation_io.hpp"
#include "trace/signature_io.hpp"
#include "trace/tracer.hpp"
#include "workload/app_io.hpp"

namespace msim::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One (test case, processor count) unit of suite work, with the digest of
/// the instantiated application model it denotes.
struct SuiteItem {
  std::size_t case_index = 0;
  int nprocs = 0;
  std::uint64_t app_digest = 0;
};

std::vector<SuiteItem> suite_items(
    const std::vector<workload::TestCase>& suite) {
  std::vector<SuiteItem> items;
  for (std::size_t c = 0; c < suite.size(); ++c) {
    for (int nprocs : suite[c].cpu_counts) {
      Fnv1a hash;
      hash.update("msim-app-v1");
      hash.update(suite[c].name);
      hash.update_i64(nprocs);
      hash.update(workload::to_text(suite[c].build(nprocs)));
      items.push_back(SuiteItem{.case_index = c,
                                .nprocs = nprocs,
                                .app_digest = hash.digest()});
    }
  }
  return items;
}

void hash_executor_options(Fnv1a& hash,
                           const simulate::ExecutorOptions& executor) {
  hash.update("executor-v1");
  hash.update_bool(executor.apply_tlb);
  hash.update_bool(executor.apply_contention);
  hash.update_bool(executor.apply_system_efficiency);
  hash.update_bool(executor.apply_noise);
  hash.update_u64(executor.noise_salt);
  hash.update_double(executor.noise_amplitude);
  hash.update_double(executor.affinity_amplitude);
  hash.update_bool(executor.apply_conflicts);
  hash.update_double(executor.conflict_strength);
  hash.update_i64(static_cast<std::int64_t>(executor.overlap));
}

void hash_tracer_options(Fnv1a& hash, const trace::TracerOptions& tracer) {
  hash.update("tracer-v1");
  hash.update_u64(tracer.sample_refs);
  hash.update_i64(tracer.short_stride_threshold);
  hash.update_u64(tracer.seed);
  hash.update_double(tracer.analyzer.false_negative_rate());
  hash.update_double(tracer.analyzer.false_positive_rate());
  hash.update_u64(tracer.analyzer.seed());
}

std::uint64_t ground_truth_key(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<SuiteItem>& items,
    const simulate::ExecutorOptions& executor) {
  Fnv1a hash;
  hash.update("msim-gt-v1");
  hash.update_u64(machines.size());
  for (const auto& machine : machines) {
    hash.update_u64(machine::config_digest(machine));
  }
  hash.update_u64(items.size());
  for (const auto& item : items) hash.update_u64(item.app_digest);
  hash_executor_options(hash, executor);
  return hash.digest();
}

std::uint64_t probe_key(const machine::MachineConfig& machine) {
  return Fnv1a{}
      .update("msim-probe-v1")
      .update_u64(machine::config_digest(machine))
      .digest();
}

std::uint64_t trace_key(const SuiteItem& item, const std::string& base,
                        const trace::TracerOptions& tracer) {
  Fnv1a hash;
  hash.update("msim-trace-v1");
  hash.update_u64(item.app_digest);
  hash.update(base);
  hash_tracer_options(hash, tracer);
  return hash.digest();
}

/// Cached load via a format-specific parser; malformed or unreadable
/// entries count as misses (the artifact is recomputed and re-stored).
/// Feeds the obs registry: `cache.hit` for entries that parse,
/// `cache.miss.malformed` for entries that load but do not.
template <typename Parse>
auto try_cache(const ArtifactCache& cache, const std::string& name,
               Parse parse)
    -> std::optional<decltype(parse(std::string{}))> {
  static obs::Counter& hits = obs::Registry::instance().counter("cache.hit");
  static obs::Counter& malformed =
      obs::Registry::instance().counter("cache.miss.malformed");
  const auto text = cache.load(name);
  if (!text) return std::nullopt;
  try {
    auto parsed = parse(*text);
    hits.add();
    return parsed;
  } catch (const std::exception&) {
    malformed.add();
    return std::nullopt;
  }
}

}  // namespace

StudyBuilder& StudyBuilder::targets(
    std::vector<machine::MachineConfig> targets) {
  targets_ = std::move(targets);
  return *this;
}

StudyBuilder& StudyBuilder::base(machine::MachineConfig base_machine) {
  base_ = std::move(base_machine);
  return *this;
}

StudyBuilder& StudyBuilder::suite(std::vector<workload::TestCase> suite) {
  suite_ = std::move(suite);
  return *this;
}

StudyBuilder& StudyBuilder::options(metrics::StudyOptions options) {
  options_ = std::move(options);
  return *this;
}

StudyBuilder& StudyBuilder::threads(unsigned threads) {
  threads_ = threads;
  return *this;
}

StudyBuilder& StudyBuilder::cache(bool enabled) {
  cache_enabled_ = enabled;
  return *this;
}

StudyBuilder& StudyBuilder::cache_dir(std::string dir) {
  cache_dir_ = std::move(dir);
  return *this;
}

StudyBuilder& StudyBuilder::cache_max_bytes(std::uint64_t max_bytes) {
  cache_max_bytes_ = max_bytes;
  return *this;
}

std::string probe_artifact_name(const machine::MachineConfig& machine) {
  return "probe-" + hex_digest(probe_key(machine)) + ".bin";
}

std::string legacy_probe_artifact_name(
    const machine::MachineConfig& machine) {
  return "probe-" + hex_digest(probe_key(machine)) + ".txt";
}

StageKeys StudyBuilder::stage_keys() const {
  const std::vector<machine::MachineConfig> targets =
      targets_ ? *targets_ : machine::targets();
  const machine::MachineConfig base =
      base_ ? *base_ : machine::find(machine::base_system_name());
  const std::vector<workload::TestCase> suite =
      suite_ ? *suite_ : workload::ti05_suite();

  std::vector<machine::MachineConfig> machines = targets;
  machines.push_back(base);
  const std::vector<SuiteItem> items = suite_items(suite);

  StageKeys keys;
  keys.ground_truth =
      ground_truth_key(machines, items, options_.executor);
  Fnv1a probes_hash;
  probes_hash.update("msim-probes-combined-v1");
  for (const auto& machine : machines) {
    probes_hash.update_u64(probe_key(machine));
  }
  keys.probes = probes_hash.digest();
  Fnv1a traces_hash;
  traces_hash.update("msim-traces-combined-v1");
  for (const auto& item : items) {
    traces_hash.update_u64(trace_key(item, base.name, options_.tracer));
  }
  keys.traces = traces_hash.digest();
  return keys;
}

std::map<std::string, probes::ProbeSet> run_probe_stage(
    const std::vector<machine::MachineConfig>& machines, unsigned threads,
    const ArtifactCache& cache, StageStats* stats) {
  const auto start = Clock::now();
  obs::Span stage_span("stage:probes", "pipeline");
  stage_span.arg("items", static_cast<std::int64_t>(machines.size()));
  std::vector<probes::ProbeSet> results(machines.size());
  std::vector<unsigned char> hit(machines.size(), 0);

  run_indexed(
      machines.size(), threads,
      [&](std::size_t index) {
        const auto& machine = machines[index];
        // Probe sets are stored framed-binary (cache v2); the parser
        // sniffs the frame magic, so either encoding loads from either
        // name. A hit at the v1 text name is re-stored as binary so the
        // cache converges to the compact format.
        const std::string name = probe_artifact_name(machine);
        if (auto cached =
                try_cache(cache, name, probes::probe_set_from_artifact)) {
          results[index] = std::move(*cached);
          hit[index] = 1;
          return;
        }
        const std::string legacy = legacy_probe_artifact_name(machine);
        if (auto cached = try_cache(cache, legacy,
                                    probes::probe_set_from_artifact)) {
          results[index] = std::move(*cached);
          hit[index] = 1;
          cache.store(name, probes::to_binary(results[index]));
          return;
        }
        results[index] = probes::run_probe_suite(machine);
        cache.store(name, probes::to_binary(results[index]));
      },
      "probes");

  std::map<std::string, probes::ProbeSet> sets;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    MSIM_REQUIRE(results[i].machine == machines[i].name,
                 "probe artifact names the wrong machine (cache corrupt?)");
    sets.emplace(machines[i].name, std::move(results[i]));
  }
  if (stats != nullptr) {
    stats->items = machines.size();
    stats->cache_hits = 0;
    for (unsigned char h : hit) stats->cache_hits += h;
    stats->seconds = seconds_since(start);
  }
  return sets;
}

metrics::Study StudyBuilder::build() {
  const auto total_start = Clock::now();

  std::vector<machine::MachineConfig> targets =
      targets_ ? *targets_ : machine::targets();
  machine::MachineConfig base =
      base_ ? *base_ : machine::find(machine::base_system_name());
  std::vector<workload::TestCase> suite =
      suite_ ? *suite_ : workload::ti05_suite();
  MSIM_REQUIRE(!targets.empty(), "study needs target machines");
  MSIM_REQUIRE(!suite.empty(), "study needs test cases");

  const bool use_cache =
      cache_enabled_ ? *cache_enabled_ : options_.cache_artifacts;
  const std::string dir =
      !cache_dir_.empty() ? cache_dir_ : options_.cache_dir;
  const std::uint64_t max_bytes =
      cache_max_bytes_ ? *cache_max_bytes_ : options_.cache_max_bytes;
  const ArtifactCache cache =
      use_cache ? ArtifactCache(dir, max_bytes) : ArtifactCache();
  const unsigned threads =
      threads_ ? *threads_ : options_.build_threads;

  stats_ = BuildStats{};
  stats_.cache_enabled = cache.enabled();
  stats_.cache_dir = cache.enabled() ? cache.dir() : std::string{};

  std::vector<machine::MachineConfig> machines = targets;
  machines.push_back(base);
  const std::vector<SuiteItem> items = suite_items(suite);

  // --- Stage 1: GroundTruth (the full campaign) -----------------------
  simulate::ObservationSet observations;
  {
    const auto start = Clock::now();
    obs::Span stage_span("stage:ground-truth", "pipeline");
    const std::string name =
        "gt-" +
        hex_digest(ground_truth_key(machines, items, options_.executor)) +
        ".txt";
    stats_.ground_truth.items = 1;
    if (auto cached =
            try_cache(cache, name, simulate::observation_set_from_text)) {
      observations = std::move(*cached);
      stats_.ground_truth.cache_hits = 1;
    } else {
      observations = simulate::run_campaign_parallel(
          machines, suite, options_.executor,
          effective_threads(threads, items.size()));
      cache.store(name, simulate::to_text(observations));
    }
    stats_.ground_truth.seconds = seconds_since(start);
  }

  // --- Stage 2: Probes (fan out per machine) --------------------------
  std::map<std::string, probes::ProbeSet> probe_sets =
      run_probe_stage(machines, threads, cache, &stats_.probes);

  // --- Stage 3: Traces (fan out per (application, count)) -------------
  std::map<std::pair<std::string, int>, trace::ApplicationSignature>
      signatures;
  {
    const auto start = Clock::now();
    obs::Span stage_span("stage:traces", "pipeline");
    stage_span.arg("items", static_cast<std::int64_t>(items.size()));
    std::vector<trace::ApplicationSignature> results(items.size());
    std::vector<unsigned char> hit(items.size(), 0);
    run_indexed(
        items.size(), threads,
        [&](std::size_t index) {
          const SuiteItem& item = items[index];
          const workload::TestCase& test_case = suite[item.case_index];
          const std::string name =
              "sig-" +
              hex_digest(trace_key(item, base.name, options_.tracer)) +
              ".txt";
          if (auto cached =
                  try_cache(cache, name, trace::signature_from_text)) {
            results[index] = std::move(*cached);
            hit[index] = 1;
            return;
          }
          const workload::AppModel app = test_case.build(item.nprocs);
          results[index] =
              trace::trace_application(app, base.name, options_.tracer);
          cache.store(name, trace::to_text(results[index]));
        },
        "traces");
    for (std::size_t i = 0; i < items.size(); ++i) {
      signatures.emplace(
          std::make_pair(suite[items[i].case_index].name, items[i].nprocs),
          std::move(results[i]));
    }
    stats_.traces.items = items.size();
    for (unsigned char h : hit) stats_.traces.cache_hits += h;
    stats_.traces.seconds = seconds_since(start);
  }

  // --- Stage 4: Assemble ----------------------------------------------
  const auto assemble_start = Clock::now();
  obs::Span assemble_span("stage:assemble", "pipeline");
  metrics::StudyParts parts;
  for (const auto& target : targets) parts.target_names.push_back(target.name);
  parts.base = base.name;
  parts.suite = std::move(suite);
  parts.options = options_;
  parts.observations = std::move(observations);
  parts.probes = std::move(probe_sets);
  parts.signatures = std::move(signatures);
  metrics::Study study = metrics::Study::assemble(std::move(parts));
  stats_.assemble_seconds = seconds_since(assemble_start);
  stats_.total_seconds = seconds_since(total_start);
  if (cache.enabled()) {
    const ArtifactCache::Stats cache_stats = cache.stats();
    stats_.cache_entries = cache_stats.entries;
    stats_.cache_bytes = cache_stats.bytes;
    stats_.cache_max_bytes = cache_stats.max_bytes;
    stats_.cache_evictions = cache_stats.evictions;
  }
  return study;
}

std::string BuildStats::summary() const {
  return report::render_pipeline_stats(
      {report::PipelineStageLine{.name = ground_truth.name,
                                 .items = ground_truth.items,
                                 .cache_hits = ground_truth.cache_hits,
                                 .seconds = ground_truth.seconds},
       report::PipelineStageLine{.name = probes.name,
                                 .items = probes.items,
                                 .cache_hits = probes.cache_hits,
                                 .seconds = probes.seconds},
       report::PipelineStageLine{.name = traces.name,
                                 .items = traces.items,
                                 .cache_hits = traces.cache_hits,
                                 .seconds = traces.seconds}},
      total_seconds, cache_enabled, cache_dir,
      report::PipelineCacheLine{.entries = cache_entries,
                                .bytes = cache_bytes,
                                .max_bytes = cache_max_bytes,
                                .evictions = cache_evictions});
}

}  // namespace msim::pipeline
