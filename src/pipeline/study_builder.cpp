#include "pipeline/study_builder.hpp"

#include <chrono>
#include <utility>

#include "common/hash.hpp"
#include "machine/registry.hpp"
#include "obs/span.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/stage_tasks.hpp"
#include "pipeline/study_graph.hpp"
#include "report/report.hpp"

namespace msim::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

StudyBuilder& StudyBuilder::targets(
    std::vector<machine::MachineConfig> targets) {
  targets_ = std::move(targets);
  return *this;
}

StudyBuilder& StudyBuilder::base(machine::MachineConfig base_machine) {
  base_ = std::move(base_machine);
  return *this;
}

StudyBuilder& StudyBuilder::suite(std::vector<workload::TestCase> suite) {
  suite_ = std::move(suite);
  return *this;
}

StudyBuilder& StudyBuilder::options(metrics::StudyOptions options) {
  options_ = std::move(options);
  return *this;
}

StudyBuilder& StudyBuilder::threads(unsigned threads) {
  threads_ = threads;
  return *this;
}

StudyBuilder& StudyBuilder::cache(bool enabled) {
  cache_enabled_ = enabled;
  return *this;
}

StudyBuilder& StudyBuilder::cache_dir(std::string dir) {
  cache_dir_ = std::move(dir);
  return *this;
}

StudyBuilder& StudyBuilder::cache_max_bytes(std::uint64_t max_bytes) {
  cache_max_bytes_ = max_bytes;
  return *this;
}

std::string probe_artifact_name(const machine::MachineConfig& machine) {
  return "probe-" + hex_digest(probe_key(machine)) + ".bin";
}

std::string legacy_probe_artifact_name(
    const machine::MachineConfig& machine) {
  return "probe-" + hex_digest(probe_key(machine)) + ".txt";
}

StageKeys StudyBuilder::stage_keys() const {
  const std::vector<machine::MachineConfig> targets =
      targets_ ? *targets_ : machine::targets();
  const machine::MachineConfig base =
      base_ ? *base_ : machine::find(machine::base_system_name());
  const std::vector<workload::TestCase> suite =
      suite_ ? *suite_ : workload::ti05_suite();

  std::vector<machine::MachineConfig> machines = targets;
  machines.push_back(base);
  const std::vector<SuiteItem> items = suite_items(suite);

  StageKeys keys;
  keys.ground_truth =
      ground_truth_key(machines, items, options_.executor);
  Fnv1a probes_hash;
  probes_hash.update("msim-probes-combined-v1");
  for (const auto& machine : machines) {
    probes_hash.update_u64(probe_key(machine));
  }
  keys.probes = probes_hash.digest();
  Fnv1a traces_hash;
  traces_hash.update("msim-traces-combined-v1");
  for (const auto& item : items) {
    traces_hash.update_u64(trace_key(item, base.name, options_.tracer));
  }
  keys.traces = traces_hash.digest();
  return keys;
}

std::map<std::string, probes::ProbeSet> run_probe_stage(
    const std::vector<machine::MachineConfig>& machines, unsigned threads,
    const ArtifactCache& cache, StageStats* stats) {
  const auto start = Clock::now();
  obs::Span stage_span("stage:probes", "pipeline");
  stage_span.arg("items", static_cast<std::int64_t>(machines.size()));
  std::vector<probes::ProbeSet> results(machines.size());
  std::vector<unsigned char> hit(machines.size(), 0);

  run_indexed(
      machines.size(), threads,
      [&](std::size_t index) {
        bool cache_hit = false;
        results[index] = probe_task(machines[index], cache, &cache_hit);
        hit[index] = cache_hit ? 1 : 0;
      },
      "probes");

  std::map<std::string, probes::ProbeSet> sets;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    sets.emplace(machines[i].name, std::move(results[i]));
  }
  if (stats != nullptr) {
    stats->items = machines.size();
    stats->cache_hits = 0;
    for (unsigned char h : hit) stats->cache_hits += h;
    stats->seconds = seconds_since(start);
  }
  return sets;
}

metrics::Study StudyBuilder::build() {
  std::vector<machine::MachineConfig> targets =
      targets_ ? *targets_ : machine::targets();
  machine::MachineConfig base =
      base_ ? *base_ : machine::find(machine::base_system_name());
  std::vector<workload::TestCase> suite =
      suite_ ? *suite_ : workload::ti05_suite();

  const bool use_cache =
      cache_enabled_ ? *cache_enabled_ : options_.cache_artifacts;
  const std::string dir =
      !cache_dir_.empty() ? cache_dir_ : options_.cache_dir;
  const std::uint64_t max_bytes =
      cache_max_bytes_ ? *cache_max_bytes_ : options_.cache_max_bytes;
  const unsigned threads =
      threads_ ? *threads_ : options_.build_threads;

  // One engine: a single-spec cross-study graph. The graph lowers the
  // spec into the same stage nodes (same content keys, same artifacts,
  // same task bodies) a multi-study build would share.
  StudyGraph graph;
  graph.threads(threads)
      .cache(use_cache)
      .cache_dir(dir)
      .cache_max_bytes(max_bytes);
  const std::size_t handle =
      graph.add_study(StudySpec{.targets = std::move(targets),
                                .base = std::move(base),
                                .suite = std::move(suite),
                                .options = options_});
  graph.build_all();
  stats_ = graph.study_stats(handle);
  return graph.take_study(handle);
}

std::string BuildStats::summary() const {
  return report::render_pipeline_stats(
      {report::PipelineStageLine{.name = ground_truth.name,
                                 .items = ground_truth.items,
                                 .cache_hits = ground_truth.cache_hits,
                                 .seconds = ground_truth.seconds},
       report::PipelineStageLine{.name = probes.name,
                                 .items = probes.items,
                                 .cache_hits = probes.cache_hits,
                                 .seconds = probes.seconds},
       report::PipelineStageLine{.name = traces.name,
                                 .items = traces.items,
                                 .cache_hits = traces.cache_hits,
                                 .seconds = traces.seconds}},
      total_seconds, cache_enabled, cache_dir,
      report::PipelineCacheLine{.entries = cache_entries,
                                .bytes = cache_bytes,
                                .max_bytes = cache_max_bytes,
                                .evictions = cache_evictions});
}

}  // namespace msim::pipeline
