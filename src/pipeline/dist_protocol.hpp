// Coordinator <-> worker protocol for the distributed StudyGraph.
//
// A distributed build shards stage work — probe one machine, trace one
// (application, count), run one ground-truth campaign item — across
// worker processes (`msim worker`). Workers never ship results back
// through the coordinator: every unit's output is stored into the shared
// artifact cache (MSIM_CACHE_DIR + the flock'd v2 index), and the reply
// only says "the artifact is there now". The payloads are the canonical
// text forms (machine configs, app models) whose serialization is
// lossless at precision 17, so a worker recomputes bit-for-bit what the
// in-process pool would have computed; byte-identity of the final study
// falls out of cache-key discipline rather than a wire format for
// results.
//
// Framing is one JSON object per line in both directions (newlines inside
// JSON strings are escaped, so '\n' is an unambiguous frame boundary):
//
//   request:  {"op":"probe"|"trace"|"gt-item","id":N, ...unit fields}
//             {"op":"exit","id":N}
//   reply:    {"id":N,"status":"ok","cached":B,"seconds":S}
//             {"id":N,"status":"error","message":"..."}
//             {"id":N,"status":"bye","peak_rss_kb":K}    (exit ack)
//
// A reply line that does not parse, a truncated line, or a closed pipe
// are all treated by the coordinator as a worker failure: the worker is
// killed and respawned and the in-flight unit is re-dispatched (bounded
// retries). See docs/FORMATS.md ("Distributed shard plan and worker
// protocol") for the full schema, and dist_executor.hpp for the
// coordinator.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "pipeline/artifact_cache.hpp"
#include "simulate/executor.hpp"
#include "trace/tracer.hpp"

namespace msim::pipeline {

/// One shardable unit of stage work. Exactly the fields of the active
/// kind are meaningful; the rest stay default.
struct WorkUnit {
  enum class Kind { Probe, Trace, GtItem };
  Kind kind = Kind::Probe;
  /// Cache artifact this unit must leave behind (the coordinator verifies
  /// it with a checksummed load before counting the unit done).
  std::string artifact;

  // Probe: machine config text (machine::to_text).
  std::string machine_text;

  // Trace: app model text (workload::to_text), base system name, tracer
  // identity.
  std::string app_text;  ///< also used by GtItem
  std::string base;
  trace::TracerOptions tracer{};

  // GtItem: one campaign item — the app swept over every machine, in
  // order, exactly as simulate::run_campaign_item does.
  std::string app_name;
  int nprocs = 0;
  std::vector<std::string> machine_texts;
  simulate::ExecutorOptions executor{};
};

/// Assembly directive: once every chunk exists, concatenate them (in
/// order) into the whole-campaign ground-truth artifact.
struct GtAssembly {
  std::string artifact;             ///< gt-<key>.txt
  std::vector<std::string> chunks;  ///< gtc-<key>-<i>.txt, item order
};

/// The coordinator's shard plan: every unit the distributed pre-pass will
/// dispatch, plus the ground-truth assemblies to run afterwards. Written
/// as JSON (plan_to_json) for inspection and replay.
struct ShardPlan {
  int schema = 1;
  std::vector<WorkUnit> units;
  std::vector<GtAssembly> assemblies;
};

/// Chunk artifact holding one campaign item's observations of the
/// ground-truth fan-out keyed `key` (see stage_tasks.hpp for gt-<key>).
[[nodiscard]] std::string ground_truth_chunk_name(std::uint64_t key,
                                                  std::size_t index);

// --- unit / plan serialization ----------------------------------------

/// One-line JSON object for a unit (no "id"; request_line adds it).
[[nodiscard]] std::string unit_to_json(const WorkUnit& unit);

/// Parse a unit from its JSON object form. Throws msim::precondition_error
/// on unknown op or missing fields.
[[nodiscard]] WorkUnit unit_from_json(const json::Value& value);

[[nodiscard]] std::string plan_to_json(const ShardPlan& plan);
[[nodiscard]] ShardPlan plan_from_json(const std::string& text);

// --- wire framing ------------------------------------------------------

/// Request line (newline-terminated) dispatching `unit` as request `id`.
[[nodiscard]] std::string request_line(std::uint64_t id,
                                       const WorkUnit& unit);

/// Shutdown request; the worker answers with a "bye" reply and exits.
[[nodiscard]] std::string exit_request_line(std::uint64_t id);

struct WorkerReply {
  enum class Status { Ok, Error, Bye };
  Status status = Status::Error;
  std::uint64_t id = 0;
  bool cached = false;       ///< Ok: the cache already held the artifact
  double seconds = 0.0;      ///< Ok: worker-side unit wall time
  std::int64_t peak_rss_kb = 0;  ///< Bye: worker peak RSS (ru_maxrss)
  std::string message;       ///< Error: first-error text to propagate
};

[[nodiscard]] std::string reply_line(const WorkerReply& reply);

/// Parse one reply line; nullopt when the line is not a well-formed reply
/// (the coordinator treats that as a worker failure and re-dispatches).
[[nodiscard]] std::optional<WorkerReply> parse_reply(
    const std::string& line);

// --- execution ---------------------------------------------------------

struct UnitResult {
  bool cached = false;  ///< served by the artifact cache, nothing computed
};

/// Execute one unit against the shared cache: consult the cache first,
/// recompute on miss, store the artifact. The exact task bodies the
/// in-process pool runs (stage_tasks), so a distributed build leaves
/// byte-identical artifacts. Throws on malformed payloads.
UnitResult execute_unit(const WorkUnit& unit, const ArtifactCache& cache);

/// Worker protocol loop: read request lines from `in`, execute each unit,
/// write reply lines to `out` (flushed per reply), until an exit request
/// or EOF. Returns a process exit code. Honors MSIM_TEST_WORKER_FAULT
/// ("crash"|"hang"|"corrupt"|"garble" [":<nth request>"], fired at most
/// once across all workers via the MSIM_TEST_WORKER_FAULT_SENTINEL file,
/// default "<cache dir>.fault-fired") so the coordinator's recovery
/// paths are testable.
int run_worker_loop(std::FILE* in, std::FILE* out,
                    const ArtifactCache& cache);

}  // namespace msim::pipeline
