// Distributed shard-plan coordinator: worker process pool + recovery.
//
// run_shard_plan spawns N `msim worker` processes (stdin/stdout pipes,
// one JSON line per request/reply — dist_protocol.hpp) and dispatches the
// plan's units to whichever worker is idle. Results never travel through
// the coordinator: each unit stores its artifact into the shared cache
// directory, and the coordinator confirms completion with its own
// checksum-verified load — a worker that lied, died mid-write, or left a
// corrupt payload is caught here and the unit is re-dispatched.
//
// Failure policy: a worker crash (EOF on its pipe), a unit running past
// the timeout (SIGKILL), a reply that does not parse, or a post-ok
// verification miss all count against the unit's bounded retry budget
// (`dist.retry`); the worker slot is respawned and dispatch continues. A
// worker replying status:"error" is deterministic — the same inputs would
// fail again — so the first such error is propagated as a clean exception
// instead of burning retries. When a unit exhausts its retries the
// coordinator shuts the pool down and throws, naming the unit.
//
// Observability: `dist.dispatch` / `dist.retry` / `dist.worker.crash` /
// `dist.worker.timeout` / `dist.assemble` counters; per-worker run
// records and Chrome traces when `record_dir` is set, with worker trace
// events merged into the coordinator's own trace file (each worker gets
// its own pid row in Perfetto).
#pragma once

#include <cstdint>
#include <string>

#include "pipeline/artifact_cache.hpp"
#include "pipeline/dist_protocol.hpp"

namespace msim::pipeline {

struct DistOptions {
  /// Worker processes to spawn; 0 disables distribution.
  unsigned workers = 0;
  /// Path to the msim CLI binary spawned as `<worker_cmd> worker ...`.
  std::string worker_cmd;
  /// Per-unit wall-clock deadline; a worker past it is killed and the
  /// unit re-dispatched.
  double unit_timeout_seconds = 300.0;
  /// Re-dispatches allowed per unit after its first failure.
  unsigned max_retries = 2;
  /// Write the shard plan JSON here before dispatch ("" = don't).
  std::string plan_path;
  /// Directory for per-worker run records and Chrome traces ("" = off).
  /// Worker trace events are merged into the coordinator's trace.
  std::string record_dir;

  /// Options from the environment: MSIM_DIST_WORKERS (count),
  /// MSIM_WORKER_CMD (binary), MSIM_DIST_PLAN, MSIM_DIST_RECORD_DIR,
  /// MSIM_DIST_TIMEOUT_S, MSIM_DIST_RETRIES. workers stays 0 when
  /// MSIM_DIST_WORKERS is unset/0, so callers can treat the result as
  /// "distribution requested?".
  [[nodiscard]] static DistOptions from_env();
};

struct DistStats {
  unsigned workers = 0;
  std::size_t units = 0;        ///< units in the plan
  std::size_t dispatched = 0;   ///< dispatches, including re-dispatches
  std::size_t cached = 0;       ///< units the worker answered from cache
  std::size_t retries = 0;      ///< re-dispatches after a failure
  std::size_t crashes = 0;      ///< worker EOF / malformed reply / kill
  std::size_t timeouts = 0;     ///< units past the deadline
  std::size_t assemblies = 0;   ///< ground-truth campaigns assembled
  std::int64_t max_worker_rss_kb = 0;  ///< largest worker ru_maxrss
  double wall_seconds = 0.0;

  /// One diagnostics line for bench stderr banners.
  [[nodiscard]] std::string summary() const;
};

/// Execute a shard plan across worker processes sharing `cache`. Returns
/// when every unit's artifact verified and every assembly ran (a missing
/// or unparsable chunk skips its assembly — the in-process lowering
/// recomputes, correctness never depends on the distributed pass).
/// Throws msim::precondition_error on misconfiguration and
/// std::runtime_error on worker errors or retry exhaustion.
DistStats run_shard_plan(const ShardPlan& plan, const ArtifactCache& cache,
                         const DistOptions& options);

}  // namespace msim::pipeline
