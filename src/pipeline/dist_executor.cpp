#include "pipeline/dist_executor.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/parse.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "simulate/campaign.hpp"
#include "simulate/observation_io.hpp"

extern char** environ;

namespace msim::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One worker slot: a spawned `msim worker` process plus its pipes and
/// in-flight state. A dead slot (live == false) is respawned on demand
/// while units remain.
struct WorkerSlot {
  pid_t pid = -1;
  int to_fd = -1;    ///< coordinator -> worker (worker stdin)
  int from_fd = -1;  ///< worker stdout -> coordinator
  std::string buffer;
  bool live = false;
  bool busy = false;
  std::size_t unit = 0;
  std::uint64_t request_id = 0;
  Clock::time_point deadline{};
  std::int64_t peak_rss_kb = 0;
};

void close_slot(WorkerSlot& slot) {
  if (slot.to_fd >= 0) ::close(slot.to_fd);
  if (slot.from_fd >= 0) ::close(slot.from_fd);
  slot.to_fd = -1;
  slot.from_fd = -1;
  slot.live = false;
  slot.busy = false;
  slot.buffer.clear();
}

void kill_slot(WorkerSlot& slot) {
  if (slot.pid > 0) {
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    ::waitpid(slot.pid, &status, 0);
    slot.pid = -1;
  }
  close_slot(slot);
}

/// Reap a worker that exited on its own (EOF observed on its pipe).
void reap_slot(WorkerSlot& slot) {
  if (slot.pid > 0) {
    int status = 0;
    ::waitpid(slot.pid, &status, 0);
    slot.pid = -1;
  }
  close_slot(slot);
}

bool write_all(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: the worker is gone
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

// --- foreign trace merge ------------------------------------------------

void render_json_value(const json::Value& value, std::string& out) {
  switch (value.type()) {
    case json::Value::Type::Null:
      out += "null";
      return;
    case json::Value::Type::Bool:
      out += value.as_bool() ? "true" : "false";
      return;
    case json::Value::Type::Number: {
      const double number = value.as_number();
      if (number == std::floor(number) && std::fabs(number) < 1e15) {
        out += std::to_string(static_cast<long long>(number));
      } else {
        char buffer[64];
        std::snprintf(buffer, sizeof buffer, "%.17g", number);
        out += buffer;
      }
      return;
    }
    case json::Value::Type::String:
      out += '"';
      out += json::escape(value.as_string());
      out += '"';
      return;
    case json::Value::Type::Array: {
      out += '[';
      bool first = true;
      for (const json::Value& item : value.items()) {
        if (!first) out += ',';
        first = false;
        render_json_value(item, out);
      }
      out += ']';
      return;
    }
    case json::Value::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.fields()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json::escape(key);
        out += "\":";
        render_json_value(member, out);
      }
      out += '}';
      return;
    }
  }
}

/// Re-render one worker trace event with the worker's own pid, so merged
/// traces show each worker as its own process row in Perfetto.
std::string rebadge_event(const json::Value& event, int pid) {
  std::string out = "{";
  bool first = true;
  bool saw_pid = false;
  for (const auto& [key, member] : event.fields()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json::escape(key);
    out += "\":";
    if (key == "pid") {
      out += std::to_string(pid);
      saw_pid = true;
    } else {
      render_json_value(member, out);
    }
  }
  if (!saw_pid) {
    if (!first) out += ',';
    out += "\"pid\":" + std::to_string(pid);
  }
  out += '}';
  return out;
}

/// Parse a worker's Chrome trace file and splice its events (re-badged
/// with a per-worker pid) into the coordinator's next write_trace().
/// Best effort: a missing or malformed file (crashed worker) is skipped.
void merge_worker_trace(const std::string& path, unsigned slot) {
  std::ifstream in(path);
  if (!in) return;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const json::Value doc = json::parse(text.str());
    const json::Value* events = doc.find("traceEvents");
    if (events == nullptr || !events->is_array()) return;
    const int pid = static_cast<int>(slot) + 2;  // coordinator is pid 1
    std::vector<std::string> fragments;
    fragments.push_back(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
        std::to_string(pid) +
        ",\"tid\":0,\"args\":{\"name\":\"msim-worker-" +
        std::to_string(slot) + "\"}}");
    for (const json::Value& event : events->items()) {
      if (!event.is_object()) continue;
      if (event.string_or("name", "") == "process_name") continue;
      fragments.push_back(rebadge_event(event, pid));
    }
    obs::append_foreign_trace_events(std::move(fragments));
  } catch (const std::exception&) {
    // A truncated trace from a killed worker is expected, not an error.
  }
}

}  // namespace

DistOptions DistOptions::from_env() {
  DistOptions options;
  // Checked parses (common/parse.hpp): a malformed knob falls back whole
  // instead of truncating — "4x" or "1e10" workers must never half-apply.
  options.workers = env_unsigned("MSIM_DIST_WORKERS", 0);
  options.worker_cmd = env_string("MSIM_WORKER_CMD");
  options.plan_path = env_string("MSIM_DIST_PLAN");
  options.record_dir = env_string("MSIM_DIST_RECORD_DIR");
  if (const double timeout = env_double("MSIM_DIST_TIMEOUT_S", 0.0);
      timeout > 0.0) {
    options.unit_timeout_seconds = timeout;
  }
  options.max_retries = env_unsigned("MSIM_DIST_RETRIES", options.max_retries);
  return options;
}

std::string DistStats::summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "dist: %u workers, %zu units (%zu cached), %zu dispatched, "
                "%zu retries, %zu crashes, %zu timeouts, %zu assembled, "
                "max worker rss %lld kb, wall %.2fs",
                workers, units, cached, dispatched, retries, crashes,
                timeouts, assemblies,
                static_cast<long long>(max_worker_rss_kb), wall_seconds);
  return line;
}

DistStats run_shard_plan(const ShardPlan& plan, const ArtifactCache& cache,
                         const DistOptions& options) {
  DistStats stats;
  stats.workers = options.workers;
  stats.units = plan.units.size();
  if (plan.units.empty() && plan.assemblies.empty()) return stats;

  MSIM_REQUIRE(cache.enabled(),
               "distributed execution needs the artifact cache (workers "
               "exchange results through it)");
  MSIM_REQUIRE(options.workers > 0, "distributed execution needs workers");
  MSIM_REQUIRE(!options.worker_cmd.empty(),
               "distributed execution needs a worker command (the msim CLI "
               "binary; set MSIM_WORKER_CMD or DistOptions.worker_cmd)");

  static obs::Counter& dispatch_count =
      obs::Registry::instance().counter("dist.dispatch");
  static obs::Counter& retry_count =
      obs::Registry::instance().counter("dist.retry");
  static obs::Counter& crash_count =
      obs::Registry::instance().counter("dist.worker.crash");
  static obs::Counter& timeout_count =
      obs::Registry::instance().counter("dist.worker.timeout");
  static obs::Counter& assemble_count =
      obs::Registry::instance().counter("dist.assemble");

  const auto wall_start = Clock::now();
  obs::Span dist_span("dist:coordinate", "pipeline");

  // Workers that die get their pipes EPIPE'd under us; take the signal
  // out of the picture for the duration (write failures are handled).
  struct sigaction ignore_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction previous_pipe {};
  ::sigaction(SIGPIPE, &ignore_pipe, &previous_pipe);

  std::vector<WorkerSlot> slots(options.workers);
  std::deque<std::size_t> queue;
  for (std::size_t u = 0; u < plan.units.size(); ++u) queue.push_back(u);
  std::vector<unsigned> attempts(plan.units.size(), 0);
  std::size_t done = 0;
  std::uint64_t next_request = 1;

  const auto spawn_slot = [&](unsigned index) -> bool {
    WorkerSlot& slot = slots[index];
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    if (::pipe2(to_child, O_CLOEXEC) != 0) return false;
    if (::pipe2(from_child, O_CLOEXEC) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      return false;
    }
    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    // dup2 clears FD_CLOEXEC on the target, so the child keeps exactly
    // stdin/stdout; every other pipe end closes across the exec.
    posix_spawn_file_actions_adddup2(&actions, to_child[0], 0);
    posix_spawn_file_actions_adddup2(&actions, from_child[1], 1);

    std::vector<std::string> args = {
        options.worker_cmd,
        "worker",
        "--cache-dir",
        cache.dir(),
        "--cache-max-bytes",
        std::to_string(cache.max_bytes()),
        "--worker-id",
        std::to_string(index),
    };
    if (!options.record_dir.empty()) {
      const std::string stem =
          options.record_dir + "/worker-" + std::to_string(index);
      args.push_back("--run-record=" + stem + ".record.json");
      args.push_back("--trace=" + stem + ".trace.json");
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);

    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, options.worker_cmd.c_str(), &actions,
                                 nullptr, argv.data(), environ);
    posix_spawn_file_actions_destroy(&actions);
    ::close(to_child[0]);
    ::close(from_child[1]);
    if (rc != 0) {
      ::close(to_child[1]);
      ::close(from_child[0]);
      return false;
    }
    slot.pid = pid;
    slot.to_fd = to_child[1];
    slot.from_fd = from_child[0];
    slot.live = true;
    slot.busy = false;
    slot.buffer.clear();
    return true;
  };

  const auto shutdown_all = [&](bool graceful) {
    for (unsigned i = 0; i < slots.size(); ++i) {
      WorkerSlot& slot = slots[i];
      if (!slot.live) continue;
      bool said_bye = false;
      if (graceful && !slot.busy &&
          write_all(slot.to_fd, exit_request_line(next_request++))) {
        // Give the worker a moment to flush telemetry and report RSS.
        struct pollfd pfd {slot.from_fd, POLLIN, 0};
        const auto bye_deadline = Clock::now() + std::chrono::seconds(10);
        while (Clock::now() < bye_deadline) {
          const int ready = ::poll(&pfd, 1, 500);
          if (ready <= 0) continue;
          char chunk[4096];
          const ssize_t n = ::read(slot.from_fd, chunk, sizeof chunk);
          if (n <= 0) break;
          slot.buffer.append(chunk, static_cast<std::size_t>(n));
          const std::size_t eol = slot.buffer.find('\n');
          if (eol == std::string::npos) continue;
          const auto reply = parse_reply(slot.buffer.substr(0, eol + 1));
          if (reply && reply->status == WorkerReply::Status::Bye) {
            slot.peak_rss_kb = reply->peak_rss_kb;
            stats.max_worker_rss_kb =
                std::max(stats.max_worker_rss_kb, reply->peak_rss_kb);
            said_bye = true;
          }
          break;
        }
      }
      if (said_bye) {
        reap_slot(slot);
      } else {
        kill_slot(slot);
      }
    }
  };

  /// A unit failed (crash, timeout, malformed reply, or verification
  /// miss): charge its retry budget and requeue, or give up cleanly.
  const auto fail_unit = [&](unsigned index, const char* reason) {
    WorkerSlot& slot = slots[index];
    const std::size_t unit = slot.unit;
    slot.busy = false;
    retry_count.add();
    ++stats.retries;
    if (++attempts[unit] > options.max_retries) {
      shutdown_all(false);
      throw std::runtime_error(
          "distributed unit '" + plan.units[unit].artifact + "' failed " +
          std::to_string(attempts[unit]) + " times (last failure: " +
          reason + ")");
    }
    queue.push_front(unit);
  };

  try {
    while (done < plan.units.size()) {
      // Dispatch: hand a queued unit to every idle slot, respawning dead
      // slots while work remains.
      for (unsigned i = 0; i < slots.size() && !queue.empty(); ++i) {
        WorkerSlot& slot = slots[i];
        if (slot.busy) continue;
        if (!slot.live && !spawn_slot(i)) {
          throw std::runtime_error("failed to spawn dist worker '" +
                                   options.worker_cmd + "'");
        }
        const std::size_t unit = queue.front();
        queue.pop_front();
        slot.unit = unit;
        slot.request_id = next_request++;
        slot.deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   options.unit_timeout_seconds));
        dispatch_count.add();
        ++stats.dispatched;
        slot.busy = true;
        if (!write_all(slot.to_fd,
                       request_line(slot.request_id, plan.units[unit]))) {
          crash_count.add();
          ++stats.crashes;
          kill_slot(slot);
          fail_unit(i, "worker pipe closed on dispatch");
        }
      }

      // Wait for the earliest of: a reply, a worker EOF, a deadline.
      std::vector<struct pollfd> pfds;
      std::vector<unsigned> pfd_slot;
      Clock::time_point earliest = Clock::time_point::max();
      for (unsigned i = 0; i < slots.size(); ++i) {
        if (!slots[i].busy) continue;
        pfds.push_back({slots[i].from_fd, POLLIN, 0});
        pfd_slot.push_back(i);
        earliest = std::min(earliest, slots[i].deadline);
      }
      MSIM_CHECK(!pfds.empty(), "dist coordinator stalled with units queued");
      const auto now = Clock::now();
      int timeout_ms = 0;
      if (earliest > now) {
        timeout_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(earliest -
                                                                  now)
                .count()) +
            1;
      }
      const int ready = ::poll(pfds.data(),
                               static_cast<nfds_t>(pfds.size()), timeout_ms);

      if (ready > 0) {
        for (std::size_t p = 0; p < pfds.size(); ++p) {
          if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
            continue;
          }
          const unsigned i = pfd_slot[p];
          WorkerSlot& slot = slots[i];
          char chunk[8192];
          const ssize_t n = ::read(slot.from_fd, chunk, sizeof chunk);
          if (n <= 0) {
            // Worker crashed mid-unit.
            crash_count.add();
            ++stats.crashes;
            reap_slot(slot);
            fail_unit(i, "worker exited mid-unit");
            continue;
          }
          slot.buffer.append(chunk, static_cast<std::size_t>(n));
          const std::size_t eol = slot.buffer.find('\n');
          if (eol == std::string::npos) continue;  // partial line
          const std::string line = slot.buffer.substr(0, eol + 1);
          slot.buffer.erase(0, eol + 1);
          const auto reply = parse_reply(line);
          if (!reply || reply->id != slot.request_id) {
            // Garbled protocol stream: this worker cannot be trusted.
            crash_count.add();
            ++stats.crashes;
            kill_slot(slot);
            fail_unit(i, "malformed worker reply");
            continue;
          }
          if (reply->status == WorkerReply::Status::Error) {
            // Deterministic unit failure — retrying would repeat it.
            const std::string message = reply->message;
            shutdown_all(false);
            throw std::runtime_error("dist worker error on unit '" +
                                     plan.units[slot.unit].artifact +
                                     "': " + message);
          }
          if (reply->status != WorkerReply::Status::Ok) {
            crash_count.add();
            ++stats.crashes;
            kill_slot(slot);
            fail_unit(i, "unexpected worker reply status");
            continue;
          }
          // The reply only claims the artifact exists; believe the cache,
          // which verifies the payload checksum on load. The load runs on
          // a FRESH handle: the long-lived one read the index before the
          // workers wrote it, and a stale in-memory view would blindly
          // adopt whatever bytes are on disk instead of checking them
          // against the checksum the worker recorded (under flock, before
          // replying). A corrupt or missing artifact degrades to a retry,
          // never to wrong data.
          const ArtifactCache verify(cache.dir(), cache.max_bytes());
          if (!verify.load(plan.units[slot.unit].artifact)) {
            fail_unit(i, "artifact failed post-unit verification");
            continue;
          }
          if (reply->cached) ++stats.cached;
          slot.busy = false;
          ++done;
        }
      } else if (ready == 0) {
        // Deadline sweep: kill and recycle every overdue worker.
        const auto deadline_now = Clock::now();
        for (unsigned i = 0; i < slots.size(); ++i) {
          WorkerSlot& slot = slots[i];
          if (!slot.busy || slot.deadline > deadline_now) continue;
          timeout_count.add();
          ++stats.timeouts;
          kill_slot(slot);
          fail_unit(i, "unit timed out");
        }
      } else if (errno != EINTR) {
        throw std::runtime_error("dist coordinator poll failed");
      }
    }

    shutdown_all(true);
  } catch (...) {
    shutdown_all(false);
    ::sigaction(SIGPIPE, &previous_pipe, nullptr);
    throw;
  }
  ::sigaction(SIGPIPE, &previous_pipe, nullptr);

  // Ground-truth assembly: stitch each campaign's chunks (item order)
  // into the whole-campaign artifact the lowering pass looks for. A
  // missing or unparsable chunk skips the assembly — lowering recomputes.
  for (const GtAssembly& assembly : plan.assemblies) {
    simulate::ObservationSet set;
    bool complete = true;
    for (const std::string& chunk_name : assembly.chunks) {
      const auto text = cache.load(chunk_name);
      if (!text) {
        complete = false;
        break;
      }
      try {
        const simulate::ObservationSet chunk =
            simulate::observation_set_from_text(*text);
        for (const simulate::Observation& observation : chunk.all()) {
          set.add(observation);
        }
      } catch (const std::exception&) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;
    cache.store(assembly.artifact, simulate::to_text(set));
    assemble_count.add();
    ++stats.assemblies;
  }

  // Merge worker traces into the coordinator's trace file, one Perfetto
  // process row per worker slot.
  if (!options.record_dir.empty() && obs::tracing_enabled()) {
    for (unsigned i = 0; i < slots.size(); ++i) {
      merge_worker_trace(
          options.record_dir + "/worker-" + std::to_string(i) +
              ".trace.json",
          i);
    }
  }

  stats.wall_seconds = seconds_since(wall_start);
  return stats;
}

}  // namespace msim::pipeline
