// Per-item stage tasks and content keys shared by StudyBuilder and
// StudyGraph.
//
// Each task is the unit of work of one pipeline stage for one item —
// probe one machine, trace one (application, count), load one cached
// ground-truth campaign — including the artifact-cache consultation
// (lookup, checksum-verified load, recompute-and-store on miss). Keeping
// the task bodies here means the single-study builder and the cross-study
// graph execute byte-identical work from byte-identical cache names, so a
// study built either way is bitwise the same and their artifacts are
// interchangeable on disk.
//
// Keys are stable FNV-1a digests of the canonical text forms of exactly
// the inputs that produced an artifact; see study_builder.hpp for the
// stage inventory and key discipline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "pipeline/artifact_cache.hpp"
#include "probes/probe_set.hpp"
#include "simulate/campaign.hpp"
#include "simulate/executor.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace msim::pipeline {

/// One (test case, processor count) unit of suite work, with the digest of
/// the instantiated application model it denotes.
struct SuiteItem {
  std::size_t case_index = 0;
  int nprocs = 0;
  std::uint64_t app_digest = 0;
};

/// The suite's work list in deterministic (case, count) order, each item
/// carrying its application-model digest.
[[nodiscard]] std::vector<SuiteItem> suite_items(
    const std::vector<workload::TestCase>& suite);

// --- content keys -----------------------------------------------------

[[nodiscard]] std::uint64_t ground_truth_key(
    const std::vector<machine::MachineConfig>& machines,
    const std::vector<SuiteItem>& items,
    const simulate::ExecutorOptions& executor);

[[nodiscard]] std::uint64_t probe_key(const machine::MachineConfig& machine);

[[nodiscard]] std::uint64_t trace_key(const SuiteItem& item,
                                      const std::string& base,
                                      const trace::TracerOptions& tracer);

/// Cache file names derived from the stage keys. Probe names live in
/// study_builder.hpp (public API used by tests and benches).
[[nodiscard]] std::string ground_truth_artifact_name(std::uint64_t key);
[[nodiscard]] std::string trace_artifact_name(std::uint64_t key);

// --- per-item stage tasks ---------------------------------------------

/// Cached ground-truth campaign for `name`, or nullopt on any miss
/// (absent, unreadable, corrupt, malformed). Storing is the caller's job:
/// the campaign artifact covers a whole fan-out, not one item.
[[nodiscard]] std::optional<simulate::ObservationSet> load_ground_truth(
    const ArtifactCache& cache, const std::string& name);

/// Cache-only half of probe_task: the framed-binary lookup with the
/// transparent v1-text fallback and on-hit upgrade, or nullopt on any
/// miss. Used by probe_task itself and by the graph's batch prefetch, so
/// a prefetched hit is byte-identical to an in-task one.
[[nodiscard]] std::optional<probes::ProbeSet> try_probe_cache(
    const machine::MachineConfig& machine, const ArtifactCache& cache);

/// Cache-only half of trace_task: the signature parse for an artifact
/// name already derived via trace_key, or nullopt on any miss.
[[nodiscard]] std::optional<trace::ApplicationSignature> try_trace_cache(
    const ArtifactCache& cache, const std::string& artifact_name);

/// Probe one machine with per-machine caching (framed binary, with
/// transparent v1-text fallback and on-hit upgrade). `cache_hit` (may be
/// null) reports whether the cache served the result.
[[nodiscard]] probes::ProbeSet probe_task(
    const machine::MachineConfig& machine, const ArtifactCache& cache,
    bool* cache_hit);

/// Trace one (application, count) on the base system with per-item
/// caching. `cache_hit` (may be null) reports whether the cache served
/// the result.
[[nodiscard]] trace::ApplicationSignature trace_task(
    const workload::TestCase& test_case, const SuiteItem& item,
    const std::string& base_name, const trace::TracerOptions& tracer,
    const ArtifactCache& cache, bool* cache_hit);

}  // namespace msim::pipeline
