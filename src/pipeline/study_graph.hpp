// Cross-study stage graph: many studies, one deduplicated DAG, one pool.
//
// A StudyGraph accepts any number of study specs (the 11 base-system
// ablations, the W multiworld replicas, the TI-06 outlook variants) plus
// standalone probe batches, lowers them all into one directed acyclic
// graph of stage nodes, and executes the whole graph on a single
// work-stealing pool sized by effective_threads. Two properties fall out:
//
//   dedup   — nodes are keyed by the same content keys that name the
//             artifact cache entries, so stage work shared between specs
//             exists once in the graph: probe nodes are identical across
//             every ablation study (same machines), trace nodes are
//             identical across worlds that differ only in `noise_salt`
//             (traces never see the salt). `graph.dedup.hits` counts the
//             requests served by an existing node.
//   overlap — independent nodes from *different* studies run concurrently
//             on the one pool, so the outer "for each base / for each
//             world" loops stop serializing whole study builds. Workers
//             register with the scheduler's nesting accounting, so a
//             campaign fan-out inside a ground-truth node runs inline
//             instead of spawning a second pool: the process never
//             exceeds effective_threads concurrent workers.
//
// Node granularity matches the artifact cache: one node per machine
// (probes), per (application, count) (traces), per campaign item
// (ground-truth compute) plus one collect node per campaign that orders
// observations deterministically and owns the whole-campaign artifact.
// Results are therefore bitwise identical to a serial per-study build —
// the same guarantee test_pipeline.cpp enforces per study — and
// StudyBuilder::build() is itself a one-spec StudyGraph, so there is
// exactly one engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "metrics/study.hpp"
#include "pipeline/dist_executor.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_set.hpp"

namespace msim::pipeline {

/// One study to build: the inputs Study::assemble needs. The options'
/// pipeline-execution knobs (build_threads, cache_*) are ignored here —
/// execution is configured once, graph-wide, via the StudyGraph setters.
struct StudySpec {
  std::vector<machine::MachineConfig> targets;
  machine::MachineConfig base;
  std::vector<workload::TestCase> suite;
  metrics::StudyOptions options{};
};

/// The full paper study spec: registry targets, registry base system,
/// TI-05 suite.
[[nodiscard]] StudySpec paper_spec(metrics::StudyOptions options = {});

/// Whole-graph execution record (valid after build_all()).
struct GraphStats {
  std::size_t studies = 0;      ///< study specs added
  std::size_t probe_batches = 0;
  std::size_t nodes = 0;        ///< nodes in the graph, after dedup
  std::size_t dedup_hits = 0;   ///< node requests served by an existing node
  std::size_t cache_hits = 0;   ///< nodes served by the artifact cache
  std::size_t prefetch_probed = 0;  ///< node keys checked against the index
  std::size_t prefetch_hits = 0;    ///< nodes batch-loaded before the pool
  unsigned workers = 0;         ///< pool size used
  double busy_seconds = 0.0;    ///< summed node execution time
  double wall_seconds = 0.0;    ///< build_all wall clock
  DistStats dist;               ///< distributed pre-pass (zeros when off)

  /// One diagnostics line for bench stderr banners.
  [[nodiscard]] std::string summary() const;
};

class StudyGraph {
 public:
  StudyGraph();
  ~StudyGraph();
  StudyGraph(const StudyGraph&) = delete;
  StudyGraph& operator=(const StudyGraph&) = delete;

  /// Worker threads for the pool; 0 = default (MSIM_THREADS or hardware).
  StudyGraph& threads(unsigned threads);
  /// Enable/disable the shared artifact cache (default: disabled).
  StudyGraph& cache(bool enabled);
  /// Cache root; empty = MSIM_CACHE_DIR or ".msim-cache".
  StudyGraph& cache_dir(std::string dir);
  /// Cache size cap in bytes; 0 = MSIM_CACHE_MAX_BYTES or unlimited.
  StudyGraph& cache_max_bytes(std::uint64_t max_bytes);
  /// Graph-level artifact prefetch: after lowering, probe the cache index
  /// once for every probe/trace node key and batch-load the hits
  /// sequentially before the work-stealing pool starts, so warm builds
  /// stream the artifact store in name order instead of issuing random
  /// point lookups from many workers. On by default; also gated by
  /// MSIM_GRAPH_PREFETCH (set to "0" to disable). Bitwise-invisible in
  /// study results either way.
  StudyGraph& prefetch(bool enabled);
  /// Distribute stage work across worker processes before the in-process
  /// pool runs: build_all() computes a shard plan from the queued specs
  /// (skipping already-cached artifacts), dispatches it via
  /// run_shard_plan, and then lowers and executes as usual — every node
  /// whose artifact a worker stored becomes a cache hit, so results stay
  /// byte-identical to an undistributed build. Requires cache(true).
  /// Without this call, distribution is opted into from the environment
  /// (MSIM_DIST_WORKERS > 0 + MSIM_WORKER_CMD; see DistOptions::from_env),
  /// silently ignored when the cache is off or the build is nested inside
  /// a scheduler worker.
  StudyGraph& distribute(DistOptions options);

  /// Queue a study; returns its handle. Must precede build_all().
  std::size_t add_study(StudySpec spec);

  /// Queue a standalone probe batch (machines probed outside any study,
  /// e.g. proposed systems); returns its handle. Probe nodes dedup
  /// against study probe nodes by content key.
  std::size_t add_probes(std::vector<machine::MachineConfig> machines);

  /// Lower every queued spec into the deduplicated node graph and execute
  /// it on one pool. Callable once; rethrows the first node exception.
  void build_all();

  /// Move a built study out of the graph. Callable once per handle.
  [[nodiscard]] metrics::Study take_study(std::size_t study);

  /// Per-study stage stats, comparable to StudyBuilder::stats(). A stage
  /// item another study already executed counts as neither executed nor a
  /// cache hit here — dedup is reported on the graph, not the study.
  [[nodiscard]] const BuildStats& study_stats(std::size_t study) const;

  /// Probe sets of a batch, keyed by machine name.
  [[nodiscard]] std::map<std::string, probes::ProbeSet> probe_sets(
      std::size_t batch) const;

  /// Per-batch stage stats (items, cache hits, summed seconds).
  [[nodiscard]] const StageStats& probe_stats(std::size_t batch) const;

  [[nodiscard]] const GraphStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace msim::pipeline
