#include "pipeline/dist_protocol.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/parse.hpp"
#include "machine/config_io.hpp"
#include "obs/span.hpp"
#include "pipeline/stage_tasks.hpp"
#include "pipeline/study_builder.hpp"
#include "simulate/campaign.hpp"
#include "simulate/observation_io.hpp"
#include "trace/signature_io.hpp"
#include "workload/app_io.hpp"

namespace msim::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

/// Shortest round-trip-exact rendering of a double (same contract as the
/// text serializers' precision(17) streams).
std::string double_text(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// 64-bit values ride as decimal strings: JSON numbers are doubles on
/// the wire and would silently round anything past 2^53 (noise salts and
/// tracer seeds are full-width).
std::string u64_text(std::uint64_t value) { return std::to_string(value); }

std::uint64_t u64_field(const json::Value& value, const char* key) {
  const json::Value* field = value.find(key);
  MSIM_REQUIRE(field != nullptr && field->is_string(),
               std::string("dist request missing u64 field '") + key + "'");
  const std::optional<std::uint64_t> parsed =
      parse_u64(field->as_string());
  MSIM_REQUIRE(parsed.has_value(),
               std::string("dist request u64 field '") + key +
                   "' is not a decimal integer: " + field->as_string());
  return *parsed;
}

double number_field(const json::Value& value, const char* key) {
  const json::Value* field = value.find(key);
  MSIM_REQUIRE(field != nullptr && field->is_number(),
               std::string("dist request missing number field '") + key +
                   "'");
  return field->as_number();
}

bool bool_field(const json::Value& value, const char* key) {
  const json::Value* field = value.find(key);
  MSIM_REQUIRE(field != nullptr && field->is_bool(),
               std::string("dist request missing bool field '") + key + "'");
  return field->as_bool();
}

std::string string_field(const json::Value& value, const char* key) {
  const json::Value* field = value.find(key);
  MSIM_REQUIRE(field != nullptr && field->is_string(),
               std::string("dist request missing string field '") + key +
                   "'");
  return field->as_string();
}

void append_string_member(std::string& out, const char* key,
                          const std::string& value, bool leading_comma) {
  if (leading_comma) out += ',';
  out += '"';
  out += key;
  out += "\":\"";
  out += json::escape(value);
  out += '"';
}

// msim-lint: proto(dist.unit, writer)
std::string executor_to_json(const simulate::ExecutorOptions& executor) {
  std::string out = "{";
  out += "\"tlb\":" + std::string(executor.apply_tlb ? "true" : "false");
  out += ",\"contention\":" +
         std::string(executor.apply_contention ? "true" : "false");
  out += ",\"system_efficiency\":" +
         std::string(executor.apply_system_efficiency ? "true" : "false");
  out += ",\"noise\":" + std::string(executor.apply_noise ? "true" : "false");
  append_string_member(out, "noise_salt", u64_text(executor.noise_salt),
                       true);
  out += ",\"noise_amplitude\":" + double_text(executor.noise_amplitude);
  out +=
      ",\"affinity_amplitude\":" + double_text(executor.affinity_amplitude);
  out += ",\"conflicts\":" +
         std::string(executor.apply_conflicts ? "true" : "false");
  out += ",\"conflict_strength\":" + double_text(executor.conflict_strength);
  out += ",\"overlap\":" +
         std::to_string(static_cast<int>(executor.overlap));
  out += '}';
  return out;
}

// msim-lint: proto(dist.unit, reader)
simulate::ExecutorOptions executor_from_json(const json::Value& value) {
  simulate::ExecutorOptions executor;
  executor.apply_tlb = bool_field(value, "tlb");
  executor.apply_contention = bool_field(value, "contention");
  executor.apply_system_efficiency = bool_field(value, "system_efficiency");
  executor.apply_noise = bool_field(value, "noise");
  executor.noise_salt = u64_field(value, "noise_salt");
  executor.noise_amplitude = number_field(value, "noise_amplitude");
  executor.affinity_amplitude = number_field(value, "affinity_amplitude");
  executor.apply_conflicts = bool_field(value, "conflicts");
  executor.conflict_strength = number_field(value, "conflict_strength");
  executor.overlap = static_cast<cpusim::OverlapPolicy>(
      static_cast<int>(number_field(value, "overlap")));
  return executor;
}

// msim-lint: proto(dist.unit, writer)
std::string tracer_to_json(const trace::TracerOptions& tracer) {
  std::string out = "{";
  append_string_member(out, "sample_refs", u64_text(tracer.sample_refs),
                       false);
  out += ",\"short_stride_threshold\":" +
         std::to_string(tracer.short_stride_threshold);
  append_string_member(out, "seed", u64_text(tracer.seed), true);
  out += ",\"analyzer_fn_rate\":" +
         double_text(tracer.analyzer.false_negative_rate());
  out += ",\"analyzer_fp_rate\":" +
         double_text(tracer.analyzer.false_positive_rate());
  append_string_member(out, "analyzer_seed", u64_text(tracer.analyzer.seed()),
                       true);
  out += '}';
  return out;
}

// msim-lint: proto(dist.unit, reader)
trace::TracerOptions tracer_from_json(const json::Value& value) {
  trace::TracerOptions tracer;
  tracer.sample_refs = u64_field(value, "sample_refs");
  tracer.short_stride_threshold =
      static_cast<int>(number_field(value, "short_stride_threshold"));
  tracer.seed = u64_field(value, "seed");
  tracer.analyzer = trace::StaticAnalyzer(
      number_field(value, "analyzer_fn_rate"),
      number_field(value, "analyzer_fp_rate"),
      u64_field(value, "analyzer_seed"));
  return tracer;
}

// --- worker fault injection (test-only) --------------------------------

/// Parsed MSIM_TEST_WORKER_FAULT: a fault class and the 1-based request
/// ordinal (within one worker process) it fires on.
struct FaultSpec {
  enum class Kind { None, Crash, Hang, Corrupt, Garble };
  Kind kind = Kind::None;
  int at_request = 1;
};

FaultSpec fault_spec_from_env() {
  FaultSpec spec;
  const std::string text = env_string("MSIM_TEST_WORKER_FAULT");
  if (text.empty()) return spec;
  const std::size_t colon = text.find(':');
  std::string kind = text.substr(0, colon);
  if (colon != std::string::npos) {
    // Strict whole-string parse; a malformed ordinal degrades to "first
    // request" instead of atoi's silent prefix value.
    spec.at_request = parse_int(text.substr(colon + 1)).value_or(1);
    if (spec.at_request <= 0) spec.at_request = 1;
  }
  if (kind == "crash") spec.kind = FaultSpec::Kind::Crash;
  else if (kind == "hang") spec.kind = FaultSpec::Kind::Hang;
  else if (kind == "corrupt") spec.kind = FaultSpec::Kind::Corrupt;
  else if (kind == "garble") spec.kind = FaultSpec::Kind::Garble;
  return spec;
}

/// Atomically claim the one-shot fault (O_CREAT|O_EXCL on the sentinel
/// file shared by every worker): the injected fault fires exactly once
/// per campaign, so the retried unit succeeds and the run converges.
bool claim_fault_once(const ArtifactCache& cache) {
  std::string sentinel = env_string("MSIM_TEST_WORKER_FAULT_SENTINEL");
  if (sentinel.empty()) {
    if (!cache.enabled()) return false;
    // Sibling of the cache dir, not inside it: an index rebuild scan
    // must never adopt the sentinel as an artifact.
    sentinel = cache.dir() + ".fault-fired";
  }
  const int fd = ::open(sentinel.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

/// Overwrite the stored artifact's payload in place, bypassing the cache
/// API — the on-disk bytes no longer match the index checksum, exactly
/// what a worker dying mid-write leaves behind. Cache v2 must catch it.
void corrupt_artifact_on_disk(const ArtifactCache& cache,
                              const std::string& artifact) {
  if (!cache.enabled()) return;
  const std::string path = cache.dir() + "/" + artifact;
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return;
  static const char garbage[] = "XXXX corrupted by dying worker XXXX";
  // Best-effort single write at offset 0; ignore short writes.
  [[maybe_unused]] const ssize_t n =
      ::write(fd, garbage, sizeof garbage - 1);
  ::close(fd);
}

}  // namespace

std::string ground_truth_chunk_name(std::uint64_t key, std::size_t index) {
  return "gtc-" + hex_digest(key) + "-" + std::to_string(index) + ".txt";
}

// msim-lint: proto(dist.unit, writer)
std::string unit_to_json(const WorkUnit& unit) {
  std::string out = "{";
  switch (unit.kind) {
    case WorkUnit::Kind::Probe:
      append_string_member(out, "op", "probe", false);
      append_string_member(out, "artifact", unit.artifact, true);
      append_string_member(out, "machine", unit.machine_text, true);
      break;
    case WorkUnit::Kind::Trace:
      append_string_member(out, "op", "trace", false);
      append_string_member(out, "artifact", unit.artifact, true);
      append_string_member(out, "base", unit.base, true);
      append_string_member(out, "app", unit.app_text, true);
      out += ",\"tracer\":" + tracer_to_json(unit.tracer);
      break;
    case WorkUnit::Kind::GtItem:
      append_string_member(out, "op", "gt-item", false);
      append_string_member(out, "artifact", unit.artifact, true);
      append_string_member(out, "app_name", unit.app_name, true);
      out += ",\"nprocs\":" + std::to_string(unit.nprocs);
      append_string_member(out, "app", unit.app_text, true);
      out += ",\"machines\":[";
      for (std::size_t i = 0; i < unit.machine_texts.size(); ++i) {
        if (i != 0) out += ',';
        out += '"';
        out += json::escape(unit.machine_texts[i]);
        out += '"';
      }
      out += ']';
      out += ",\"executor\":" + executor_to_json(unit.executor);
      break;
  }
  out += '}';
  return out;
}

// msim-lint: proto(dist.unit, reader)
WorkUnit unit_from_json(const json::Value& value) {
  WorkUnit unit;
  const std::string op = string_field(value, "op");
  unit.artifact = string_field(value, "artifact");
  if (op == "probe") {
    unit.kind = WorkUnit::Kind::Probe;
    unit.machine_text = string_field(value, "machine");
  } else if (op == "trace") {
    unit.kind = WorkUnit::Kind::Trace;
    unit.base = string_field(value, "base");
    unit.app_text = string_field(value, "app");
    const json::Value* tracer = value.find("tracer");
    MSIM_REQUIRE(tracer != nullptr, "trace unit missing tracer options");
    unit.tracer = tracer_from_json(*tracer);
  } else if (op == "gt-item") {
    unit.kind = WorkUnit::Kind::GtItem;
    unit.app_name = string_field(value, "app_name");
    unit.nprocs = static_cast<int>(number_field(value, "nprocs"));
    unit.app_text = string_field(value, "app");
    const json::Value* machines = value.find("machines");
    MSIM_REQUIRE(machines != nullptr && machines->is_array(),
                 "gt-item unit missing machines");
    for (const json::Value& machine : machines->items()) {
      unit.machine_texts.push_back(machine.as_string());
    }
    const json::Value* executor = value.find("executor");
    MSIM_REQUIRE(executor != nullptr, "gt-item unit missing executor");
    unit.executor = executor_from_json(*executor);
  } else {
    throw precondition_error("unknown dist op '" + op + "'");
  }
  return unit;
}

// msim-lint: proto(dist.plan, writer)
std::string plan_to_json(const ShardPlan& plan) {
  std::string out = "{\"schema\":" + std::to_string(plan.schema);
  out += ",\"units\":[\n";
  for (std::size_t i = 0; i < plan.units.size(); ++i) {
    if (i != 0) out += ",\n";
    out += unit_to_json(plan.units[i]);
  }
  out += "\n],\"assemblies\":[\n";
  for (std::size_t i = 0; i < plan.assemblies.size(); ++i) {
    if (i != 0) out += ",\n";
    out += "{\"artifact\":\"" + json::escape(plan.assemblies[i].artifact) +
           "\",\"chunks\":[";
    for (std::size_t c = 0; c < plan.assemblies[i].chunks.size(); ++c) {
      if (c != 0) out += ',';
      out += '"';
      out += json::escape(plan.assemblies[i].chunks[c]);
      out += '"';
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

// msim-lint: proto(dist.plan, reader)
ShardPlan plan_from_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  ShardPlan plan;
  plan.schema = static_cast<int>(doc.number_or("schema", 1));
  MSIM_REQUIRE(plan.schema == 1, "unsupported shard-plan schema");
  const json::Value* units = doc.find("units");
  MSIM_REQUIRE(units != nullptr && units->is_array(),
               "shard plan missing units");
  for (const json::Value& unit : units->items()) {
    plan.units.push_back(unit_from_json(unit));
  }
  if (const json::Value* assemblies = doc.find("assemblies");
      assemblies != nullptr && assemblies->is_array()) {
    for (const json::Value& entry : assemblies->items()) {
      GtAssembly assembly;
      assembly.artifact = string_field(entry, "artifact");
      const json::Value* chunks = entry.find("chunks");
      MSIM_REQUIRE(chunks != nullptr && chunks->is_array(),
                   "assembly missing chunks");
      for (const json::Value& chunk : chunks->items()) {
        assembly.chunks.push_back(chunk.as_string());
      }
      plan.assemblies.push_back(std::move(assembly));
    }
  }
  return plan;
}

// msim-lint: proto(dist.request, writer)
std::string request_line(std::uint64_t id, const WorkUnit& unit) {
  std::string body = unit_to_json(unit);
  // Splice the id in after the opening brace; the body is always "{...".
  return "{\"id\":" + u64_text(id) + "," + body.substr(1) + "\n";
}

// msim-lint: proto(dist.request, writer)
std::string exit_request_line(std::uint64_t id) {
  return "{\"id\":" + u64_text(id) + ",\"op\":\"exit\"}\n";
}

// msim-lint: proto(dist.reply, writer)
std::string reply_line(const WorkerReply& reply) {
  std::string out = "{\"id\":" + u64_text(reply.id);
  switch (reply.status) {
    case WorkerReply::Status::Ok:
      out += ",\"status\":\"ok\",\"cached\":";
      out += reply.cached ? "true" : "false";
      out += ",\"seconds\":" + double_text(reply.seconds);
      break;
    case WorkerReply::Status::Error:
      out += ",\"status\":\"error\",\"message\":\"" +
             json::escape(reply.message) + "\"";
      break;
    case WorkerReply::Status::Bye:
      out += ",\"status\":\"bye\",\"peak_rss_kb\":" +
             std::to_string(reply.peak_rss_kb);
      break;
  }
  out += "}\n";
  return out;
}

// msim-lint: proto(dist.reply, reader)
std::optional<WorkerReply> parse_reply(const std::string& line) {
  try {
    const json::Value doc = json::parse(line);
    if (!doc.is_object()) return std::nullopt;
    const json::Value* id = doc.find("id");
    if (id == nullptr || !id->is_number()) return std::nullopt;
    WorkerReply reply;
    reply.id = static_cast<std::uint64_t>(id->as_number());
    const std::string status = doc.string_or("status", "");
    if (status == "ok") {
      reply.status = WorkerReply::Status::Ok;
      const json::Value* cached = doc.find("cached");
      if (cached == nullptr || !cached->is_bool()) return std::nullopt;
      reply.cached = cached->as_bool();
      reply.seconds = doc.number_or("seconds", 0.0);
    } else if (status == "error") {
      reply.status = WorkerReply::Status::Error;
      reply.message = doc.string_or("message", "(no message)");
    } else if (status == "bye") {
      reply.status = WorkerReply::Status::Bye;
      reply.peak_rss_kb =
          static_cast<std::int64_t>(doc.number_or("peak_rss_kb", 0.0));
    } else {
      return std::nullopt;
    }
    return reply;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

UnitResult execute_unit(const WorkUnit& unit, const ArtifactCache& cache) {
  UnitResult result;
  switch (unit.kind) {
    case WorkUnit::Kind::Probe: {
      const machine::MachineConfig machine =
          machine::from_text(unit.machine_text);
      MSIM_REQUIRE(probe_artifact_name(machine) == unit.artifact,
                   "probe unit artifact does not match its machine");
      bool hit = false;
      (void)probe_task(machine, cache, &hit);
      result.cached = hit;
      return result;
    }
    case WorkUnit::Kind::Trace: {
      if (try_trace_cache(cache, unit.artifact)) {
        result.cached = true;
        return result;
      }
      const workload::AppModel app = workload::app_from_text(unit.app_text);
      obs::Span span("stage:traces", "dist");
      const trace::ApplicationSignature signature =
          trace::trace_application(app, unit.base, unit.tracer);
      cache.store(unit.artifact, trace::to_text(signature));
      return result;
    }
    case WorkUnit::Kind::GtItem: {
      if (const auto text = cache.load(unit.artifact)) {
        try {
          (void)simulate::observation_set_from_text(*text);
          result.cached = true;
          return result;
        } catch (const std::exception&) {
          // Malformed chunk: fall through and recompute.
        }
      }
      const workload::AppModel app = workload::app_from_text(unit.app_text);
      simulate::ObservationSet chunk;
      for (const std::string& machine_text : unit.machine_texts) {
        const machine::MachineConfig machine =
            machine::from_text(machine_text);
        obs::Span span("run", "campaign");
        span.arg("app", unit.app_name)
            .arg("machine", machine.name)
            .arg("nprocs", unit.nprocs);
        const simulate::RunResult run =
            simulate::execute(app, machine, unit.executor);
        chunk.add(simulate::Observation{.app = unit.app_name,
                                        .nprocs = unit.nprocs,
                                        .machine = machine.name,
                                        .seconds = run.wall_seconds});
      }
      cache.store(unit.artifact, simulate::to_text(chunk));
      return result;
    }
  }
  throw precondition_error("unknown work unit kind");
}

// msim-lint: proto(dist.request, reader)
int run_worker_loop(std::FILE* in, std::FILE* out,
                    const ArtifactCache& cache) {
  const FaultSpec fault = fault_spec_from_env();
  int request_no = 0;

  char* line = nullptr;
  std::size_t capacity = 0;
  int exit_code = 0;
  while (true) {
    const ssize_t len = ::getline(&line, &capacity, in);
    if (len < 0) break;  // EOF: coordinator went away; exit quietly.
    const std::string text(line, static_cast<std::size_t>(len));
    if (text.find_first_not_of(" \t\r\n") == std::string::npos) continue;

    std::uint64_t id = 0;
    std::string op;
    WorkUnit unit;
    bool parsed = false;
    try {
      const json::Value doc = json::parse(text);
      id = static_cast<std::uint64_t>(doc.number_or("id", 0.0));
      op = doc.string_or("op", "");
      if (op != "exit") unit = unit_from_json(doc);
      parsed = true;
    } catch (const std::exception& error) {
      WorkerReply reply;
      reply.id = id;
      reply.status = WorkerReply::Status::Error;
      reply.message = std::string("malformed request: ") + error.what();
      std::fputs(reply_line(reply).c_str(), out);
      std::fflush(out);
      exit_code = 1;
      break;
    }
    if (!parsed) break;

    if (op == "exit") {
      WorkerReply reply;
      reply.id = id;
      reply.status = WorkerReply::Status::Bye;
      struct rusage usage{};
      if (::getrusage(RUSAGE_SELF, &usage) == 0) {
        reply.peak_rss_kb = usage.ru_maxrss;
      }
      std::fputs(reply_line(reply).c_str(), out);
      std::fflush(out);
      break;
    }

    ++request_no;
    const bool fire = fault.kind != FaultSpec::Kind::None &&
                      request_no == fault.at_request &&
                      claim_fault_once(cache);
    if (fire && fault.kind == FaultSpec::Kind::Crash) {
      ::_exit(134);  // die before touching the unit
    }
    if (fire && fault.kind == FaultSpec::Kind::Hang) {
      // Stall far past any reasonable unit timeout; the coordinator must
      // SIGKILL this process and re-dispatch the unit.
      std::this_thread::sleep_for(std::chrono::seconds(1000));
      ::_exit(134);
    }

    WorkerReply reply;
    reply.id = id;
    const auto start = Clock::now();
    try {
      const UnitResult unit_result = execute_unit(unit, cache);
      reply.status = WorkerReply::Status::Ok;
      reply.cached = unit_result.cached;
      reply.seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
    } catch (const std::exception& error) {
      reply.status = WorkerReply::Status::Error;
      reply.message = error.what();
    }

    if (fire && fault.kind == FaultSpec::Kind::Corrupt) {
      // Claim success, but leave a payload whose bytes no longer match
      // the index checksum — the coordinator's verifying load must turn
      // this into a miss and a retry, never into wrong data.
      corrupt_artifact_on_disk(cache, unit.artifact);
    }
    if (fire && fault.kind == FaultSpec::Kind::Garble) {
      std::fputs("!!! not json at all\n", out);
      std::fflush(out);
      continue;  // the coordinator kills us for this; keep listening
    }
    std::fputs(reply_line(reply).c_str(), out);
    std::fflush(out);
  }
  ::free(line);
  return exit_code;
}

}  // namespace msim::pipeline
