// Content-keyed on-disk artifact cache for pipeline stage outputs — v2:
// an indexed, size-capped, self-healing LRU store.
//
// Each cached artifact is one file (text archives for observation sets and
// signatures, framed binary for probe sets — see common/binary.hpp) named
// by the FNV-1a digest of exactly the inputs that produced it. The cache
// is one directory — `MSIM_CACHE_DIR` or `.msim-cache` under the working
// directory — shared by every bench, tool and test that opts in.
//
// On top of the v1 flat directory, v2 maintains a persistent index file
// (`index.msim`: entry name, byte size, last-access stamp, payload
// checksum) written with the same temp-file+rename discipline as the
// artifacts themselves, so a crash at any instant leaves either the old or
// the new index, never a torn one. The index buys three things:
//
//   eviction  — a configurable size cap (`MSIM_CACHE_MAX_BYTES` or the
//               StudyBuilder::cache_max_bytes option; 0 = unlimited)
//               enforced at store time by least-recently-used eviction
//               (stamps follow file mtimes, which loads refresh);
//   integrity — loads verify the payload checksum recorded at store time,
//               so a bit-flipped or truncated entry degrades to a miss
//               (`cache.miss.corrupt`) and is deleted, never returned;
//   cheap stats — entry/byte totals without a full directory walk.
//
// The directory stays the source of truth: a missing, stale or garbled
// index is rebuilt from a directory scan (`cache.index.rebuild`), and an
// artifact present on disk but absent from the index is adopted on first
// load. Deleting the index — or the whole directory — is always safe.
//
// Concurrency: payload writers stage into a unique temp file and rename()
// into place (atomic on POSIX), so readers never observe partial payloads.
// Index updates (store bookkeeping, eviction, rebuild) additionally hold
// an advisory `flock` on `index.lock`, which serializes them across
// threads and across processes sharing the directory; each update
// re-reads the on-disk index and merges before writing, so concurrent
// writers do not erase each other's entries. When the lock file cannot be
// opened (permissions, a directory squatting on the name) the open is
// retried once and then the on-disk index update is *skipped* — counted
// as `cache.index.lock_fail` — rather than racing unlocked: the in-memory
// view still advances and the directory remains the source of truth, so
// the next locked update (or rebuild) heals the index.
//
// Reading: load() copies the payload through one string; map() instead
// memory-maps the payload read-only (`cache.map.{count,bytes}`) and hands
// out a view, which the frame v2 chunked layout (common/binary.hpp) can
// validate and decode in place — the resident serving path, where probe
// artifacts are consulted per query and a full string deserialization
// per hit would dominate. Both verify the index checksum the same way;
// a corrupt entry degrades to a miss and is deleted either way.
//
// Observability: `cache.load.*` / `cache.store.*` counters plus latency
// histograms; misses split by reason (`cache.miss.absent`,
// `cache.miss.unreadable`, `cache.miss.corrupt` for checksum failures;
// the pipeline's parse layer adds `cache.miss.malformed` and `cache.hit`);
// `cache.evict.{count,bytes}`, `cache.index.rebuild` and
// `cache.index.lock_fail` for the v2 machinery; `cache.map.{count,bytes}`
// for the mmap read path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace msim::pipeline {

/// Read-only view of one memory-mapped cache payload. The mapping lives
/// while any copy of the handle does (shared region, munmap on the last
/// release); bytes() is stable for that lifetime. Checksum-verified at
/// map time exactly like a load, so the view never exposes corrupt data.
class MappedArtifact {
 public:
  [[nodiscard]] std::string_view bytes() const;

 private:
  friend class ArtifactCache;
  struct Region;
  std::shared_ptr<Region> region_;
};

class ArtifactCache {
 public:
  /// Disabled cache: every lookup misses, stores are no-ops.
  ArtifactCache() = default;

  /// Enabled cache rooted at `dir`; empty uses default_dir(). The
  /// directory is created on first store. `max_bytes` caps the total
  /// payload bytes kept (LRU-evicted at store time); 0 defers to
  /// default_max_bytes().
  explicit ArtifactCache(std::string dir, std::uint64_t max_bytes = 0);

  /// `MSIM_CACHE_DIR` if set, else ".msim-cache" (working directory).
  [[nodiscard]] static std::string default_dir();

  /// `MSIM_CACHE_MAX_BYTES` if set to a positive integer (optional
  /// k/m/g suffix, powers of 1024), else 0 = unlimited. A value whose
  /// suffix multiplication (or digits) would overflow 64 bits saturates
  /// to UINT64_MAX — a huge requested cap must never wrap into a tiny
  /// one. Malformed values (trailing garbage, unknown suffix, bare
  /// suffix, negative) parse as 0 = unlimited.
  [[nodiscard]] static std::uint64_t default_max_bytes();

  [[nodiscard]] bool enabled() const { return state_ != nullptr; }
  [[nodiscard]] const std::string& dir() const;
  [[nodiscard]] std::uint64_t max_bytes() const;

  /// Artifact contents, or nullopt when disabled/absent/unreadable/
  /// corrupt. A checksum mismatch against the index deletes the entry
  /// (it will be recomputed) — wrong data is never returned.
  [[nodiscard]] std::optional<std::string> load(
      const std::string& name) const;

  /// Memory-map an artifact read-only instead of copying it through a
  /// string; nullopt on the same conditions as load() (disabled, absent,
  /// unmappable, corrupt — a checksum mismatch against the index deletes
  /// the entry). The returned handle keeps the mapping alive; the view is
  /// verified against the index at map time, so readers can decode it in
  /// place (frame v2 chunks) without re-hashing.
  [[nodiscard]] std::optional<MappedArtifact> map(
      const std::string& name) const;

  /// Best-effort atomic store; failures are silent (the cache is an
  /// optimization, never a correctness dependency). Updates the index
  /// and evicts least-recently-used entries while the cap is exceeded
  /// (the entry just stored is never evicted by its own store).
  void store(const std::string& name, const std::string& content) const;

  /// Totals from the index (payload entries only; the index and lock
  /// files don't count). All zeros when the cache is disabled or the
  /// directory does not exist yet.
  struct Stats {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t max_bytes = 0;  ///< configured cap, 0 = unlimited
    std::uint64_t evictions = 0;  ///< entries evicted via this instance
  };
  [[nodiscard]] Stats stats() const;

  /// One row of the persistent index.
  struct IndexEntry {
    std::string name;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;   ///< FNV-1a of the payload bytes
    std::int64_t access_ns = 0;   ///< last-access stamp (file mtime, ns)
  };

  /// Snapshot of the index (loading or healing it first if needed),
  /// sorted by name. Empty when disabled.
  [[nodiscard]] std::vector<IndexEntry> index_entries() const;

  /// Drop any in-memory view and rebuild the index from a directory
  /// scan; returns the number of entries indexed. No-op when disabled.
  std::size_t rebuild_index() const;

  /// True when every on-disk index row matches an existing payload file
  /// (size and checksum) and every payload file in the directory has an
  /// index row. A missing-or-garbled index is inconsistent. Test hook;
  /// also true for a disabled cache (vacuously).
  [[nodiscard]] bool index_consistent() const;

 private:
  struct State;
  // Shared (not unique) so the cache object stays cheaply copyable; all
  // copies see one in-memory index view, matching the one directory they
  // point at.
  std::shared_ptr<State> state_;
};

}  // namespace msim::pipeline
