// Content-keyed on-disk artifact cache for pipeline stage outputs.
//
// Each cached artifact is one text file (the existing archive formats:
// probe sets, application signatures, observation sets) named by the
// FNV-1a digest of exactly the inputs that produced it. The cache is a
// flat directory — `MSIM_CACHE_DIR` or `.msim-cache` under the working
// directory — shared by every bench, tool and test in the tree, so the
// second process to need an artifact loads it instead of recomputing.
//
// Concurrency: writers stage into a unique temp file and rename() into
// place (atomic on POSIX), so concurrent builders race benignly — both
// compute, one rename wins, contents are identical by construction.
// Unreadable or malformed entries are treated as misses and overwritten.
//
// Observability: loads and stores feed the obs registry — `cache.load.*`
// and `cache.store.*` counters plus latency histograms, with misses split
// by reason (`cache.miss.absent` = no such entry, `cache.miss.unreadable`
// = present but the read failed; the pipeline's parse layer adds
// `cache.miss.malformed` for entries that load but fail to parse, and
// `cache.hit` for entries that survive parsing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace msim::pipeline {

class ArtifactCache {
 public:
  /// Disabled cache: every lookup misses, stores are no-ops.
  ArtifactCache() = default;

  /// Enabled cache rooted at `dir`; empty uses default_dir(). The
  /// directory is created on first store.
  explicit ArtifactCache(std::string dir);

  /// `MSIM_CACHE_DIR` if set, else ".msim-cache" (working directory).
  [[nodiscard]] static std::string default_dir();

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Artifact contents, or nullopt when disabled/absent/unreadable.
  [[nodiscard]] std::optional<std::string> load(
      const std::string& name) const;

  /// Best-effort atomic store; failures are silent (the cache is an
  /// optimization, never a correctness dependency).
  void store(const std::string& name, const std::string& content) const;

  /// Cheap directory totals (staging temp files excluded). All zeros when
  /// the cache is disabled or the directory does not exist yet.
  struct Stats {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  bool enabled_ = false;
  std::string dir_;
};

}  // namespace msim::pipeline
