// Stage scheduler: bounded thread-pooled fan-out over an indexed work list.
//
// Every pipeline stage is an array of independent, pure tasks (one per
// machine, one per (application, count), ...). The scheduler runs them on a
// fixed pool with an atomic work counter — no work stealing, no shared
// mutable state beyond the counter — so results land in caller-owned,
// per-index slots and stage output is bitwise independent of the thread
// count. The first task exception is captured and rethrown on the calling
// thread after the pool joins.
#pragma once

#include <cstddef>
#include <functional>

namespace msim::pipeline {

/// Number of workers actually used for `items` tasks: `threads` (or the
/// hardware concurrency when 0), clamped to [1, items].
[[nodiscard]] unsigned effective_threads(unsigned threads, std::size_t items);

/// Run `task(0) ... task(items-1)` across a pool of `threads` workers
/// (0 = hardware concurrency). Serial when one worker suffices. Rethrows
/// the first task exception after all workers finish.
void run_indexed(std::size_t items, unsigned threads,
                 const std::function<void(std::size_t)>& task);

}  // namespace msim::pipeline
