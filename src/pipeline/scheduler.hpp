// Stage scheduler: bounded thread-pooled fan-out over an indexed work list.
//
// Every pipeline stage is an array of independent, pure tasks (one per
// machine, one per (application, count), ...). The scheduler runs them on a
// fixed pool with an atomic work counter — no work stealing, no shared
// mutable state beyond the counter — so results land in caller-owned,
// per-index slots and stage output is bitwise independent of the thread
// count. The first task exception is captured and rethrown on the calling
// thread after the pool joins.
//
// Observability: when obs telemetry is active, every task runs inside an
// obs::Span named after the stage label, and each fan-out publishes
// `scheduler.<label>.tasks` / `scheduler.<label>.utilization` (busy time
// over workers x wall time) to the obs registry. With telemetry off no
// clocks are read and outputs are bitwise unchanged.
#pragma once

#include <cstddef>
#include <functional>

namespace msim::pipeline {

/// Number of workers actually used for `items` tasks: `threads`, clamped
/// to [1, items]. A `threads` of 0 means "default": the MSIM_THREADS
/// environment variable when set to a positive integer, else the hardware
/// concurrency — so CI and benches can pin worker counts without code
/// changes.
[[nodiscard]] unsigned effective_threads(unsigned threads, std::size_t items);

/// MSIM_THREADS as a worker count, or 0 when unset/invalid/zero.
[[nodiscard]] unsigned env_threads();

/// Run `task(0) ... task(items-1)` across a pool of `threads` workers
/// (0 = default, see effective_threads). Serial when one worker suffices.
/// Rethrows the first task exception after all workers finish. `label`
/// names the stage in telemetry spans and metrics (nullptr = "tasks").
void run_indexed(std::size_t items, unsigned threads,
                 const std::function<void(std::size_t)>& task,
                 const char* label = nullptr);

}  // namespace msim::pipeline
