// Stage scheduler: bounded thread-pooled fan-out over an indexed work list.
//
// Every pipeline stage is an array of independent, pure tasks (one per
// machine, one per (application, count), ...). The scheduler runs them on a
// fixed pool with an atomic work counter — no work stealing, no shared
// mutable state beyond the counter — so results land in caller-owned,
// per-index slots and stage output is bitwise independent of the thread
// count. The first task exception is captured and rethrown on the calling
// thread after the pool joins.
//
// Nesting: every executing worker (pool thread, the inline serial path,
// and StudyGraph pool workers) is registered through WorkerScope. A
// fan-out issued from inside a worker degrades to inline serial execution
// on that worker instead of spawning a second pool, so composed
// parallelism (a campaign inside a graph node inside a pool) never
// oversubscribes: the process runs at most `effective_threads` concurrent
// workers, observable via peak_workers().
//
// Observability: when obs telemetry is active, every task runs inside an
// obs::Span named after the stage label, and each fan-out records
// `scheduler.<label>.tasks` / `scheduler.<label>.utilization` (busy time
// over workers x wall time; a histogram, so overlapping fan-outs of the
// same stage accumulate instead of clobbering each other). With telemetry
// off no clocks are read and outputs are bitwise unchanged.
#pragma once

#include <cstddef>
#include <functional>

namespace msim::pipeline {

/// Number of workers actually used for `items` tasks: `threads`, clamped
/// to [1, items]. A `threads` of 0 means "default": the MSIM_THREADS
/// environment variable when set to a positive integer, else the hardware
/// concurrency — so CI and benches can pin worker counts without code
/// changes.
[[nodiscard]] unsigned effective_threads(unsigned threads, std::size_t items);

/// MSIM_THREADS as a worker count, or 0 when unset/invalid/zero.
[[nodiscard]] unsigned env_threads();

/// True on a thread currently executing scheduler work (a run_indexed
/// pool worker, the inline serial path, or a StudyGraph pool worker).
/// Fan-outs check this and run inline instead of spawning a nested pool.
[[nodiscard]] bool inside_scheduler_worker() noexcept;

/// High-water mark of concurrently registered workers since the last
/// reset_peak_workers(). Lets tests assert that a run never created more
/// concurrent workers than MSIM_THREADS / effective_threads allows.
[[nodiscard]] unsigned peak_workers() noexcept;
void reset_peak_workers() noexcept;

/// RAII worker registration: marks the current thread as a scheduler
/// worker (see inside_scheduler_worker) and maintains the concurrent /
/// peak worker counts. Nested scopes on one thread count once. Public so
/// every pool implementation (run_indexed, StudyGraph) shares one
/// accounting.
class WorkerScope {
 public:
  WorkerScope() noexcept;
  ~WorkerScope();
  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;

 private:
  bool counted_;
};

/// Record a completed fan-out in the obs registry:
/// `scheduler.<label>.tasks` counter and the
/// `scheduler.<label>.utilization` histogram. Shared by run_indexed and
/// the StudyGraph executor; call only while telemetry is collecting.
void publish_fanout_metrics(const char* label, std::size_t items,
                            unsigned workers, double busy_seconds,
                            double wall_seconds);

/// Record one task's wall time in the `scheduler.<label>.task.seconds`
/// histogram — the per-stage timing source for run records (see
/// obs/run_record.hpp). Shared by run_indexed and the StudyGraph
/// executor; call only while telemetry is collecting.
void record_task_seconds(const char* label, double seconds);

/// Run `task(0) ... task(items-1)` across a pool of `threads` workers
/// (0 = default, see effective_threads). Serial when one worker suffices
/// or when called from inside a scheduler worker (nested fan-outs do not
/// spawn nested pools). Rethrows the first task exception after all
/// workers finish. `label` names the stage in telemetry spans and metrics
/// (nullptr = "tasks").
void run_indexed(std::size_t items, unsigned threads,
                 const std::function<void(std::size_t)>& task,
                 const char* label = nullptr);

}  // namespace msim::pipeline
