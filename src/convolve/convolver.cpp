#include "convolve/convolver.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace msim::convolve {

namespace {

/// Memory rates the metric assigns to the three stride bins for one block.
struct BinRates {
  double unit = 0.0;
  double short_ = 0.0;
  double random = 0.0;
};

double geometric_mean(double a, double b) { return std::sqrt(a * b); }

/// Log-space blend: rate = normal^(1-w) * dep^w.
double blend(double normal, double dep, double weight) {
  if (weight <= 0.0) return normal;
  if (weight >= 1.0) return dep;
  return std::pow(normal, 1.0 - weight) * std::pow(dep, weight);
}

double map_short(double unit, double random, ShortStrideMapping mapping) {
  switch (mapping) {
    case ShortStrideMapping::GeometricMean:
      return geometric_mean(unit, random);
    case ShortStrideMapping::AsUnit:
      return unit;
    case ShortStrideMapping::AsRandom:
      return random;
  }
  MSIM_CHECK(false, "unknown short-stride mapping");
  return unit;
}

BinRates memory_rates(const trace::BlockSignature& block,
                      const probes::ProbeSet& probes,
                      PredictiveMetric metric,
                      const ConvolverOptions& options) {
  BinRates rates;
  switch (metric) {
    case PredictiveMetric::M4_Hpl:
      MSIM_CHECK(false, "metric #4 has no memory term");
      break;
    case PredictiveMetric::M5_HplStream:
      rates.unit = rates.short_ = rates.random = probes.stream_bw;
      break;
    case PredictiveMetric::M6_HplStreamGups:
      rates.unit = probes.stream_bw;
      rates.random = probes.gups_bw;
      break;
    case PredictiveMetric::M7_HplMaps:
    case PredictiveMetric::M8_HplMapsNet: {
      const std::uint64_t ws = block.working_set_estimate;
      rates.unit = probes.maps_unit.bandwidth_at(ws);
      rates.random = probes.maps_random.bandwidth_at(ws);
      break;
    }
    case PredictiveMetric::M9_HplMapsNetDep: {
      const std::uint64_t ws = block.working_set_estimate;
      // Blocks the static analyzer flagged as dependency-limited take the
      // ENHANCED MAPS rate; everything else uses the standard curves (the
      // paper's correction is a per-loop yes/no from binary analysis).
      const double weight = block.dependency_limited ? 1.0 : 0.0;
      rates.unit = blend(probes.maps_unit.bandwidth_at(ws),
                         probes.maps_unit_dep.bandwidth_at(ws), weight);
      rates.random = blend(probes.maps_random.bandwidth_at(ws),
                           probes.maps_random_dep.bandwidth_at(ws), weight);
      break;
    }
  }
  if (metric != PredictiveMetric::M5_HplStream) {
    rates.short_ = map_short(rates.unit, rates.random,
                             options.short_mapping);
  }
  MSIM_CHECK(rates.unit > 0.0 && rates.short_ > 0.0 && rates.random > 0.0,
             "memory rates must be positive");
  return rates;
}

}  // namespace

std::string to_string(PredictiveMetric metric) {
  switch (metric) {
    case PredictiveMetric::M4_Hpl:
      return "HPL";
    case PredictiveMetric::M5_HplStream:
      return "HPL+STREAM";
    case PredictiveMetric::M6_HplStreamGups:
      return "HPL+STREAM+GUPS";
    case PredictiveMetric::M7_HplMaps:
      return "HPL+MAPS";
    case PredictiveMetric::M8_HplMapsNet:
      return "HPL+MAPS+NET";
    case PredictiveMetric::M9_HplMapsNetDep:
      return "HPL+MAPS+NET+DEP";
  }
  return "?";
}

bool uses_maps(PredictiveMetric metric) {
  return metric == PredictiveMetric::M7_HplMaps ||
         metric == PredictiveMetric::M8_HplMapsNet ||
         metric == PredictiveMetric::M9_HplMapsNetDep;
}

bool uses_network(PredictiveMetric metric) {
  return metric == PredictiveMetric::M8_HplMapsNet ||
         metric == PredictiveMetric::M9_HplMapsNetDep;
}

double convolve_block(const trace::BlockSignature& block,
                      const probes::ProbeSet& probes, PredictiveMetric metric,
                      const ConvolverOptions& options) {
  MSIM_REQUIRE(probes.hpl_rmax > 0.0, "probe set lacks HPL");
  const double flop_time =
      static_cast<double>(block.flops) / probes.hpl_rmax;

  if (metric == PredictiveMetric::M4_Hpl) return flop_time;

  const BinRates rates = memory_rates(block, probes, metric, options);
  const double bytes = static_cast<double>(block.bytes());
  const double memory_time = bytes * block.unit_fraction / rates.unit +
                             bytes * block.short_fraction / rates.short_ +
                             bytes * block.random_fraction / rates.random;

  // The convolver's overlap assumption; the paper uses full overlap (Max).
  return cpusim::combine_overlap(flop_time, memory_time, options.overlap,
                                 1.0);
}

double convolve_comm(const trace::ApplicationSignature& sig,
                     const probes::ProbeSet& probes, PredictiveMetric metric,
                     const ConvolverOptions& options) {
  if (!uses_network(metric)) return 0.0;
  MSIM_REQUIRE(probes.net.bandwidth > 0.0, "probe set lacks NETBENCH");

  const double alpha = probes.net.latency_s;
  const double beta = 1.0 / probes.net.bandwidth;
  const double p = static_cast<double>(sig.nprocs);
  const double log_p = sig.nprocs > 1
                           ? std::ceil(std::log2(p))
                           : 0.0;

  double seconds = 0.0;
  for (const auto& phase : sig.comm) {
    for (const auto& event : phase.events) {
      const double bytes = static_cast<double>(event.bytes);
      double one = 0.0;
      switch (event.type) {
        case netsim::CommType::PointToPoint:
          one = alpha + bytes * beta;
          break;
        case netsim::CommType::AllReduce:
        case netsim::CommType::Broadcast:
          one = event.bytes <= options.assumed_eager_bytes
                    ? log_p * (alpha + bytes * beta)
                    : 2.0 * log_p * alpha +
                          2.0 * (p - 1.0) / std::max(p, 1.0) * bytes * beta;
          break;
        case netsim::CommType::AllToAll:
          one = (p - 1.0) * (alpha + bytes * beta);
          break;
        case netsim::CommType::Barrier:
          one = log_p * alpha;
          break;
      }
      seconds += one * static_cast<double>(event.count);
    }
  }
  return seconds;
}

double convolved_time(const trace::ApplicationSignature& sig,
                      const probes::ProbeSet& probes, PredictiveMetric metric,
                      const ConvolverOptions& options) {
  MSIM_REQUIRE(!sig.blocks.empty(), "signature has no blocks");
  double per_timestep = 0.0;
  for (const auto& block : sig.blocks) {
    per_timestep += convolve_block(block, probes, metric, options);
  }
  per_timestep += convolve_comm(sig, probes, metric, options);
  return per_timestep * static_cast<double>(sig.timesteps);
}

double predict_time(const trace::ApplicationSignature& sig,
                    const probes::ProbeSet& target_probes,
                    const probes::ProbeSet& base_probes,
                    double measured_base_seconds, PredictiveMetric metric,
                    const ConvolverOptions& options) {
  MSIM_REQUIRE(measured_base_seconds > 0.0,
               "measured base time must be positive");
  static obs::Counter& predictions =
      obs::Registry::instance().counter("convolve.predictions");
  predictions.add();
  obs::Span span("predict", "convolve");
  span.arg("app", sig.app)
      .arg("machine", target_probes.machine)
      .arg("metric", to_string(metric));
  const double target = convolved_time(sig, target_probes, metric, options);
  const double base = convolved_time(sig, base_probes, metric, options);
  MSIM_CHECK(base > 0.0, "convolved base time must be positive");
  return measured_base_seconds * target / base;
}

}  // namespace msim::convolve
