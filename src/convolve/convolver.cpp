#include "convolve/convolver.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

// The block sweep is a structure-of-arrays kernel: rates are gathered
// into flat per-block arrays, the elementwise time computation is a
// SIMD-hintable stride-1 loop, and only the final accumulation is
// ordered (summation order is part of the bitwise-output contract).
#if defined(MSIM_HAVE_OPENMP_SIMD)
#define MSIM_PRAGMA_SIMD _Pragma("omp simd")
#else
#define MSIM_PRAGMA_SIMD
#endif

namespace msim::convolve {

namespace {

/// Memory rates the metric assigns to the three stride bins for one block.
struct BinRates {
  double unit = 0.0;
  double short_ = 0.0;
  double random = 0.0;
};

double geometric_mean(double a, double b) { return std::sqrt(a * b); }

/// Log-space blend: rate = normal^(1-w) * dep^w.
double blend(double normal, double dep, double weight) {
  if (weight <= 0.0) return normal;
  if (weight >= 1.0) return dep;
  return std::pow(normal, 1.0 - weight) * std::pow(dep, weight);
}

double map_short(double unit, double random, ShortStrideMapping mapping) {
  switch (mapping) {
    case ShortStrideMapping::GeometricMean:
      return geometric_mean(unit, random);
    case ShortStrideMapping::AsUnit:
      return unit;
    case ShortStrideMapping::AsRandom:
      return random;
  }
  MSIM_CHECK(false, "unknown short-stride mapping");
  return unit;
}

/// The numeric fields one block contributes to its convolved time —
/// extracted identically from a row (BlockSignature) or an in-place
/// column view (BlockView).
struct BlockScalars {
  std::uint64_t flops = 0;
  std::uint64_t refs = 0;
  std::uint32_t element_bytes = 8;
  double unit_fraction = 0.0;
  double short_fraction = 0.0;
  double random_fraction = 0.0;
  std::uint64_t working_set_estimate = 0;
  bool dependency_limited = false;
};

BlockScalars scalars_of(const trace::BlockSignature& block) {
  return BlockScalars{block.flops,
                      block.refs,
                      block.element_bytes,
                      block.unit_fraction,
                      block.short_fraction,
                      block.random_fraction,
                      block.working_set_estimate,
                      block.dependency_limited};
}

BlockScalars scalars_of(const trace::BlockView& block) {
  return BlockScalars{block.flops(),
                      block.refs(),
                      block.element_bytes(),
                      block.unit_fraction(),
                      block.short_fraction(),
                      block.random_fraction(),
                      block.working_set_estimate(),
                      block.dependency_limited()};
}

BinRates memory_rates(const BlockScalars& block,
                      const probes::ProbeSet& probes,
                      PredictiveMetric metric,
                      const ConvolverOptions& options) {
  BinRates rates;
  switch (metric) {
    case PredictiveMetric::M4_Hpl:
      MSIM_CHECK(false, "metric #4 has no memory term");
      break;
    case PredictiveMetric::M5_HplStream:
      rates.unit = rates.short_ = rates.random = probes.stream_bw;
      break;
    case PredictiveMetric::M6_HplStreamGups:
      rates.unit = probes.stream_bw;
      rates.random = probes.gups_bw;
      break;
    case PredictiveMetric::M7_HplMaps:
    case PredictiveMetric::M8_HplMapsNet: {
      const std::uint64_t ws = block.working_set_estimate;
      rates.unit = probes.maps_unit.bandwidth_at(ws);
      rates.random = probes.maps_random.bandwidth_at(ws);
      break;
    }
    case PredictiveMetric::M9_HplMapsNetDep: {
      const std::uint64_t ws = block.working_set_estimate;
      // Blocks the static analyzer flagged as dependency-limited take the
      // ENHANCED MAPS rate; everything else uses the standard curves (the
      // paper's correction is a per-loop yes/no from binary analysis).
      const double weight = block.dependency_limited ? 1.0 : 0.0;
      rates.unit = blend(probes.maps_unit.bandwidth_at(ws),
                         probes.maps_unit_dep.bandwidth_at(ws), weight);
      rates.random = blend(probes.maps_random.bandwidth_at(ws),
                           probes.maps_random_dep.bandwidth_at(ws), weight);
      break;
    }
  }
  if (metric != PredictiveMetric::M5_HplStream) {
    rates.short_ = map_short(rates.unit, rates.random,
                             options.short_mapping);
  }
  MSIM_CHECK(rates.unit > 0.0 && rates.short_ > 0.0 && rates.random > 0.0,
             "memory rates must be positive");
  return rates;
}

double convolve_scalars(const BlockScalars& block,
                        const probes::ProbeSet& probes,
                        PredictiveMetric metric,
                        const ConvolverOptions& options) {
  MSIM_REQUIRE(probes.hpl_rmax > 0.0, "probe set lacks HPL");
  const double flop_time =
      static_cast<double>(block.flops) / probes.hpl_rmax;

  if (metric == PredictiveMetric::M4_Hpl) return flop_time;

  const BinRates rates = memory_rates(block, probes, metric, options);
  const double bytes =
      static_cast<double>(block.refs * block.element_bytes);
  const double memory_time = bytes * block.unit_fraction / rates.unit +
                             bytes * block.short_fraction / rates.short_ +
                             bytes * block.random_fraction / rates.random;

  // The convolver's overlap assumption; the paper uses full overlap (Max).
  return cpusim::combine_overlap(flop_time, memory_time, options.overlap,
                                 1.0);
}

// --- the structure-of-arrays sweep kernel ------------------------------

/// Position of a working-set size on a MAPS sampling grid: either clamped
/// at an end or inside a segment with an interpolation weight. Locating
/// once and evaluating several curves against the position reproduces
/// MapsCurve::bandwidth_at bitwise — same clamp tests, same binary
/// search, same interpolation expression — while sharing the search and
/// the x-side log2 computations across every curve on the grid.
struct GridPos {
  enum class Kind { Below, Above, Segment };
  Kind kind = Kind::Below;
  std::size_t lower = 0;  ///< lower segment index (Kind::Segment only)
  double t = 0.0;         ///< log-space interpolation weight
};

GridPos locate(const probes::MapsCurve& grid, std::uint64_t ws) {
  MSIM_REQUIRE(!grid.points.empty(), "MAPS curve has no points");
  MSIM_REQUIRE(ws > 0, "working set must be positive");
  const auto& pts = grid.points;
  if (ws <= pts.front().working_set_bytes) return GridPos{};
  if (ws >= pts.back().working_set_bytes) {
    return GridPos{GridPos::Kind::Above, 0, 0.0};
  }
  const auto upper = std::lower_bound(
      pts.begin(), pts.end(), ws,
      [](const probes::MapsPoint& point, std::uint64_t want) {
        return point.working_set_bytes < want;
      });
  const auto lower = upper - 1;
  const double x0 = std::log2(static_cast<double>(lower->working_set_bytes));
  const double x1 = std::log2(static_cast<double>(upper->working_set_bytes));
  const double x = std::log2(static_cast<double>(ws));
  return GridPos{GridPos::Kind::Segment,
                 static_cast<std::size_t>(lower - pts.begin()),
                 (x - x0) / (x1 - x0)};
}

double eval_at(const probes::MapsCurve& curve, const GridPos& pos) {
  switch (pos.kind) {
    case GridPos::Kind::Below:
      return curve.points.front().bandwidth;
    case GridPos::Kind::Above:
      return curve.points.back().bandwidth;
    case GridPos::Kind::Segment:
      break;
  }
  const double y0 = std::log2(curve.points[pos.lower].bandwidth);
  const double y1 = std::log2(curve.points[pos.lower + 1].bandwidth);
  return std::exp2(y0 + pos.t * (y1 - y0));
}

bool same_grid(const probes::MapsCurve& a, const probes::MapsCurve& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].working_set_bytes != b.points[i].working_set_bytes) {
      return false;
    }
  }
  return true;
}

/// Fill per-block bin-rate columns for the MAPS metrics. `normal` gets
/// the #7/#8 rates, `dep` the #9 rates (ENHANCED curves only for blocks
/// the analyzer flagged). Either may be null when not needed. When every
/// involved curve shares one sampling grid — true for real probe suites —
/// each block costs one grid search regardless of how many curves and
/// metrics consume it.
struct RateColumns {
  double* unit = nullptr;
  double* short_ = nullptr;
  double* random = nullptr;
};

void fill_maps_rates(const trace::BlockColumns& c,
                     const probes::ProbeSet& probes,
                     const ConvolverOptions& options,
                     const RateColumns& normal, const RateColumns& dep) {
  const bool shared =
      same_grid(probes.maps_unit, probes.maps_random) &&
      (dep.unit == nullptr ||
       (same_grid(probes.maps_unit, probes.maps_unit_dep) &&
        same_grid(probes.maps_unit, probes.maps_random_dep)));
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ws = c.working_set_estimate[i];
    const bool limited = c.dependency_limited[i] != 0;
    GridPos pos;
    if (shared) pos = locate(probes.maps_unit, ws);

    double unit_rate = 0.0;
    double random_rate = 0.0;
    if (normal.unit != nullptr || (dep.unit != nullptr && !limited)) {
      unit_rate = shared ? eval_at(probes.maps_unit, pos)
                         : probes.maps_unit.bandwidth_at(ws);
      random_rate = shared ? eval_at(probes.maps_random, pos)
                           : probes.maps_random.bandwidth_at(ws);
    }
    if (normal.unit != nullptr) {
      normal.unit[i] = unit_rate;
      normal.random[i] = random_rate;
      normal.short_[i] =
          map_short(unit_rate, random_rate, options.short_mapping);
      MSIM_CHECK(normal.unit[i] > 0.0 && normal.short_[i] > 0.0 &&
                     normal.random[i] > 0.0,
                 "memory rates must be positive");
    }
    if (dep.unit != nullptr) {
      double unit9 = unit_rate;
      double random9 = random_rate;
      if (limited) {
        unit9 = shared ? eval_at(probes.maps_unit_dep, pos)
                       : probes.maps_unit_dep.bandwidth_at(ws);
        random9 = shared ? eval_at(probes.maps_random_dep, pos)
                         : probes.maps_random_dep.bandwidth_at(ws);
      }
      dep.unit[i] = unit9;
      dep.random[i] = random9;
      dep.short_[i] = map_short(unit9, random9, options.short_mapping);
      MSIM_CHECK(dep.unit[i] > 0.0 && dep.short_[i] > 0.0 &&
                     dep.random[i] > 0.0,
                 "memory rates must be positive");
    }
  }
}

void fill_constant(double* dst, std::size_t n, double value) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = value;
}

/// Elementwise block-time kernel + ordered accumulation. The loop body is
/// the exact expression tree of convolve_scalars (flop time, byte count,
/// three-bin memory time, overlap combine), evaluated lane-parallel over
/// the columns; only the final sum runs in block order.
double sum_block_times(const trace::BlockColumns& c, double hpl_rmax,
                       const double* ru, const double* rs, const double* rr,
                       cpusim::OverlapPolicy policy, double* times) {
  const std::size_t n = c.size();
  const std::uint64_t* flops = c.flops.data();
  const std::uint64_t* refs = c.refs.data();
  const std::uint32_t* element_bytes = c.element_bytes.data();
  const double* uf = c.unit_fraction.data();
  const double* sf = c.short_fraction.data();
  const double* rf = c.random_fraction.data();

  switch (policy) {
    case cpusim::OverlapPolicy::Max:
      MSIM_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) {
        const double flop_time =
            static_cast<double>(flops[i]) / hpl_rmax;
        const double bytes =
            static_cast<double>(refs[i] * element_bytes[i]);
        const double memory_time = bytes * uf[i] / ru[i] +
                                   bytes * sf[i] / rs[i] +
                                   bytes * rf[i] / rr[i];
        times[i] = std::max(flop_time, memory_time);
      }
      break;
    case cpusim::OverlapPolicy::Sum:
      MSIM_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) {
        const double flop_time =
            static_cast<double>(flops[i]) / hpl_rmax;
        const double bytes =
            static_cast<double>(refs[i] * element_bytes[i]);
        const double memory_time = bytes * uf[i] / ru[i] +
                                   bytes * sf[i] / rs[i] +
                                   bytes * rf[i] / rr[i];
        times[i] = flop_time + memory_time;
      }
      break;
    case cpusim::OverlapPolicy::Partial:
      // The convolver always combines with hiding = 1.0 (see
      // convolve_scalars): longer + (1 - 1) * shorter.
      MSIM_PRAGMA_SIMD
      for (std::size_t i = 0; i < n; ++i) {
        const double flop_time =
            static_cast<double>(flops[i]) / hpl_rmax;
        const double bytes =
            static_cast<double>(refs[i] * element_bytes[i]);
        const double memory_time = bytes * uf[i] / ru[i] +
                                   bytes * sf[i] / rs[i] +
                                   bytes * rf[i] / rr[i];
        const double longer = std::max(flop_time, memory_time);
        const double shorter = std::min(flop_time, memory_time);
        times[i] = longer + (1.0 - 1.0) * shorter;
      }
      break;
  }

  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    MSIM_REQUIRE(times[i] >= 0.0, "times must be non-negative");
    acc += times[i];
  }
  return acc;
}

/// Call-local scratch: rate and time columns for up to kStackBlocks
/// blocks live on the stack; bigger signatures spill to one heap buffer.
constexpr std::size_t kStackBlocks = 32;
constexpr std::size_t kScratchColumns = 10;

struct Scratch {
  double stack[kStackBlocks * kScratchColumns];
  std::vector<double> heap;

  double* columns(std::size_t n) {
    if (n <= kStackBlocks) return stack;
    heap.resize(n * kScratchColumns);
    return heap.data();
  }
};

/// Per-timestep block sum for one metric, given prefilled rate columns
/// (null for the flop-only metric #4).
double metric_block_sum(const trace::ApplicationSignature& sig,
                        const probes::ProbeSet& probes,
                        PredictiveMetric metric,
                        const ConvolverOptions& options,
                        const RateColumns& rates, double* times) {
  const trace::BlockColumns& c = sig.blocks;
  if (metric == PredictiveMetric::M4_Hpl) {
    double acc = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      acc += static_cast<double>(c.flops[i]) / probes.hpl_rmax;
    }
    return acc;
  }
  return sum_block_times(c, probes.hpl_rmax, rates.unit, rates.short_,
                         rates.random, options.overlap, times);
}

}  // namespace

std::string to_string(PredictiveMetric metric) {
  switch (metric) {
    case PredictiveMetric::M4_Hpl:
      return "HPL";
    case PredictiveMetric::M5_HplStream:
      return "HPL+STREAM";
    case PredictiveMetric::M6_HplStreamGups:
      return "HPL+STREAM+GUPS";
    case PredictiveMetric::M7_HplMaps:
      return "HPL+MAPS";
    case PredictiveMetric::M8_HplMapsNet:
      return "HPL+MAPS+NET";
    case PredictiveMetric::M9_HplMapsNetDep:
      return "HPL+MAPS+NET+DEP";
  }
  return "?";
}

bool uses_maps(PredictiveMetric metric) {
  return metric == PredictiveMetric::M7_HplMaps ||
         metric == PredictiveMetric::M8_HplMapsNet ||
         metric == PredictiveMetric::M9_HplMapsNetDep;
}

bool uses_network(PredictiveMetric metric) {
  return metric == PredictiveMetric::M8_HplMapsNet ||
         metric == PredictiveMetric::M9_HplMapsNetDep;
}

double convolve_block(const trace::BlockSignature& block,
                      const probes::ProbeSet& probes, PredictiveMetric metric,
                      const ConvolverOptions& options) {
  return convolve_scalars(scalars_of(block), probes, metric, options);
}

double convolve_block(const trace::BlockView& block,
                      const probes::ProbeSet& probes, PredictiveMetric metric,
                      const ConvolverOptions& options) {
  return convolve_scalars(scalars_of(block), probes, metric, options);
}

double convolve_comm(const trace::ApplicationSignature& sig,
                     const probes::ProbeSet& probes, PredictiveMetric metric,
                     const ConvolverOptions& options) {
  if (!uses_network(metric)) return 0.0;
  MSIM_REQUIRE(probes.net.bandwidth > 0.0, "probe set lacks NETBENCH");

  const double alpha = probes.net.latency_s;
  const double beta = 1.0 / probes.net.bandwidth;
  const double p = static_cast<double>(sig.nprocs);
  const double log_p = sig.nprocs > 1
                           ? std::ceil(std::log2(p))
                           : 0.0;

  double seconds = 0.0;
  for (const auto& phase : sig.comm) {
    for (const auto& event : phase.events) {
      const double bytes = static_cast<double>(event.bytes);
      double one = 0.0;
      switch (event.type) {
        case netsim::CommType::PointToPoint:
          one = alpha + bytes * beta;
          break;
        case netsim::CommType::AllReduce:
        case netsim::CommType::Broadcast:
          one = event.bytes <= options.assumed_eager_bytes
                    ? log_p * (alpha + bytes * beta)
                    : 2.0 * log_p * alpha +
                          2.0 * (p - 1.0) / std::max(p, 1.0) * bytes * beta;
          break;
        case netsim::CommType::AllToAll:
          one = (p - 1.0) * (alpha + bytes * beta);
          break;
        case netsim::CommType::Barrier:
          one = log_p * alpha;
          break;
      }
      seconds += one * static_cast<double>(event.count);
    }
  }
  return seconds;
}

double convolved_time(const trace::ApplicationSignature& sig,
                      const probes::ProbeSet& probes, PredictiveMetric metric,
                      const ConvolverOptions& options) {
  MSIM_REQUIRE(!sig.blocks.empty(), "signature has no blocks");
  MSIM_REQUIRE(probes.hpl_rmax > 0.0, "probe set lacks HPL");
  const trace::BlockColumns& c = sig.blocks;
  const std::size_t n = c.size();

  Scratch scratch;
  double* buf = scratch.columns(n);
  RateColumns rates{buf, buf + n, buf + 2 * n};
  double* times = buf + 3 * n;

  switch (metric) {
    case PredictiveMetric::M4_Hpl:
      rates = RateColumns{};
      break;
    case PredictiveMetric::M5_HplStream:
      MSIM_CHECK(probes.stream_bw > 0.0, "memory rates must be positive");
      fill_constant(rates.unit, n, probes.stream_bw);
      fill_constant(rates.short_, n, probes.stream_bw);
      fill_constant(rates.random, n, probes.stream_bw);
      break;
    case PredictiveMetric::M6_HplStreamGups: {
      const double short_bw =
          map_short(probes.stream_bw, probes.gups_bw, options.short_mapping);
      MSIM_CHECK(probes.stream_bw > 0.0 && short_bw > 0.0 &&
                     probes.gups_bw > 0.0,
                 "memory rates must be positive");
      fill_constant(rates.unit, n, probes.stream_bw);
      fill_constant(rates.short_, n, short_bw);
      fill_constant(rates.random, n, probes.gups_bw);
      break;
    }
    case PredictiveMetric::M7_HplMaps:
    case PredictiveMetric::M8_HplMapsNet:
      fill_maps_rates(c, probes, options, rates, RateColumns{});
      break;
    case PredictiveMetric::M9_HplMapsNetDep:
      fill_maps_rates(c, probes, options, RateColumns{}, rates);
      break;
  }

  double per_timestep =
      metric_block_sum(sig, probes, metric, options, rates, times);
  per_timestep += convolve_comm(sig, probes, metric, options);
  return per_timestep * static_cast<double>(sig.timesteps);
}

std::vector<double> convolved_times(
    const trace::ApplicationSignature& sig, const probes::ProbeSet& probes,
    const std::vector<PredictiveMetric>& metrics,
    const ConvolverOptions& options) {
  MSIM_REQUIRE(!sig.blocks.empty(), "signature has no blocks");
  MSIM_REQUIRE(probes.hpl_rmax > 0.0, "probe set lacks HPL");
  const trace::BlockColumns& c = sig.blocks;
  const std::size_t n = c.size();

  bool need_maps = false;
  bool need_dep = false;
  for (const PredictiveMetric metric : metrics) {
    need_maps |= metric == PredictiveMetric::M7_HplMaps ||
                 metric == PredictiveMetric::M8_HplMapsNet;
    need_dep |= metric == PredictiveMetric::M9_HplMapsNetDep;
  }

  Scratch scratch;
  double* buf = scratch.columns(n);
  const RateColumns maps_rates{buf, buf + n, buf + 2 * n};
  const RateColumns dep_rates{buf + 3 * n, buf + 4 * n, buf + 5 * n};
  const RateColumns constant_rates{buf + 6 * n, buf + 7 * n, buf + 8 * n};
  double* times = buf + 9 * n;

  // One gather pass serves every MAPS metric in the sweep: #7 and #8 read
  // the very same columns, #9 shares each block's grid position.
  if (need_maps || need_dep) {
    fill_maps_rates(c, probes, options,
                    need_maps ? maps_rates : RateColumns{},
                    need_dep ? dep_rates : RateColumns{});
  }

  std::vector<double> results;
  results.reserve(metrics.size());
  for (const PredictiveMetric metric : metrics) {
    RateColumns rates;
    switch (metric) {
      case PredictiveMetric::M4_Hpl:
        break;
      case PredictiveMetric::M5_HplStream:
        MSIM_CHECK(probes.stream_bw > 0.0, "memory rates must be positive");
        rates = constant_rates;
        fill_constant(rates.unit, n, probes.stream_bw);
        fill_constant(rates.short_, n, probes.stream_bw);
        fill_constant(rates.random, n, probes.stream_bw);
        break;
      case PredictiveMetric::M6_HplStreamGups: {
        const double short_bw = map_short(probes.stream_bw, probes.gups_bw,
                                          options.short_mapping);
        MSIM_CHECK(probes.stream_bw > 0.0 && short_bw > 0.0 &&
                       probes.gups_bw > 0.0,
                   "memory rates must be positive");
        rates = constant_rates;
        fill_constant(rates.unit, n, probes.stream_bw);
        fill_constant(rates.short_, n, short_bw);
        fill_constant(rates.random, n, probes.gups_bw);
        break;
      }
      case PredictiveMetric::M7_HplMaps:
      case PredictiveMetric::M8_HplMapsNet:
        rates = maps_rates;
        break;
      case PredictiveMetric::M9_HplMapsNetDep:
        rates = dep_rates;
        break;
    }
    double per_timestep =
        metric_block_sum(sig, probes, metric, options, rates, times);
    per_timestep += convolve_comm(sig, probes, metric, options);
    results.push_back(per_timestep * static_cast<double>(sig.timesteps));
  }
  return results;
}

double predict_time(const trace::ApplicationSignature& sig,
                    const probes::ProbeSet& target_probes,
                    const probes::ProbeSet& base_probes,
                    double measured_base_seconds, PredictiveMetric metric,
                    const ConvolverOptions& options) {
  MSIM_REQUIRE(measured_base_seconds > 0.0,
               "measured base time must be positive");
  static obs::Counter& predictions =
      obs::Registry::instance().counter("convolve.predictions");
  predictions.add();
  obs::Span span("predict", "convolve");
  span.arg("app", sig.app)
      .arg("machine", target_probes.machine)
      .arg("metric", to_string(metric));
  const double target = convolved_time(sig, target_probes, metric, options);
  const double base = convolved_time(sig, base_probes, metric, options);
  MSIM_CHECK(base > 0.0, "convolved base time must be positive");
  return measured_base_seconds * target / base;
}

}  // namespace msim::convolve
