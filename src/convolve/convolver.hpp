// The convolver — the paper's primary contribution.
//
// "Operation counts, once determined by tracing, are divided by
// corresponding operation rates ... to yield an execution time for the
// current basic block per operation type. Execution time is subsequently
// predicted by summing the estimated execution time for all basic blocks
// and carefully taking into account the overlap of the different operation
// types." (paper, Section 3)
//
// The six predictive metrics differ only in which rates they read from the
// ProbeSet:
//   #4  flops at HPL Rmax; memory ignored
//   #5  + all memory at STREAM
//   #6  + stride-1 at STREAM, random at GUPS (short strides: geometric mean
//       of the two — the paper's 3-bin detector feeds 2-curve probes, see
//       DESIGN.md)
//   #7  memory rates from the MAPS curves at the block's traced working set
//   #8  + a network term from NETBENCH (latency/bandwidth convolved with
//       the MPIDTRACE event counts using standard collective algorithms)
//   #9  + ENHANCED MAPS dependency curves for blocks the static analyzer
//       flags, blended by branch density for the rest
//
// Wall-clock predictions are *ratio-normalized*: the convolved time on the
// target is scaled by measured-base-time / convolved-base-time. This is
// what makes Metric #4 exactly reproduce simple Metric #1 (the paper calls
// #4 "a sanity test for the predictive method") and is how relative
// performance prediction is used in procurement.
#pragma once

#include <string>
#include <vector>

#include "cpusim/overlap.hpp"
#include "probes/probe_set.hpp"
#include "trace/signature.hpp"

namespace msim::convolve {

/// The paper's predictive metrics (Table 3, #4-#9).
enum class PredictiveMetric {
  M4_Hpl,
  M5_HplStream,
  M6_HplStreamGups,
  M7_HplMaps,
  M8_HplMapsNet,
  M9_HplMapsNetDep,
};

[[nodiscard]] std::string to_string(PredictiveMetric metric);

/// True for metrics whose memory term reads MAPS curves (#7-#9).
[[nodiscard]] bool uses_maps(PredictiveMetric metric);
/// True for metrics with a network term (#8-#9).
[[nodiscard]] bool uses_network(PredictiveMetric metric);

/// How the detector's middle bin (short non-unit strides, 2-8 elements)
/// maps onto the two measured rate curves. The paper's probes have only
/// unit and random curves and the text does not say which the short bin
/// was charged to; GeometricMean is this library's documented default,
/// the other two are ablations (bench/ablation_design_choices).
enum class ShortStrideMapping {
  GeometricMean,
  AsUnit,
  AsRandom,
};

struct ConvolverOptions {
  /// How per-block flop and memory times combine (paper: overlap => Max).
  cpusim::OverlapPolicy overlap = cpusim::OverlapPolicy::Max;
  /// Rate assignment for the short-stride bin.
  ShortStrideMapping short_mapping = ShortStrideMapping::GeometricMean;
  /// Message size above which the convolver's collective formulas switch
  /// to long-message algorithms. The convolver cannot know the target's
  /// real eager threshold — this is its own fixed assumption.
  std::uint64_t assumed_eager_bytes = 16 * 1024;
};

/// Per-block convolved time (seconds, per timestep) on a target machine
/// described only by its ProbeSet.
[[nodiscard]] double convolve_block(const trace::BlockSignature& block,
                                    const probes::ProbeSet& probes,
                                    PredictiveMetric metric,
                                    const ConvolverOptions& options = {});

/// Same, for a block viewed in place inside an ApplicationSignature's
/// columns (no row materialization).
[[nodiscard]] double convolve_block(const trace::BlockView& block,
                                    const probes::ProbeSet& probes,
                                    PredictiveMetric metric,
                                    const ConvolverOptions& options = {});

/// Convolved communication time per timestep (only for #8/#9; 0 otherwise).
[[nodiscard]] double convolve_comm(const trace::ApplicationSignature& sig,
                                   const probes::ProbeSet& probes,
                                   PredictiveMetric metric,
                                   const ConvolverOptions& options = {});

/// Absolute convolved wall-clock for the full application (all timesteps).
/// Implemented as a structure-of-arrays kernel over the signature's block
/// columns; results are bitwise-identical to summing convolve_block over
/// every block (the parity suite pins this down).
[[nodiscard]] double convolved_time(const trace::ApplicationSignature& sig,
                                    const probes::ProbeSet& probes,
                                    PredictiveMetric metric,
                                    const ConvolverOptions& options = {});

/// Batched prediction sweep: convolved_time for every metric in one pass
/// over the block columns. MAPS grid lookups are located once per block
/// and shared across the metrics that read the same curves (#7/#8 are
/// identical; #9 reuses the grid position), so a full six-metric sweep
/// costs far fewer curve interpolations than six independent calls while
/// returning bitwise-identical values.
[[nodiscard]] std::vector<double> convolved_times(
    const trace::ApplicationSignature& sig, const probes::ProbeSet& probes,
    const std::vector<PredictiveMetric>& metrics,
    const ConvolverOptions& options = {});

/// Ratio-normalized prediction of the target's wall-clock:
///   T'(X) = T_measured(base) * convolved(X) / convolved(base).
[[nodiscard]] double predict_time(const trace::ApplicationSignature& sig,
                                  const probes::ProbeSet& target_probes,
                                  const probes::ProbeSet& base_probes,
                                  double measured_base_seconds,
                                  PredictiveMetric metric,
                                  const ConvolverOptions& options = {});

}  // namespace msim::convolve
