#include "cpusim/overlap.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace msim::cpusim {

double combine_overlap(double flop_time, double memory_time,
                       OverlapPolicy policy, double hiding) {
  MSIM_REQUIRE(flop_time >= 0.0 && memory_time >= 0.0,
               "times must be non-negative");
  MSIM_REQUIRE(hiding >= 0.0 && hiding <= 1.0, "hiding must be in [0, 1]");
  const double longer = std::max(flop_time, memory_time);
  const double shorter = std::min(flop_time, memory_time);
  switch (policy) {
    case OverlapPolicy::Max:
      return longer;
    case OverlapPolicy::Sum:
      return flop_time + memory_time;
    case OverlapPolicy::Partial:
      return longer + (1.0 - hiding) * shorter;
  }
  MSIM_CHECK(false, "unknown overlap policy");
  return 0.0;
}

}  // namespace msim::cpusim
