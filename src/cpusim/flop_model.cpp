#include "cpusim/flop_model.hpp"

#include "common/check.hpp"

namespace msim::cpusim {

double achieved_flop_rate(const machine::MachineConfig& machine,
                          const FlopWork& work) {
  MSIM_REQUIRE(work.ilp_efficiency > 0.0 && work.ilp_efficiency <= 1.0,
               "ilp_efficiency must be in (0, 1]");
  double rate = machine.peak_flops() * work.ilp_efficiency;
  if (work.serial_dependent) {
    // A serial FP chain exposes pipeline depth; machines that cannot
    // reorder around it (low latency_hiding) lose more.
    const double derate = machine.cpu.dependency_derate +
                          (1.0 - machine.cpu.dependency_derate) *
                              machine.cpu.latency_hiding * 0.5;
    rate *= derate;
  }
  MSIM_CHECK(rate > 0.0, "flop rate must be positive");
  return rate;
}

double flop_time(const machine::MachineConfig& machine, const FlopWork& work) {
  if (work.flops == 0) return 0.0;
  return static_cast<double>(work.flops) /
         achieved_flop_rate(machine, work);
}

}  // namespace msim::cpusim
