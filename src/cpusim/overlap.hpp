// Memory/compute overlap combination.
//
// The paper's convolver sums per-operation-type times "carefully taking into
// account the overlap of the different operation types". We expose the
// policy explicitly so the choice can be ablated (DESIGN.md section 6):
//  * Max     — perfect overlap, block time = max(flop, memory);
//  * Sum     — no overlap;
//  * Partial — machine-dependent: max + (1 - latency_hiding) * min, which is
//              what the ground-truth executor uses.
#pragma once

namespace msim::cpusim {

enum class OverlapPolicy {
  Max,
  Sum,
  Partial,
};

/// Combine a block's flop time and memory time under a policy.
/// `hiding` (in [0,1]) is used only by Partial.
[[nodiscard]] double combine_overlap(double flop_time, double memory_time,
                                     OverlapPolicy policy, double hiding);

}  // namespace msim::cpusim
