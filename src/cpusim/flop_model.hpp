// Floating-point execution-time model.
//
// Ground truth computes a block's achieved flop rate from the machine's peak
// and the block's instruction-level parallelism, further derated on
// dependency-serialized blocks. The convolver, by contrast, is only allowed
// to use HPL's Rmax for every block (paper, Section 3: "the floating point
// issue rate was assumed to be the per processor Rmax") — the gap between
// the two is a deliberate, realistic error source.
#pragma once

#include <cstdint>

#include "machine/machine_config.hpp"

namespace msim::cpusim {

/// Floating-point work of one basic-block execution.
struct FlopWork {
  std::uint64_t flops = 0;
  /// Fraction of peak a well-scheduled OOO core achieves on this block's
  /// instruction mix (ILP, FMA-friendliness), in (0, 1].
  double ilp_efficiency = 0.5;
  /// True when the block's FP operations form a serial dependence chain.
  bool serial_dependent = false;
};

/// Achieved flop rate (ops/s) of a block on a machine — ground truth.
[[nodiscard]] double achieved_flop_rate(const machine::MachineConfig& machine,
                                        const FlopWork& work);

/// Time to execute the block's FP work at the achieved rate.
[[nodiscard]] double flop_time(const machine::MachineConfig& machine,
                               const FlopWork& work);

}  // namespace msim::cpusim
