#include "memsim/tlb.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace msim::memsim {

Tlb::Tlb(const machine::Tlb& config)
    : entries_(config.entries), page_bytes_(config.page_bytes) {
  MSIM_REQUIRE(entries_ > 0, "TLB needs entries");
  MSIM_REQUIRE(page_bytes_ > 0, "TLB needs a page size");
}

bool Tlb::access(std::uint64_t address) {
  const std::uint64_t page = address / page_bytes_;
  const auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= entries_) {
    const std::uint64_t evicted = lru_.back();
    lru_.pop_back();
    map_.erase(evicted);
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  return false;
}

void Tlb::reset() {
  hits_ = 0;
  misses_ = 0;
  lru_.clear();
  map_.clear();
}

double Tlb::miss_rate() const {
  const std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(misses_) /
                          static_cast<double>(total);
}

double Tlb::expected_miss_rate(const machine::Tlb& config,
                               std::uint64_t working_set,
                               std::uint64_t stride_bytes) {
  MSIM_REQUIRE(working_set > 0, "working set must be positive");
  const double coverage =
      static_cast<double>(config.entries) * config.page_bytes;
  if (static_cast<double>(working_set) <= coverage) return 0.0;
  // Working set exceeds TLB reach. For strided walks, one miss per page
  // crossing; for random references (stride 0), every access misses with
  // probability 1 - coverage/ws.
  if (stride_bytes == 0) {
    return 1.0 - coverage / static_cast<double>(working_set);
  }
  const double refs_per_page =
      static_cast<double>(config.page_bytes) /
      static_cast<double>(std::min<std::uint64_t>(stride_bytes,
                                                  config.page_bytes));
  return 1.0 / std::max(1.0, refs_per_page);
}

}  // namespace msim::memsim
