#include "memsim/address_stream.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace msim::memsim {

AddressGenerator::AddressGenerator(StreamSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  MSIM_REQUIRE(!spec_.components.empty(), "stream spec needs components");
  MSIM_REQUIRE(spec_.working_set_bytes >= spec_.element_bytes,
               "working set smaller than one element");
  MSIM_REQUIRE(spec_.element_bytes > 0, "element size must be positive");
  cursors_.resize(spec_.components.size(), 0);
  weights_.reserve(spec_.components.size());
  for (const auto& component : spec_.components) {
    MSIM_REQUIRE(component.weight >= 0.0, "component weight must be >= 0");
    weights_.push_back(component.weight);
  }
}

TaggedAddress AddressGenerator::next_tagged() {
  const std::size_t idx = rng_.pick_weighted(weights_);
  const auto& component = spec_.components[idx];
  const std::uint64_t span = spec_.working_set_bytes;
  std::uint64_t offset;
  if (component.stride_bytes == 0) {
    // Random reference: uniform over aligned elements of the working set.
    const std::uint64_t slots = span / spec_.element_bytes;
    offset = rng_.uniform_u64(slots) * spec_.element_bytes;
  } else {
    offset = cursors_[idx];
    const std::int64_t stride = component.stride_bytes;
    std::int64_t next_cursor = static_cast<std::int64_t>(offset) + stride;
    const auto span_s = static_cast<std::int64_t>(span);
    // Wrap within [0, span): forward strides wrap to 0, backward to the end.
    if (next_cursor >= span_s) next_cursor -= span_s;
    if (next_cursor < 0) next_cursor += span_s;
    cursors_[idx] = static_cast<std::uint64_t>(next_cursor);
  }
  return TaggedAddress{.stream_id = static_cast<std::uint32_t>(idx),
                       .address = spec_.base_address + offset};
}

std::vector<std::uint64_t> AddressGenerator::generate(std::size_t n) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace msim::memsim
