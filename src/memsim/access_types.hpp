// Shared vocabulary for memory-access characterization.
//
// The paper's tracer "parses the address stream with a stride detector,
// determining what portion of memory references are stride-1, non-unit short
// strides (up to stride-8), and random stride" — these bins are the currency
// exchanged between the tracer, the probes, and the convolver.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace msim::memsim {

/// Stride bin of a memory reference stream.
enum class StrideClass : std::uint8_t {
  Unit,    ///< stride-1 in elements
  Short,   ///< non-unit stride up to the short-stride threshold (paper: 8)
  Random,  ///< no detectable stride
};

inline constexpr std::array<StrideClass, 3> kAllStrideClasses = {
    StrideClass::Unit, StrideClass::Short, StrideClass::Random};

[[nodiscard]] std::string to_string(StrideClass c);

/// Inner-loop schedulability of a basic block's memory references.
enum class DependencyClass : std::uint8_t {
  Independent,  ///< references are independent; the core can pipeline them
  Serial,       ///< loop-carried dependence serializes successive accesses
};

[[nodiscard]] std::string to_string(DependencyClass c);

/// How a stream of references exercises the memory system.
struct AccessProfile {
  StrideClass stride = StrideClass::Unit;
  DependencyClass dependency = DependencyClass::Independent;
  /// Fraction of loop iterations ending in a data-dependent branch, in
  /// [0, 1]; derates bandwidth on machines with expensive mispredicts.
  double branch_density = 0.0;
};

}  // namespace msim::memsim
