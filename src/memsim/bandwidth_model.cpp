#include "memsim/bandwidth_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace msim::memsim {

namespace {

/// For strided sweeps: fraction of references still served by a level of
/// capacity `size` when the working set is `ws` — 1 below capacity, falling
/// linearly to 0 at 2x capacity.
double sweep_retention(std::uint64_t ws, std::uint64_t size) {
  if (ws <= size) return 1.0;
  const double ratio = static_cast<double>(ws) / static_cast<double>(size);
  if (ratio >= 2.0) return 0.0;
  return 2.0 - ratio;
}

}  // namespace

std::vector<double> level_service_fractions(
    const machine::MachineConfig& machine, std::uint64_t working_set_bytes,
    StrideClass stride) {
  MSIM_REQUIRE(working_set_bytes > 0, "working set must be positive");
  const std::size_t depth = machine.caches.size();
  std::vector<double> fractions(depth + 1, 0.0);

  if (stride == StrideClass::Random) {
    // Probabilistic residency: each level holds what fits beyond the
    // coverage of the levels inside it.
    const double ws = static_cast<double>(working_set_bytes);
    double covered = 0.0;
    for (std::size_t i = 0; i < depth; ++i) {
      const double capacity =
          static_cast<double>(machine.caches[i].size_bytes);
      const double reach = std::min(capacity, ws);
      fractions[i] = std::max(0.0, reach - covered) / ws;
      covered = std::max(covered, reach);
    }
    fractions[depth] = std::max(0.0, ws - covered) / ws;
  } else {
    // Sweeping access: served by the innermost fitting level, with a linear
    // handover octave per level boundary.
    double remaining = 1.0;
    for (std::size_t i = 0; i < depth && remaining > 0.0; ++i) {
      const double keep =
          sweep_retention(working_set_bytes, machine.caches[i].size_bytes);
      fractions[i] = remaining * keep;
      remaining *= (1.0 - keep);
    }
    fractions[depth] = remaining;
  }

  // Normalize tiny FP residue so downstream weighting is exact.
  double total = 0.0;
  for (double f : fractions) total += f;
  MSIM_CHECK(total > 0.0, "service fractions vanished");
  for (double& f : fractions) f /= total;
  return fractions;
}

double level_bandwidth(const machine::MachineConfig& machine,
                       std::size_t level, const AccessProfile& profile) {
  MSIM_REQUIRE(level <= machine.caches.size(), "level out of range");
  double unit_bw, random_bw;
  if (level < machine.caches.size()) {
    unit_bw = machine.caches[level].unit_stride_bw;
    random_bw = machine.caches[level].random_bw;
  } else {
    unit_bw = machine.memory.unit_stride_bw;
    random_bw = machine.memory.random_bw;
  }

  double bandwidth = 0.0;
  switch (profile.stride) {
    case StrideClass::Unit:
      bandwidth = unit_bw;
      break;
    case StrideClass::Short:
      // One element used per partially-utilized line but the walk is still
      // prefetchable: between the two extremes, geometric mean.
      bandwidth = std::sqrt(unit_bw * random_bw);
      break;
    case StrideClass::Random:
      bandwidth = random_bw;
      break;
  }

  if (profile.dependency == DependencyClass::Serial) {
    bandwidth *= machine.cpu.dependency_derate;
  }
  const double branch_factor =
      1.0 - profile.branch_density * (1.0 - machine.cpu.branch_derate);
  bandwidth *= branch_factor;
  MSIM_CHECK(bandwidth > 0.0, "derated bandwidth must stay positive");
  return bandwidth;
}

double sustained_bandwidth(const machine::MachineConfig& machine,
                           std::uint64_t working_set_bytes,
                           const AccessProfile& profile) {
  const auto fractions =
      level_service_fractions(machine, working_set_bytes, profile.stride);
  // Harmonic combination: total time per byte is the service-weighted sum
  // of per-level times per byte.
  double time_per_byte = 0.0;
  for (std::size_t level = 0; level < fractions.size(); ++level) {
    if (fractions[level] <= 0.0) continue;
    time_per_byte += fractions[level] / level_bandwidth(machine, level,
                                                        profile);
  }
  MSIM_CHECK(time_per_byte > 0.0, "time per byte must be positive");
  return 1.0 / time_per_byte;
}

double average_latency(const machine::MachineConfig& machine,
                       std::uint64_t working_set_bytes, StrideClass stride) {
  const auto fractions =
      level_service_fractions(machine, working_set_bytes, stride);
  double latency = 0.0;
  for (std::size_t level = 0; level < fractions.size(); ++level) {
    const double level_latency = level < machine.caches.size()
                                     ? machine.caches[level].latency_s
                                     : machine.memory.latency_s;
    latency += fractions[level] * level_latency;
  }
  return latency;
}

}  // namespace msim::memsim
