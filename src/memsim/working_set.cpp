#include "memsim/working_set.hpp"

#include "common/check.hpp"

namespace msim::memsim {

WorkingSetTracker::WorkingSetTracker(std::uint32_t granularity_bytes)
    : granularity_(granularity_bytes) {
  MSIM_REQUIRE(granularity_bytes != 0 &&
                   (granularity_bytes & (granularity_bytes - 1)) == 0,
               "granularity must be a power of two");
}

void WorkingSetTracker::touch(std::uint64_t address) {
  lines_.insert(address / granularity_);
}

void WorkingSetTracker::touch_all(const std::vector<std::uint64_t>& addresses) {
  for (std::uint64_t address : addresses) touch(address);
}

std::uint64_t WorkingSetTracker::bytes() const {
  return static_cast<std::uint64_t>(lines_.size()) * granularity_;
}

void WorkingSetTracker::reset() { lines_.clear(); }

}  // namespace msim::memsim
