#include "memsim/access_types.hpp"

namespace msim::memsim {

std::string to_string(StrideClass c) {
  switch (c) {
    case StrideClass::Unit:
      return "unit";
    case StrideClass::Short:
      return "short";
    case StrideClass::Random:
      return "random";
  }
  return "?";
}

std::string to_string(DependencyClass c) {
  switch (c) {
    case DependencyClass::Independent:
      return "independent";
    case DependencyClass::Serial:
      return "serial";
  }
  return "?";
}

}  // namespace msim::memsim
