#include "memsim/hierarchy_sim.hpp"

#include "common/check.hpp"
#include "memsim/bandwidth_model.hpp"
#include "memsim/tlb.hpp"

namespace msim::memsim {

std::vector<double> TraceDrivenResult::service_fractions() const {
  std::vector<double> fractions(hierarchy.hits_per_level.size(), 0.0);
  if (hierarchy.total == 0) return fractions;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    fractions[i] = static_cast<double>(hierarchy.hits_per_level[i]) /
                   static_cast<double>(hierarchy.total);
  }
  return fractions;
}

TraceDrivenResult simulate_stream(const machine::MachineConfig& machine,
                                  const StreamSpec& spec,
                                  const TraceDrivenOptions& options) {
  MSIM_REQUIRE(options.measured_refs > 0, "need references to measure");

  AddressGenerator generator(spec, options.seed);
  CacheHierarchy hierarchy(machine);
  Tlb tlb(machine.tlb);

  for (std::uint64_t i = 0; i < options.warmup_refs; ++i) {
    const std::uint64_t address = generator.next();
    (void)hierarchy.access(address);
    (void)tlb.access(address);
  }
  tlb.reset();

  TraceDrivenResult result;
  result.hierarchy.hits_per_level.assign(machine.caches.size() + 1, 0);
  for (std::uint64_t i = 0; i < options.measured_refs; ++i) {
    const std::uint64_t address = generator.next();
    ++result.hierarchy.hits_per_level[hierarchy.access(address)];
    ++result.hierarchy.total;
    if (options.include_tlb && !tlb.access(address)) ++result.tlb_misses;
  }

  // Price the measured distribution with the per-level bandwidths for the
  // requested access flavor, plus TLB penalties.
  double seconds = 0.0;
  for (std::size_t level = 0; level <= machine.caches.size(); ++level) {
    const double refs =
        static_cast<double>(result.hierarchy.hits_per_level[level]);
    if (refs == 0.0) continue;
    const double bytes = refs * spec.element_bytes;
    seconds += bytes / level_bandwidth(machine, level, options.profile);
  }
  seconds += static_cast<double>(result.tlb_misses) *
             machine.tlb.miss_penalty_s;

  result.seconds = seconds;
  const double total_bytes =
      static_cast<double>(result.hierarchy.total) * spec.element_bytes;
  MSIM_CHECK(seconds > 0.0, "trace-driven time must be positive");
  result.bandwidth = total_bytes / seconds;
  return result;
}

}  // namespace msim::memsim
