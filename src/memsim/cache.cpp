#include "memsim/cache.hpp"

#include "common/check.hpp"

namespace msim::memsim {

Cache::Cache(const machine::CacheLevel& config)
    : line_bytes_(config.line_bytes),
      sets_(config.size_bytes /
            (static_cast<std::uint64_t>(config.line_bytes) *
             config.associativity)),
      ways_(config.associativity) {
  MSIM_REQUIRE(sets_ > 0, "cache has zero sets");
  lines_.resize(sets_ * ways_);
}

bool Cache::access(std::uint64_t address) {
  ++clock_;
  ++stats_.accesses;
  const std::uint64_t line = address / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  const std::uint64_t tag = line / sets_;

  Way* begin = &lines_[set * ways_];
  Way* victim = begin;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = begin[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid slot
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return false;
}

void Cache::reset() {
  for (auto& way : lines_) way = Way{};
  clock_ = 0;
  stats_ = CacheStats{};
}

double HierarchyStats::fraction_at(std::size_t level) const {
  MSIM_REQUIRE(level < hits_per_level.size(), "level out of range");
  if (total == 0) return 0.0;
  return static_cast<double>(hits_per_level[level]) /
         static_cast<double>(total);
}

CacheHierarchy::CacheHierarchy(const machine::MachineConfig& machine) {
  MSIM_REQUIRE(!machine.caches.empty(), "machine has no caches");
  levels_.reserve(machine.caches.size());
  for (const auto& level : machine.caches) levels_.emplace_back(level);
}

std::size_t CacheHierarchy::access(std::uint64_t address) {
  std::size_t served_by = levels_.size();  // main memory by default
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    // Probe every level so inclusion is maintained: a hit at level i still
    // allocates (refreshes) in the outer levels through their own access.
    if (levels_[i].access(address) && served_by == levels_.size()) {
      served_by = i;
    }
  }
  return served_by;
}

HierarchyStats CacheHierarchy::run(
    const std::vector<std::uint64_t>& addresses) {
  HierarchyStats stats;
  stats.hits_per_level.assign(levels_.size() + 1, 0);
  for (std::uint64_t address : addresses) {
    ++stats.hits_per_level[access(address)];
    ++stats.total;
  }
  return stats;
}

void CacheHierarchy::reset() {
  for (auto& level : levels_) level.reset();
}

const Cache& CacheHierarchy::level(std::size_t i) const {
  MSIM_REQUIRE(i < levels_.size(), "cache level out of range");
  return levels_[i];
}

}  // namespace msim::memsim
