// Trace-driven hierarchy simulation.
//
// The analytic bandwidth surface (bandwidth_model) is fast enough to
// integrate over whole applications, but it is a model; this module is the
// reference implementation it is validated against. It drives a concrete
// address stream through the set-associative cache hierarchy and the TLB,
// measures where each reference is served, and prices the stream with the
// per-level bandwidths — the slow-but-honest path.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_config.hpp"
#include "memsim/access_types.hpp"
#include "memsim/address_stream.hpp"
#include "memsim/cache.hpp"

namespace msim::memsim {

/// Result of a trace-driven stream measurement.
struct TraceDrivenResult {
  HierarchyStats hierarchy;            ///< per-level service counts
  std::uint64_t tlb_misses = 0;
  double seconds = 0.0;                ///< modeled time for the stream
  double bandwidth = 0.0;              ///< bytes moved / seconds

  /// Fraction of references served by each level (last = memory).
  [[nodiscard]] std::vector<double> service_fractions() const;
};

struct TraceDrivenOptions {
  std::uint64_t warmup_refs = 1u << 14;  ///< fill caches before measuring
  std::uint64_t measured_refs = 1u << 17;
  std::uint64_t seed = 0x7ea5e;
  /// Access flavor used when pricing each level (dependency/branching).
  AccessProfile profile{};
  bool include_tlb = true;
};

/// Drive `spec` through `machine`'s caches and TLB and measure it.
[[nodiscard]] TraceDrivenResult simulate_stream(
    const machine::MachineConfig& machine, const StreamSpec& spec,
    const TraceDrivenOptions& options = {});

}  // namespace msim::memsim
