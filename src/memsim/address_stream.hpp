// Synthetic address-stream generation.
//
// Application basic blocks describe their memory behaviour *generatively* —
// as a mix of strided and random reference patterns over a working set. The
// tracer never reads that spec: it asks the generator for a concrete stream
// of addresses and infers the pattern with the stride detector, exactly like
// binary instrumentation observing a real application. The same generators
// drive the cache simulator for the MAPS probes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace msim::memsim {

/// One component of a reference-pattern mix.
struct PatternComponent {
  /// Stride in *bytes* between successive references; 0 means random over
  /// the working set.
  std::int64_t stride_bytes = 8;
  /// Relative weight of this component in the interleaved stream.
  double weight = 1.0;
};

/// Generative description of a block's reference stream.
struct StreamSpec {
  std::uint64_t base_address = 1ull << 32;  ///< arbitrary VA region start
  std::uint64_t working_set_bytes = 1ull << 20;
  std::uint32_t element_bytes = 8;  ///< size of each reference
  std::vector<PatternComponent> components;
};

/// One generated reference, tagged with the id of the pattern component
/// that issued it — the analog of the program counter a real memory tracer
/// records with each reference.
struct TaggedAddress {
  std::uint32_t stream_id = 0;
  std::uint64_t address = 0;
};

/// Produces a deterministic address stream from a StreamSpec. Components
/// are interleaved in weight proportion using the supplied RNG, while each
/// strided component walks its own cursor (wrapping within the working set).
class AddressGenerator {
 public:
  AddressGenerator(StreamSpec spec, std::uint64_t seed);

  /// Next reference with its issuing-stream tag.
  [[nodiscard]] TaggedAddress next_tagged();

  /// Next reference address.
  [[nodiscard]] std::uint64_t next() { return next_tagged().address; }

  /// Generate a batch of n addresses (convenience for samplers).
  [[nodiscard]] std::vector<std::uint64_t> generate(std::size_t n);

  [[nodiscard]] const StreamSpec& spec() const { return spec_; }

 private:
  StreamSpec spec_;
  Rng rng_;
  std::vector<std::uint64_t> cursors_;  ///< per-component offsets
  std::vector<double> weights_;
};

}  // namespace msim::memsim
