// Set-associative cache model with true-LRU replacement, and a multi-level
// hierarchy built from a MachineConfig. Used by the tracer (to measure which
// level a block's working set lives in) and by the MAPS probe's
// trace-driven validation path. Loads and stores are treated identically —
// the study's bandwidth curves do not distinguish them.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_config.hpp"

namespace msim::memsim {

/// Per-cache access counters.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;

  [[nodiscard]] std::uint64_t misses() const { return accesses - hits; }
  [[nodiscard]] double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

/// One set-associative cache level.
class Cache {
 public:
  explicit Cache(const machine::CacheLevel& config);

  /// Access a byte address; returns true on hit. Misses allocate.
  bool access(std::uint64_t address);

  /// Drop all contents and counters.
  void reset();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::size_t num_sets() const { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;  ///< logical clock for LRU
    bool valid = false;
  };

  std::uint32_t line_bytes_;
  std::size_t sets_;
  std::uint32_t ways_;
  std::vector<Way> lines_;  ///< sets_ * ways_, row-major by set
  std::uint64_t clock_ = 0;
  CacheStats stats_;
};

/// Result of pushing a stream through the full hierarchy.
struct HierarchyStats {
  /// hits_per_level[i] = hits in cache level i; the final slot counts
  /// references served by main memory.
  std::vector<std::uint64_t> hits_per_level;
  std::uint64_t total = 0;

  /// Fraction of references served at or above the given level.
  [[nodiscard]] double fraction_at(std::size_t level) const;
};

/// Inclusive multi-level hierarchy: an access probes L1, then L2, ... and on
/// a full miss allocates in every level.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const machine::MachineConfig& machine);

  /// Access one address; returns the level index that served it
  /// (levels().size() means main memory).
  std::size_t access(std::uint64_t address);

  /// Run a whole stream and summarize.
  HierarchyStats run(const std::vector<std::uint64_t>& addresses);

  void reset();

  [[nodiscard]] std::size_t depth() const { return levels_.size(); }
  [[nodiscard]] const Cache& level(std::size_t i) const;

 private:
  std::vector<Cache> levels_;
};

}  // namespace msim::memsim
