// Working-set measurement over an observed address stream.
//
// The tracer cannot read a block's generative spec, so it estimates the
// working set the way a real memory tracer does: by counting unique cache
// lines touched. The count is exact over the sampled window, which makes it
// an *underestimate* of the true working set when sampling — a realistic
// tracer artifact.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace msim::memsim {

class WorkingSetTracker {
 public:
  /// granularity_bytes is the line size used for uniquing (power of two).
  explicit WorkingSetTracker(std::uint32_t granularity_bytes = 64);

  void touch(std::uint64_t address);
  void touch_all(const std::vector<std::uint64_t>& addresses);

  /// Unique lines touched so far.
  [[nodiscard]] std::uint64_t unique_lines() const { return lines_.size(); }

  /// Estimated working set in bytes (unique lines x granularity).
  [[nodiscard]] std::uint64_t bytes() const;

  void reset();

 private:
  std::uint32_t granularity_;
  std::unordered_set<std::uint64_t> lines_;
};

}  // namespace msim::memsim
