// Analytic memory-bandwidth surface of a machine model.
//
// This is the machine's "true" memory response: sustained bandwidth as a
// function of working-set size, stride class, and inner-loop dependency and
// branch structure. The MAPS probe samples this surface pointwise (that is
// what MAPS does on real hardware); STREAM and GUPS sample single points of
// it (large working set, unit/random stride); the detailed simulator
// integrates over it and then applies ground-truth-only effects (TLB,
// contention, system efficiency) on top.
//
// Level-service model:
//  * random access over a working set W: each level of capacity C serves the
//    fraction of references that hit the part of W probabilistically
//    resident in it ((min(C,W) - inner coverage) / W);
//  * strided sweeps are served by the innermost level whose capacity holds
//    W, with a linear transition over [C, 2C] to model partial reuse and
//    prefetch effects (real MAPS curves fall over roughly an octave, cf.
//    the paper's Figure 1).
//
// Stride classes map to level bandwidths as: Unit -> unit_stride_bw;
// Random -> random_bw; Short -> geometric mean of the two (one element used
// per partially-utilized line, still prefetchable).
//
// Dependency and branch structure derate bandwidth multiplicatively by the
// processor's dependency_derate / branch_derate — this is the effect the
// paper's ENHANCED MAPS measures and Metric #9 exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_config.hpp"
#include "memsim/access_types.hpp"

namespace msim::memsim {

/// Fraction of references served by each hierarchy level (last slot = main
/// memory) for a given working set and stride class. Sums to 1.
[[nodiscard]] std::vector<double> level_service_fractions(
    const machine::MachineConfig& machine, std::uint64_t working_set_bytes,
    StrideClass stride);

/// Bandwidth of one hierarchy level under the given access profile
/// (level == caches.size() selects main memory).
[[nodiscard]] double level_bandwidth(const machine::MachineConfig& machine,
                                     std::size_t level,
                                     const AccessProfile& profile);

/// Sustained bandwidth (bytes/s) for a stream over the given working set.
[[nodiscard]] double sustained_bandwidth(const machine::MachineConfig& machine,
                                         std::uint64_t working_set_bytes,
                                         const AccessProfile& profile);

/// Average per-reference memory latency exposure (seconds) for the stream;
/// used by the ground-truth executor for latency-bound serial chains.
[[nodiscard]] double average_latency(const machine::MachineConfig& machine,
                                     std::uint64_t working_set_bytes,
                                     StrideClass stride);

}  // namespace msim::memsim
