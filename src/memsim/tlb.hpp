// Fully-associative LRU TLB model.
//
// TLB behaviour is one of the ground-truth-only effects: no probe in the
// study measures it, so its cost is part of the irreducible prediction error
// (see DESIGN.md section 5).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "machine/machine_config.hpp"

namespace msim::memsim {

class Tlb {
 public:
  explicit Tlb(const machine::Tlb& config);

  /// Translate an address; returns true on TLB hit.
  bool access(std::uint64_t address);

  void reset();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_rate() const;

  /// Analytic expected miss rate for a reference pattern: given a working
  /// set and stride class, how often does a reference leave the page
  /// coverage of the TLB? Used by the detailed simulator, which cannot
  /// afford per-reference simulation at application scale.
  [[nodiscard]] static double expected_miss_rate(const machine::Tlb& config,
                                                 std::uint64_t working_set,
                                                 std::uint64_t stride_bytes);

 private:
  std::uint32_t entries_;
  std::uint32_t page_bytes_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<std::uint64_t> lru_;  ///< front = most recent page
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
};

}  // namespace msim::memsim
