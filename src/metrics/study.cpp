#include "metrics/study.hpp"

#include <cmath>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "metrics/simple.hpp"
#include "probes/synthetic.hpp"
#include "stats/summary.hpp"

namespace msim::metrics {

double Prediction::abs_error_pct() const { return std::abs(signed_error_pct); }

Study Study::build(const StudyOptions& options) {
  return build(machine::targets(),
               machine::find(machine::base_system_name()),
               workload::ti05_suite(), options);
}

Study Study::build(std::vector<machine::MachineConfig> targets,
                   machine::MachineConfig base_machine,
                   std::vector<workload::TestCase> suite,
                   const StudyOptions& options) {
  MSIM_REQUIRE(!targets.empty(), "study needs target machines");
  MSIM_REQUIRE(!suite.empty(), "study needs test cases");

  Study study;
  study.base_ = base_machine.name;
  study.suite_ = std::move(suite);
  study.options_ = options;

  std::vector<machine::MachineConfig> machines = std::move(targets);
  for (const auto& machine : machines) {
    MSIM_REQUIRE(machine.name != study.base_,
                 "base machine must not also be a target");
    study.target_names_.push_back(machine.name);
  }
  machines.push_back(std::move(base_machine));

  // 1. Ground truth (the "real runs").
  study.observations_ =
      simulate::run_campaign(machines, study.suite_, options.executor);

  // 2. Probe every machine.
  for (const auto& machine : machines) {
    study.probes_.emplace(machine.name, probes::run_probe_suite(machine));
  }

  // 3. Trace every (application, count) on the base system.
  for (const auto& test_case : study.suite_) {
    for (int nprocs : test_case.cpu_counts) {
      const workload::AppModel app = test_case.build(nprocs);
      study.signatures_.emplace(
          std::make_pair(test_case.name, nprocs),
          trace::trace_application(app, study.base_, options.tracer));
    }
  }
  return study;
}

const probes::ProbeSet& Study::probe_set(const std::string& machine) const {
  const auto it = probes_.find(machine);
  MSIM_REQUIRE(it != probes_.end(), "no probe set for " + machine);
  return it->second;
}

const trace::ApplicationSignature& Study::signature(const std::string& app,
                                                    int nprocs) const {
  const auto it = signatures_.find(std::make_pair(app, nprocs));
  MSIM_REQUIRE(it != signatures_.end(),
               "no signature for " + app + "@" + std::to_string(nprocs));
  return it->second;
}

const BalancedRating& Study::balanced_equal() const {
  if (!balanced_equal_) {
    std::vector<probes::ProbeSet> sets;
    for (const auto& [name, set] : probes_) {
      (void)name;
      sets.push_back(set);
    }
    balanced_equal_ = std::make_unique<BalancedRating>(
        sets, std::array<double, kBalancedCategories>{1.0, 1.0, 1.0});
  }
  return *balanced_equal_;
}

const BalancedRating& Study::balanced_fitted() const {
  if (!balanced_fitted_) {
    std::vector<probes::ProbeSet> sets;
    for (const auto& [name, set] : probes_) {
      (void)name;
      sets.push_back(set);
    }
    std::vector<SpeedObservation> speeds;
    for (const auto& test_case : suite_) {
      for (int nprocs : test_case.cpu_counts) {
        const double base_time =
            observations_.at(test_case.name, nprocs, base_);
        for (const auto& target : target_names_) {
          speeds.push_back(SpeedObservation{
              .machine = target,
              .speed_vs_base =
                  base_time / observations_.at(test_case.name, nprocs,
                                               target)});
        }
      }
    }
    const auto weights = fit_balanced_weights(sets, base_, speeds);
    balanced_fitted_ = std::make_unique<BalancedRating>(sets, weights);
  }
  return *balanced_fitted_;
}

double Study::predict(Metric metric, const std::string& app, int nprocs,
                      const std::string& machine) const {
  const double base_time = observations_.at(app, nprocs, base_);
  switch (kind(metric)) {
    case MetricKind::Simple: {
      SimpleMetric simple = SimpleMetric::Hpl;
      if (metric == Metric::S2_Stream) simple = SimpleMetric::Stream;
      if (metric == Metric::S3_Gups) simple = SimpleMetric::Gups;
      return predict_simple(base_time, probe_set(base_), probe_set(machine),
                            simple);
    }
    case MetricKind::Predictive: {
      const auto predictive = predictive_of(metric);
      MSIM_CHECK(predictive.has_value(), "predictive metric expected");
      return convolve::predict_time(signature(app, nprocs),
                                    probe_set(machine), probe_set(base_),
                                    base_time, *predictive,
                                    options_.convolver);
    }
    case MetricKind::Composite: {
      const BalancedRating& rating = metric == Metric::BalancedEqual
                                         ? balanced_equal()
                                         : balanced_fitted();
      return rating.predict(base_time, base_, machine);
    }
  }
  MSIM_CHECK(false, "unknown metric kind");
  return 0.0;
}

std::vector<Prediction> Study::evaluate(
    const std::vector<Metric>& metrics) const {
  std::vector<Prediction> predictions;
  for (Metric metric : metrics) {
    for (const auto& test_case : suite_) {
      for (int nprocs : test_case.cpu_counts) {
        for (const auto& target : target_names_) {
          const double actual =
              observations_.at(test_case.name, nprocs, target);
          const double predicted =
              predict(metric, test_case.name, nprocs, target);
          predictions.push_back(Prediction{
              .metric = metric,
              .app = test_case.name,
              .nprocs = nprocs,
              .machine = target,
              .predicted_seconds = predicted,
              .actual_seconds = actual,
              .signed_error_pct =
                  stats::signed_percent_error(predicted, actual)});
        }
      }
    }
  }
  return predictions;
}

ErrorSummary Study::summarize(const std::vector<Prediction>& predictions) {
  MSIM_REQUIRE(!predictions.empty(), "cannot summarize zero predictions");
  std::vector<double> abs_errors;
  abs_errors.reserve(predictions.size());
  for (const auto& prediction : predictions) {
    abs_errors.push_back(prediction.abs_error_pct());
  }
  return ErrorSummary{
      .mean_abs_error_pct = stats::mean(abs_errors),
      .stddev_abs_error_pct = stats::sample_stddev(abs_errors),
      .count = abs_errors.size()};
}

std::vector<Prediction> Study::slice_metric(
    const std::vector<Prediction>& predictions, Metric metric) {
  std::vector<Prediction> out;
  for (const auto& prediction : predictions) {
    if (prediction.metric == metric) out.push_back(prediction);
  }
  return out;
}

std::vector<Prediction> Study::slice_machine(
    const std::vector<Prediction>& predictions, const std::string& machine) {
  std::vector<Prediction> out;
  for (const auto& prediction : predictions) {
    if (prediction.machine == machine) out.push_back(prediction);
  }
  return out;
}

std::vector<Prediction> Study::slice_app(
    const std::vector<Prediction>& predictions, const std::string& app,
    int nprocs) {
  std::vector<Prediction> out;
  for (const auto& prediction : predictions) {
    if (prediction.app == app &&
        (nprocs == 0 || prediction.nprocs == nprocs)) {
      out.push_back(prediction);
    }
  }
  return out;
}

}  // namespace msim::metrics
