#include "metrics/study.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "metrics/simple.hpp"
#include "obs/run_record.hpp"
// Sanctioned upward call: Study::build delegates to the staged pipeline
// so one code path owns caching and scheduling (see DESIGN.md layering).
#include "pipeline/study_builder.hpp"  // msim-lint: allow(layer.back-edge)
#include "probes/synthetic.hpp"
#include "stats/summary.hpp"

namespace msim::metrics {

double Prediction::abs_error_pct() const { return std::abs(signed_error_pct); }

// The two build() overloads are forwarding shims: all stage execution
// (parallel fan-out, artifact caching) lives in pipeline::StudyBuilder.
// This is the one sanctioned upward call in the include layering — see
// DESIGN.md section 3.
Study Study::build(const StudyOptions& options) {
  return pipeline::StudyBuilder{}.options(options).build();
}

Study Study::build(std::vector<machine::MachineConfig> targets,
                   machine::MachineConfig base_machine,
                   std::vector<workload::TestCase> suite,
                   const StudyOptions& options) {
  return pipeline::StudyBuilder{}
      .targets(std::move(targets))
      .base(std::move(base_machine))
      .suite(std::move(suite))
      .options(options)
      .build();
}

Study Study::assemble(StudyParts parts) {
  MSIM_REQUIRE(!parts.target_names.empty(), "study needs target machines");
  MSIM_REQUIRE(!parts.suite.empty(), "study needs test cases");
  MSIM_REQUIRE(!parts.base.empty(), "study needs a base machine");

  Study study;
  study.target_names_ = std::move(parts.target_names);
  study.base_ = std::move(parts.base);
  study.suite_ = std::move(parts.suite);
  study.options_ = std::move(parts.options);
  study.observations_ = std::move(parts.observations);
  study.probes_ = std::move(parts.probes);
  study.signatures_ = std::move(parts.signatures);

  for (const auto& target : study.target_names_) {
    MSIM_REQUIRE(target != study.base_,
                 "base machine must not also be a target");
    MSIM_REQUIRE(study.probes_.count(target) == 1,
                 "missing probe set for target " + target);
  }
  MSIM_REQUIRE(study.probes_.count(study.base_) == 1,
               "missing probe set for base " + study.base_);
  for (const auto& test_case : study.suite_) {
    for (int nprocs : test_case.cpu_counts) {
      MSIM_REQUIRE(
          study.signatures_.count({test_case.name, nprocs}) == 1,
          "missing signature for " + test_case.name + "@" +
              std::to_string(nprocs));
    }
  }
  return study;
}

const probes::ProbeSet& Study::probe_set(const std::string& machine) const {
  const auto it = probes_.find(machine);
  MSIM_REQUIRE(it != probes_.end(), "no probe set for " + machine);
  return it->second;
}

const trace::ApplicationSignature& Study::signature(const std::string& app,
                                                    int nprocs) const {
  const auto it = signatures_.find(std::make_pair(app, nprocs));
  MSIM_REQUIRE(it != signatures_.end(),
               "no signature for " + app + "@" + std::to_string(nprocs));
  return it->second;
}

std::vector<probes::ProbeSet> Study::sorted_probe_sets() const {
  // Explicitly name-sorted: the balanced ratings must be identical no
  // matter what container holds the probe sets or how it iterates.
  std::vector<std::string> names;
  names.reserve(probes_.size());
  for (const auto& [name, set] : probes_) {
    (void)set;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  std::vector<probes::ProbeSet> sets;
  sets.reserve(names.size());
  for (const auto& name : names) sets.push_back(probes_.at(name));
  return sets;
}

const BalancedRating& Study::balanced_equal() const {
  std::call_once(lazy_->equal_once, [this] {
    lazy_->equal = std::make_unique<BalancedRating>(
        sorted_probe_sets(),
        std::array<double, kBalancedCategories>{1.0, 1.0, 1.0});
  });
  return *lazy_->equal;
}

const BalancedRating& Study::balanced_fitted() const {
  std::call_once(lazy_->fitted_once, [this] {
    const std::vector<probes::ProbeSet> sets = sorted_probe_sets();
    std::vector<SpeedObservation> speeds;
    for (const auto& test_case : suite_) {
      for (int nprocs : test_case.cpu_counts) {
        const double base_time =
            observations_.at(test_case.name, nprocs, base_);
        for (const auto& target : target_names_) {
          speeds.push_back(SpeedObservation{
              .machine = target,
              .speed_vs_base =
                  base_time / observations_.at(test_case.name, nprocs,
                                               target)});
        }
      }
    }
    const auto weights = fit_balanced_weights(sets, base_, speeds);
    lazy_->fitted = std::make_unique<BalancedRating>(sets, weights);
  });
  return *lazy_->fitted;
}

double Study::predict(Metric metric, const std::string& app, int nprocs,
                      const std::string& machine) const {
  const double base_time = observations_.at(app, nprocs, base_);
  switch (kind(metric)) {
    case MetricKind::Simple: {
      SimpleMetric simple = SimpleMetric::Hpl;
      if (metric == Metric::S2_Stream) simple = SimpleMetric::Stream;
      if (metric == Metric::S3_Gups) simple = SimpleMetric::Gups;
      return predict_simple(base_time, probe_set(base_), probe_set(machine),
                            simple);
    }
    case MetricKind::Predictive: {
      const auto predictive = predictive_of(metric);
      MSIM_CHECK(predictive.has_value(), "predictive metric expected");
      return convolve::predict_time(signature(app, nprocs),
                                    probe_set(machine), probe_set(base_),
                                    base_time, *predictive,
                                    options_.convolver);
    }
    case MetricKind::Composite: {
      const BalancedRating& rating = metric == Metric::BalancedEqual
                                         ? balanced_equal()
                                         : balanced_fitted();
      return rating.predict(base_time, base_, machine);
    }
  }
  MSIM_CHECK(false, "unknown metric kind");
  return 0.0;
}

std::vector<Prediction> Study::evaluate(
    const std::vector<Metric>& metrics) const {
  std::vector<Prediction> predictions;
  for (Metric metric : metrics) {
    for (const auto& test_case : suite_) {
      for (int nprocs : test_case.cpu_counts) {
        for (const auto& target : target_names_) {
          const double actual =
              observations_.at(test_case.name, nprocs, target);
          const double predicted =
              predict(metric, test_case.name, nprocs, target);
          predictions.push_back(Prediction{
              .metric = metric,
              .app = test_case.name,
              .nprocs = nprocs,
              .machine = target,
              .predicted_seconds = predicted,
              .actual_seconds = actual,
              .signed_error_pct =
                  stats::signed_percent_error(predicted, actual)});
        }
      }
    }
  }

  // While a run record is enabled, publish per-metric error summaries so
  // the ledger carries the Table-4 numbers alongside the timings. Every
  // bench evaluates the same assembled study, so replace-all semantics
  // (the last evaluate wins) are correct; benches need no per-bench code.
  if (obs::run_record_enabled() && !predictions.empty()) {
    std::vector<obs::ErrorSummaryRecord> summaries;
    for (Metric metric : metrics) {
      std::vector<double> abs_errors;
      for (const auto& prediction : predictions) {
        if (prediction.metric == metric) {
          abs_errors.push_back(prediction.abs_error_pct());
        }
      }
      if (abs_errors.empty()) continue;
      summaries.push_back(obs::ErrorSummaryRecord{
          .metric = row_label(metric),
          .count = abs_errors.size(),
          .mean_abs_pct = stats::mean(abs_errors),
          .median_abs_pct = stats::median(abs_errors),
          .max_abs_pct = stats::max(abs_errors)});
    }
    obs::record_error_summaries(std::move(summaries));
  }
  return predictions;
}

ErrorSummary Study::summarize(const std::vector<Prediction>& predictions) {
  MSIM_REQUIRE(!predictions.empty(), "cannot summarize zero predictions");
  std::vector<double> abs_errors;
  abs_errors.reserve(predictions.size());
  for (const auto& prediction : predictions) {
    abs_errors.push_back(prediction.abs_error_pct());
  }
  return ErrorSummary{
      .mean_abs_error_pct = stats::mean(abs_errors),
      .stddev_abs_error_pct = stats::sample_stddev(abs_errors),
      .count = abs_errors.size()};
}

std::vector<Prediction> Study::slice_metric(
    const std::vector<Prediction>& predictions, Metric metric) {
  std::vector<Prediction> out;
  for (const auto& prediction : predictions) {
    if (prediction.metric == metric) out.push_back(prediction);
  }
  return out;
}

std::vector<Prediction> Study::slice_machine(
    const std::vector<Prediction>& predictions, const std::string& machine) {
  std::vector<Prediction> out;
  for (const auto& prediction : predictions) {
    if (prediction.machine == machine) out.push_back(prediction);
  }
  return out;
}

std::vector<Prediction> Study::slice_app(
    const std::vector<Prediction>& predictions, const std::string& app,
    int nprocs) {
  std::vector<Prediction> out;
  for (const auto& prediction : predictions) {
    if (prediction.app == app &&
        (nprocs == 0 || prediction.nprocs == nprocs)) {
      out.push_back(prediction);
    }
  }
  return out;
}

}  // namespace msim::metrics
