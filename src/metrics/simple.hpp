// Simple metrics #1-#3 (paper Equation 1).
//
// "The performance for a specific application is assumed to be faster or
// slower according to the ratio of the simple benchmark results for system X
// and the base system X0." The paper's R is written as if time-like; all
// three simple benchmarks report *rates* (higher is faster), so the
// prediction inverts the ratio: T'(X,Y) = T(X0,Y) * R(X0) / R(X).
#pragma once

#include <string>

#include "probes/probe_set.hpp"

namespace msim::metrics {

enum class SimpleMetric {
  Hpl,
  Stream,
  Gups,
};

[[nodiscard]] std::string to_string(SimpleMetric metric);

/// The benchmark rate Equation 1 consumes for this metric.
[[nodiscard]] double simple_rate(const probes::ProbeSet& probes,
                                 SimpleMetric metric);

/// Equation 1 for rate-valued benchmarks.
[[nodiscard]] double eq1_predict(double measured_base_seconds,
                                 double base_rate, double target_rate);

/// Convenience: predict app time on a target from its probe sets.
[[nodiscard]] double predict_simple(double measured_base_seconds,
                                    const probes::ProbeSet& base,
                                    const probes::ProbeSet& target,
                                    SimpleMetric metric);

}  // namespace msim::metrics
