#include "metrics/multiworld.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
// Sanctioned upward call, like study.cpp: worlds fan out through the
// cached study graph rather than re-deriving it per world.
#include "pipeline/study_graph.hpp"  // msim-lint: allow(layer.back-edge)
#include "stats/summary.hpp"

namespace msim::metrics {

MultiWorldResult run_multiworld(std::size_t worlds,
                                std::uint64_t first_salt,
                                const std::vector<Metric>& metric_list,
                                const StudyOptions& base_options) {
  MSIM_REQUIRE(worlds >= 1, "need at least one world");
  MSIM_REQUIRE(!metric_list.empty(), "need at least one metric");

  MultiWorldResult result;
  std::map<Metric, std::vector<double>> errors;

  struct ClaimCounter {
    std::string description;
    std::size_t holds = 0;
  };
  std::vector<ClaimCounter> claims = {
      {"HPL is the worst metric", 0},
      {"GUPS beats STREAM", 0},
      {"the best traced metric beats every simple metric", 0},
      {"balanced ratings do not beat GUPS", 0},
      {"the dependency term helps: #9 <= #7 and #9 <= #8", 0},
      {"#6 or #9 is the most accurate metric (paper Sec. 6)", 0},
  };

  // All worlds build as one stage graph on one pool: the probe and trace
  // nodes are salt-independent, so every world past the first dedups onto
  // the first world's nodes and only the ground-truth campaigns (the part
  // the salt actually perturbs) fan out.
  pipeline::StudyGraph graph;
  graph.threads(base_options.build_threads)
      .cache(base_options.cache_artifacts)
      .cache_dir(base_options.cache_dir)
      .cache_max_bytes(base_options.cache_max_bytes);
  std::vector<std::size_t> handles;
  for (std::size_t world = 0; world < worlds; ++world) {
    StudyOptions options = base_options;
    options.executor.noise_salt = first_salt + world;
    handles.push_back(graph.add_study(pipeline::paper_spec(options)));
  }
  graph.build_all();

  for (std::size_t world = 0; world < worlds; ++world) {
    const std::uint64_t salt = first_salt + world;
    result.salts.push_back(salt);

    const Study study = graph.take_study(handles[world]);
    const auto predictions = study.evaluate(metric_list);

    std::map<Metric, double> world_error;
    for (Metric metric : metric_list) {
      const double error =
          Study::summarize(Study::slice_metric(predictions, metric))
              .mean_abs_error_pct;
      errors[metric].push_back(error);
      world_error[metric] = error;
    }

    auto get = [&world_error](Metric metric) {
      const auto it = world_error.find(metric);
      MSIM_CHECK(it != world_error.end(), "metric missing from world");
      return it->second;
    };

    // Claim 1: HPL worst.
    bool worst = true;
    for (const auto& [metric, error] : world_error) {
      if (metric != Metric::S1_Hpl && metric != Metric::P4_Hpl &&
          error > get(Metric::S1_Hpl)) {
        worst = false;
      }
    }
    if (worst) ++claims[0].holds;

    // Claim 2: GUPS < STREAM.
    if (get(Metric::S3_Gups) < get(Metric::S2_Stream)) ++claims[1].holds;

    // Claim 3: the best traced metric beats every simple metric.
    const double best_simple =
        std::min({get(Metric::S1_Hpl), get(Metric::S2_Stream),
                  get(Metric::S3_Gups)});
    const double best_traced =
        std::min({get(Metric::P6_HplStreamGups), get(Metric::P7_HplMaps),
                  get(Metric::P8_HplMapsNet),
                  get(Metric::P9_HplMapsNetDep)});
    if (best_traced < best_simple) ++claims[2].holds;

    // Claim 4: composites don't beat GUPS.
    if (world_error.count(Metric::BalancedEqual) != 0 &&
        get(Metric::BalancedEqual) >= get(Metric::S3_Gups) &&
        get(Metric::BalancedFitted) >= get(Metric::S3_Gups) * 0.9) {
      ++claims[3].holds;
    }

    // Claim 5: the dependency term never hurts the MAPS family.
    if (get(Metric::P9_HplMapsNetDep) <= get(Metric::P7_HplMaps) + 0.01 &&
        get(Metric::P9_HplMapsNetDep) <=
            get(Metric::P8_HplMapsNet) + 0.01) {
      ++claims[4].holds;
    }

    // Claim 6: the overall winner is one of the paper's two consistency
    // picks, #6 or #9 ("it seems that Metrics #6 and #9 provided the most
    // consistent representation of the application test cases").
    bool traced_pick_wins = true;
    const double pick = std::min(get(Metric::P6_HplStreamGups),
                                 get(Metric::P9_HplMapsNetDep));
    for (const auto& [metric, error] : world_error) {
      if (error < pick - 0.01) traced_pick_wins = false;
    }
    if (traced_pick_wins) ++claims[5].holds;
  }

  for (Metric metric : metric_list) {
    WorldDistribution distribution;
    distribution.metric = metric;
    distribution.per_world_error = errors[metric];
    distribution.mean = stats::mean(distribution.per_world_error);
    distribution.stddev =
        stats::sample_stddev(distribution.per_world_error);
    distribution.min = stats::min(distribution.per_world_error);
    distribution.max = stats::max(distribution.per_world_error);
    result.distributions.push_back(std::move(distribution));
  }
  for (const auto& counter : claims) {
    result.claims.push_back(OrderingClaim{.description = counter.description,
                                          .holds_in = counter.holds,
                                          .worlds = worlds});
  }
  return result;
}

}  // namespace msim::metrics
