#include "metrics/ranking.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "stats/correlation.hpp"

namespace msim::metrics {

RankingQuality ranking_quality(const Study& study, Metric metric) {
  RankingQuality quality;
  quality.metric = metric;

  double spearman_sum = 0.0;
  double kendall_sum = 0.0;
  double regret_sum = 0.0;
  std::size_t top_picks = 0;
  std::size_t configurations = 0;

  for (const auto& test_case : study.suite()) {
    for (int nprocs : test_case.cpu_counts) {
      std::vector<double> predicted, actual;
      for (const auto& machine : study.target_names()) {
        predicted.push_back(
            study.predict(metric, test_case.name, nprocs, machine));
        actual.push_back(
            study.observations().at(test_case.name, nprocs, machine));
      }
      spearman_sum += stats::spearman(predicted, actual);
      kendall_sum += stats::kendall_tau(predicted, actual);

      const std::size_t pick = static_cast<std::size_t>(
          std::min_element(predicted.begin(), predicted.end()) -
          predicted.begin());
      const std::size_t best = static_cast<std::size_t>(
          std::min_element(actual.begin(), actual.end()) - actual.begin());
      if (pick == best) ++top_picks;
      regret_sum += actual[pick] / actual[best] - 1.0;
      ++configurations;
    }
  }

  MSIM_CHECK(configurations > 0, "study has no configurations");
  quality.mean_spearman = spearman_sum / static_cast<double>(configurations);
  quality.mean_kendall = kendall_sum / static_cast<double>(configurations);
  quality.top_pick_accuracy =
      static_cast<double>(top_picks) / static_cast<double>(configurations);
  quality.mean_pick_regret =
      regret_sum / static_cast<double>(configurations);
  quality.configurations = configurations;
  return quality;
}

std::vector<RankingQuality> ranking_qualities(
    const Study& study, const std::vector<Metric>& metrics) {
  std::vector<RankingQuality> qualities;
  qualities.reserve(metrics.size());
  for (Metric metric : metrics) {
    qualities.push_back(ranking_quality(study, metric));
  }
  return qualities;
}

}  // namespace msim::metrics
