// Multi-world robustness analysis.
//
// The ground truth contains deliberate unmodeled variation (run-to-run
// noise and per-(machine, application) compiler affinity), seeded by a
// single `noise_salt`. One salt is one "world" — one realization of
// everything the 2004 study could not control. A reproduction whose
// conclusions held in only one world would be an artifact of that world;
// this module re-runs the full study across many salts and reports, for
// each metric, the distribution of its overall error and how often each of
// the paper's ordering claims holds.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/metric_set.hpp"
#include "metrics/study.hpp"

namespace msim::metrics {

/// Error distribution of one metric across worlds.
struct WorldDistribution {
  Metric metric{};
  std::vector<double> per_world_error;  ///< mean |err| %, one per world
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One of the paper's ordering claims, with its holding rate.
struct OrderingClaim {
  std::string description;
  std::size_t holds_in = 0;   ///< number of worlds where the claim holds
  std::size_t worlds = 0;
};

/// Full multi-world analysis result.
struct MultiWorldResult {
  std::vector<std::uint64_t> salts;
  std::vector<WorldDistribution> distributions;  ///< one per metric
  std::vector<OrderingClaim> claims;
};

/// Run the paper study in `worlds` consecutive salt worlds (starting at
/// `first_salt`) and analyze every metric plus the paper's five ordering
/// claims. Deterministic; ~2 s per world. `base_options` seeds every
/// world's StudyOptions (its executor.noise_salt is overwritten per
/// world); pass cache_artifacts = true to reuse the salt-independent probe
/// and trace artifacts across all worlds.
[[nodiscard]] MultiWorldResult run_multiworld(
    std::size_t worlds = 16, std::uint64_t first_salt = 0,
    const std::vector<Metric>& metrics = all_metrics(),
    const StudyOptions& base_options = {});

}  // namespace msim::metrics
