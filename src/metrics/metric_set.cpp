#include "metrics/metric_set.hpp"

#include "common/check.hpp"

namespace msim::metrics {

MetricKind kind(Metric metric) {
  switch (metric) {
    case Metric::S1_Hpl:
    case Metric::S2_Stream:
    case Metric::S3_Gups:
      return MetricKind::Simple;
    case Metric::P4_Hpl:
    case Metric::P5_HplStream:
    case Metric::P6_HplStreamGups:
    case Metric::P7_HplMaps:
    case Metric::P8_HplMapsNet:
    case Metric::P9_HplMapsNetDep:
      return MetricKind::Predictive;
    case Metric::BalancedEqual:
    case Metric::BalancedFitted:
      return MetricKind::Composite;
  }
  MSIM_CHECK(false, "unknown metric");
  return MetricKind::Simple;
}

std::string row_label(Metric metric) {
  switch (metric) {
    case Metric::S1_Hpl:
      return "1-S";
    case Metric::S2_Stream:
      return "2-S";
    case Metric::S3_Gups:
      return "3-S";
    case Metric::P4_Hpl:
      return "4-P";
    case Metric::P5_HplStream:
      return "5-P";
    case Metric::P6_HplStreamGups:
      return "6-P";
    case Metric::P7_HplMaps:
      return "7-P";
    case Metric::P8_HplMapsNet:
      return "8-P";
    case Metric::P9_HplMapsNetDep:
      return "9-P";
    case Metric::BalancedEqual:
      return "B-E";
    case Metric::BalancedFitted:
      return "B-F";
  }
  return "?";
}

std::string description(Metric metric) {
  switch (metric) {
    case Metric::S1_Hpl:
      return "HPL";
    case Metric::S2_Stream:
      return "STREAM";
    case Metric::S3_Gups:
      return "GUPS";
    case Metric::BalancedEqual:
      return "Balanced (equal weights)";
    case Metric::BalancedFitted:
      return "Balanced (fitted weights)";
    default: {
      const auto predictive = predictive_of(metric);
      MSIM_CHECK(predictive.has_value(), "metric without description");
      return convolve::to_string(*predictive);
    }
  }
}

std::vector<Metric> paper_metrics() {
  return {Metric::S1_Hpl,          Metric::S2_Stream,
          Metric::S3_Gups,         Metric::P4_Hpl,
          Metric::P5_HplStream,    Metric::P6_HplStreamGups,
          Metric::P7_HplMaps,      Metric::P8_HplMapsNet,
          Metric::P9_HplMapsNetDep};
}

std::vector<Metric> all_metrics() {
  auto metrics = paper_metrics();
  metrics.push_back(Metric::BalancedEqual);
  metrics.push_back(Metric::BalancedFitted);
  return metrics;
}

std::optional<convolve::PredictiveMetric> predictive_of(Metric metric) {
  switch (metric) {
    case Metric::P4_Hpl:
      return convolve::PredictiveMetric::M4_Hpl;
    case Metric::P5_HplStream:
      return convolve::PredictiveMetric::M5_HplStream;
    case Metric::P6_HplStreamGups:
      return convolve::PredictiveMetric::M6_HplStreamGups;
    case Metric::P7_HplMaps:
      return convolve::PredictiveMetric::M7_HplMaps;
    case Metric::P8_HplMapsNet:
      return convolve::PredictiveMetric::M8_HplMapsNet;
    case Metric::P9_HplMapsNetDep:
      return convolve::PredictiveMetric::M9_HplMapsNetDep;
    default:
      return std::nullopt;
  }
}

}  // namespace msim::metrics
