#include "metrics/balanced_rating.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "stats/regression.hpp"

namespace msim::metrics {

std::array<double, kBalancedCategories> category_rates(
    const probes::ProbeSet& probes) {
  MSIM_REQUIRE(probes.net.allreduce_small_s > 0.0,
               "probe set lacks the all_reduce measurement");
  return {probes.hpl_rmax, probes.stream_bw,
          1.0 / probes.net.allreduce_small_s};
}

namespace {

std::map<std::string, std::array<double, kBalancedCategories>>
normalize_categories(const std::vector<probes::ProbeSet>& probe_sets) {
  MSIM_REQUIRE(!probe_sets.empty(), "need at least one probe set");
  std::array<double, kBalancedCategories> best{};
  std::map<std::string, std::array<double, kBalancedCategories>> raw;
  for (const auto& set : probe_sets) {
    const auto rates = category_rates(set);
    MSIM_REQUIRE(raw.emplace(set.machine, rates).second,
                 "duplicate machine in probe sets: " + set.machine);
    for (std::size_t c = 0; c < kBalancedCategories; ++c) {
      best[c] = std::max(best[c], rates[c]);
    }
  }
  for (auto& [machine, rates] : raw) {
    (void)machine;
    for (std::size_t c = 0; c < kBalancedCategories; ++c) {
      MSIM_CHECK(best[c] > 0.0, "category best must be positive");
      rates[c] /= best[c];
    }
  }
  return raw;
}

}  // namespace

BalancedRating::BalancedRating(
    const std::vector<probes::ProbeSet>& probe_sets,
    std::array<double, kBalancedCategories> weights)
    : weights_(weights), normalized_(normalize_categories(probe_sets)) {
  double total = 0.0;
  for (double w : weights_) {
    MSIM_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  MSIM_REQUIRE(total > 0.0, "weights must not all be zero");
  for (double& w : weights_) w /= total;
}

double BalancedRating::score(const std::string& machine) const {
  const auto it = normalized_.find(machine);
  MSIM_REQUIRE(it != normalized_.end(),
               "machine not in comparison set: " + machine);
  double composite = 0.0;
  for (std::size_t c = 0; c < kBalancedCategories; ++c) {
    composite += weights_[c] * it->second[c];
  }
  MSIM_CHECK(composite > 0.0, "composite score must be positive");
  return composite;
}

double BalancedRating::predict(double measured_base_seconds,
                               const std::string& base_machine,
                               const std::string& target_machine) const {
  MSIM_REQUIRE(measured_base_seconds > 0.0, "base time must be positive");
  return measured_base_seconds * score(base_machine) /
         score(target_machine);
}

std::array<double, kBalancedCategories> fit_balanced_weights(
    const std::vector<probes::ProbeSet>& probe_sets,
    const std::string& base_machine,
    const std::vector<SpeedObservation>& observations) {
  MSIM_REQUIRE(!observations.empty(), "need observations to fit");
  const auto normalized = normalize_categories(probe_sets);
  const auto base_it = normalized.find(base_machine);
  MSIM_REQUIRE(base_it != normalized.end(),
               "base machine not in probe sets: " + base_machine);

  stats::Matrix design(observations.size(), kBalancedCategories);
  std::vector<double> rhs(observations.size(), 0.0);
  for (std::size_t r = 0; r < observations.size(); ++r) {
    const auto& obs = observations[r];
    MSIM_REQUIRE(obs.speed_vs_base > 0.0, "speed must be positive");
    const auto it = normalized.find(obs.machine);
    MSIM_REQUIRE(it != normalized.end(),
                 "machine not in probe sets: " + obs.machine);
    for (std::size_t c = 0; c < kBalancedCategories; ++c) {
      design.at(r, c) =
          it->second[c] - obs.speed_vs_base * base_it->second[c];
    }
  }
  const auto fit = stats::least_squares_simplex(design, rhs);
  std::array<double, kBalancedCategories> weights{};
  for (std::size_t c = 0; c < kBalancedCategories; ++c) {
    weights[c] = fit.weights[c];
  }
  return weights;
}

}  // namespace msim::metrics
