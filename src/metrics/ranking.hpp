// Ranking quality: how well does each metric order the machines?
//
// The paper's opening motivation is *ranking* HPC systems ("a ranking of
// HPC systems has been of keen interest to many... system X is 50% faster
// than system Y for application Z"). Average absolute error is one lens;
// this module scores the orderings directly: for each (application, count)
// it compares the ranking a metric induces against the true (observed)
// ranking, by Spearman rank correlation, Kendall tau, and two procurement
// summaries — how often the metric names the true fastest machine, and how
// much performance is left on the table by buying its pick.
#pragma once

#include <string>
#include <vector>

#include "metrics/study.hpp"

namespace msim::metrics {

/// Ranking scores for one metric over a set of (app, count) pairs.
struct RankingQuality {
  Metric metric{};
  double mean_spearman = 0.0;
  double mean_kendall = 0.0;
  /// Fraction of (app, count) pairs where the metric's predicted-fastest
  /// machine is truly the fastest.
  double top_pick_accuracy = 0.0;
  /// Mean regret of the metric's pick: time(pick)/time(true best) - 1,
  /// averaged over (app, count) pairs. 0 = always optimal.
  double mean_pick_regret = 0.0;
  std::size_t configurations = 0;
};

/// Score one metric's rankings over every (app, count) in the study.
[[nodiscard]] RankingQuality ranking_quality(const Study& study,
                                             Metric metric);

/// Score a list of metrics (convenience for benches).
[[nodiscard]] std::vector<RankingQuality> ranking_qualities(
    const Study& study, const std::vector<Metric>& metrics);

}  // namespace msim::metrics
