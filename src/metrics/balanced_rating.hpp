// IDC-style "Balanced Rating" composite (paper Section 4, between metrics
// #3 and #4).
//
// Three category scores — processor (HPL), memory (STREAM), interconnect
// (the all_reduce test within NETBENCH) — are each normalized to the best
// system in the comparison set (0..1) and combined with weights. The paper
// evaluates equal weights (error 35%) and regression-fitted weights, which
// came out 5% HPL / 50% STREAM / 45% all_reduce (error 33%).
//
// The fit: for observation (X, Y) let v = T(X0,Y)/T(X,Y) be the true
// speed of X relative to base. A composite used through Equation 1 predicts
// v by S(X)/S(X0), so ideal weights satisfy S(X) - v * S(X0) = 0 for every
// observation — linear in w. We minimize the residual over the probability
// simplex (weights non-negative, summing to 1) with the projected-gradient
// solver in stats::least_squares_simplex.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "probes/probe_set.hpp"

namespace msim::metrics {

inline constexpr std::size_t kBalancedCategories = 3;

/// Raw category rates (higher = better): HPL, STREAM, all_reduce speed.
[[nodiscard]] std::array<double, kBalancedCategories> category_rates(
    const probes::ProbeSet& probes);

/// A balanced-rating model over a fixed comparison set of machines.
class BalancedRating {
 public:
  /// Build with the given weights (must be non-negative, need not be
  /// normalized; they are normalized to sum to 1).
  BalancedRating(const std::vector<probes::ProbeSet>& probe_sets,
                 std::array<double, kBalancedCategories> weights);

  /// Composite score of a machine in the comparison set, in (0, 1].
  [[nodiscard]] double score(const std::string& machine) const;

  /// Equation-1 style prediction using composite scores as the "rate".
  [[nodiscard]] double predict(double measured_base_seconds,
                               const std::string& base_machine,
                               const std::string& target_machine) const;

  [[nodiscard]] const std::array<double, kBalancedCategories>& weights()
      const {
    return weights_;
  }

 private:
  std::array<double, kBalancedCategories> weights_;
  std::map<std::string, std::array<double, kBalancedCategories>> normalized_;
};

/// One row of fitting data: a target machine and its true speed relative to
/// the base system for some (application, count).
struct SpeedObservation {
  std::string machine;
  double speed_vs_base = 1.0;  ///< T(base)/T(machine)
};

/// Fit category weights on the simplex that best explain the observations.
[[nodiscard]] std::array<double, kBalancedCategories> fit_balanced_weights(
    const std::vector<probes::ProbeSet>& probe_sets,
    const std::string& base_machine,
    const std::vector<SpeedObservation>& observations);

}  // namespace msim::metrics
