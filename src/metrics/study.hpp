// Study driver: assembles the paper's full experiment.
//
//   1. "Run" the five TI-05 test cases at their three processor counts on
//      the ten target systems and the base system (detailed simulator) —
//      the 150+15 observations;
//   2. run the probe suite on every machine;
//   3. trace every (application, count) on the base system;
//   4. predict every observation with every metric and score it with
//      Equation 2.
//
// All heavy inputs are computed once in Study::build() and the evaluation
// layer is pure queries, so benches for Tables 4/5 and Figures 2-7 share
// one set of inputs.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "metrics/balanced_rating.hpp"
#include "metrics/metric_set.hpp"
#include "probes/probe_set.hpp"
#include "simulate/campaign.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace msim::metrics {

/// One scored prediction (a cell of the paper's 1,350).
struct Prediction {
  Metric metric;
  std::string app;
  int nprocs = 0;
  std::string machine;
  double predicted_seconds = 0.0;
  double actual_seconds = 0.0;
  double signed_error_pct = 0.0;

  [[nodiscard]] double abs_error_pct() const;
};

/// Mean/stddev of absolute error over some slice of predictions.
struct ErrorSummary {
  double mean_abs_error_pct = 0.0;
  double stddev_abs_error_pct = 0.0;
  std::size_t count = 0;
};

struct StudyOptions {
  simulate::ExecutorOptions executor{};
  trace::TracerOptions tracer{};
  convolve::ConvolverOptions convolver{};

  // --- pipeline execution knobs (content-neutral: they change how the
  // study is built, never what it contains, and are excluded from
  // artifact-cache keys) ------------------------------------------------
  /// Worker threads for the build stages; 0 = hardware concurrency.
  unsigned build_threads = 0;
  /// Reuse/store stage artifacts in the on-disk cache.
  bool cache_artifacts = false;
  /// Cache root; empty = MSIM_CACHE_DIR or ".msim-cache".
  std::string cache_dir{};
  /// Cache size cap in bytes, enforced by LRU eviction at store time;
  /// 0 = MSIM_CACHE_MAX_BYTES or unlimited.
  std::uint64_t cache_max_bytes = 0;
};

/// Everything a Study holds, produced stage by stage (see src/pipeline).
struct StudyParts {
  std::vector<std::string> target_names;
  std::string base;
  std::vector<workload::TestCase> suite;
  StudyOptions options;
  simulate::ObservationSet observations;
  std::map<std::string, probes::ProbeSet> probes;
  std::map<std::pair<std::string, int>, trace::ApplicationSignature>
      signatures;
};

class Study {
 public:
  /// Build the full paper study (10 targets + base, TI-05 suite).
  /// Thin shim over pipeline::StudyBuilder.
  [[nodiscard]] static Study build(const StudyOptions& options = {});

  /// Build over a custom machine list and suite (base must be last in
  /// `machines` or named explicitly). Thin shim over
  /// pipeline::StudyBuilder.
  [[nodiscard]] static Study build(
      std::vector<machine::MachineConfig> targets,
      machine::MachineConfig base_machine,
      std::vector<workload::TestCase> suite,
      const StudyOptions& options = {});

  /// Assemble a study from independently produced stage outputs; validates
  /// that every probe set and signature the suite needs is present.
  [[nodiscard]] static Study assemble(StudyParts parts);

  /// Predict one configuration with one metric.
  [[nodiscard]] double predict(Metric metric, const std::string& app,
                               int nprocs, const std::string& machine) const;

  /// Score every (metric x app x count x target machine) combination.
  [[nodiscard]] std::vector<Prediction> evaluate(
      const std::vector<Metric>& metrics) const;

  // --- aggregate views over a prediction list -------------------------
  [[nodiscard]] static ErrorSummary summarize(
      const std::vector<Prediction>& predictions);
  [[nodiscard]] static std::vector<Prediction> slice_metric(
      const std::vector<Prediction>& predictions, Metric metric);
  [[nodiscard]] static std::vector<Prediction> slice_machine(
      const std::vector<Prediction>& predictions, const std::string& machine);
  [[nodiscard]] static std::vector<Prediction> slice_app(
      const std::vector<Prediction>& predictions, const std::string& app,
      int nprocs = 0);  ///< nprocs 0 = all counts

  // --- accessors -------------------------------------------------------
  [[nodiscard]] const simulate::ObservationSet& observations() const {
    return observations_;
  }
  [[nodiscard]] const probes::ProbeSet& probe_set(
      const std::string& machine) const;
  [[nodiscard]] const trace::ApplicationSignature& signature(
      const std::string& app, int nprocs) const;
  [[nodiscard]] const std::string& base_machine() const { return base_; }
  [[nodiscard]] const std::vector<std::string>& target_names() const {
    return target_names_;
  }
  [[nodiscard]] const std::vector<workload::TestCase>& suite() const {
    return suite_;
  }
  [[nodiscard]] const BalancedRating& balanced_equal() const;
  [[nodiscard]] const BalancedRating& balanced_fitted() const;

 private:
  Study() = default;

  /// Probe sets ordered by machine name — the balanced ratings must not
  /// depend on map iteration order (deterministic across containers).
  [[nodiscard]] std::vector<probes::ProbeSet> sorted_probe_sets() const;

  std::vector<std::string> target_names_;
  std::string base_;
  std::vector<workload::TestCase> suite_;
  StudyOptions options_;

  simulate::ObservationSet observations_;
  std::map<std::string, probes::ProbeSet> probes_;
  std::map<std::pair<std::string, int>, trace::ApplicationSignature>
      signatures_;

  // Built lazily from probe sets (+ observations for the fitted variant).
  // Heap-held so Study stays movable; call_once makes evaluate() safe to
  // run from concurrent threads.
  struct LazyComposites {
    std::once_flag equal_once;
    std::once_flag fitted_once;
    std::unique_ptr<BalancedRating> equal;
    std::unique_ptr<BalancedRating> fitted;
  };
  std::unique_ptr<LazyComposites> lazy_ = std::make_unique<LazyComposites>();
};

}  // namespace msim::metrics
