// Study driver: assembles the paper's full experiment.
//
//   1. "Run" the five TI-05 test cases at their three processor counts on
//      the ten target systems and the base system (detailed simulator) —
//      the 150+15 observations;
//   2. run the probe suite on every machine;
//   3. trace every (application, count) on the base system;
//   4. predict every observation with every metric and score it with
//      Equation 2.
//
// All heavy inputs are computed once in Study::build() and the evaluation
// layer is pure queries, so benches for Tables 4/5 and Figures 2-7 share
// one set of inputs.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "metrics/balanced_rating.hpp"
#include "metrics/metric_set.hpp"
#include "probes/probe_set.hpp"
#include "simulate/campaign.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace msim::metrics {

/// One scored prediction (a cell of the paper's 1,350).
struct Prediction {
  Metric metric;
  std::string app;
  int nprocs = 0;
  std::string machine;
  double predicted_seconds = 0.0;
  double actual_seconds = 0.0;
  double signed_error_pct = 0.0;

  [[nodiscard]] double abs_error_pct() const;
};

/// Mean/stddev of absolute error over some slice of predictions.
struct ErrorSummary {
  double mean_abs_error_pct = 0.0;
  double stddev_abs_error_pct = 0.0;
  std::size_t count = 0;
};

struct StudyOptions {
  simulate::ExecutorOptions executor{};
  trace::TracerOptions tracer{};
  convolve::ConvolverOptions convolver{};
};

class Study {
 public:
  /// Build the full paper study (10 targets + base, TI-05 suite).
  [[nodiscard]] static Study build(const StudyOptions& options = {});

  /// Build over a custom machine list and suite (base must be last in
  /// `machines` or named explicitly).
  [[nodiscard]] static Study build(
      std::vector<machine::MachineConfig> targets,
      machine::MachineConfig base_machine,
      std::vector<workload::TestCase> suite,
      const StudyOptions& options = {});

  /// Predict one configuration with one metric.
  [[nodiscard]] double predict(Metric metric, const std::string& app,
                               int nprocs, const std::string& machine) const;

  /// Score every (metric x app x count x target machine) combination.
  [[nodiscard]] std::vector<Prediction> evaluate(
      const std::vector<Metric>& metrics) const;

  // --- aggregate views over a prediction list -------------------------
  [[nodiscard]] static ErrorSummary summarize(
      const std::vector<Prediction>& predictions);
  [[nodiscard]] static std::vector<Prediction> slice_metric(
      const std::vector<Prediction>& predictions, Metric metric);
  [[nodiscard]] static std::vector<Prediction> slice_machine(
      const std::vector<Prediction>& predictions, const std::string& machine);
  [[nodiscard]] static std::vector<Prediction> slice_app(
      const std::vector<Prediction>& predictions, const std::string& app,
      int nprocs = 0);  ///< nprocs 0 = all counts

  // --- accessors -------------------------------------------------------
  [[nodiscard]] const simulate::ObservationSet& observations() const {
    return observations_;
  }
  [[nodiscard]] const probes::ProbeSet& probe_set(
      const std::string& machine) const;
  [[nodiscard]] const trace::ApplicationSignature& signature(
      const std::string& app, int nprocs) const;
  [[nodiscard]] const std::string& base_machine() const { return base_; }
  [[nodiscard]] const std::vector<std::string>& target_names() const {
    return target_names_;
  }
  [[nodiscard]] const std::vector<workload::TestCase>& suite() const {
    return suite_;
  }
  [[nodiscard]] const BalancedRating& balanced_equal() const;
  [[nodiscard]] const BalancedRating& balanced_fitted() const;

 private:
  Study() = default;

  std::vector<std::string> target_names_;
  std::string base_;
  std::vector<workload::TestCase> suite_;
  StudyOptions options_;

  simulate::ObservationSet observations_;
  std::map<std::string, probes::ProbeSet> probes_;
  std::map<std::pair<std::string, int>, trace::ApplicationSignature>
      signatures_;

  // Built lazily from probe sets (+ observations for the fitted variant).
  mutable std::unique_ptr<BalancedRating> balanced_equal_;
  mutable std::unique_ptr<BalancedRating> balanced_fitted_;
};

}  // namespace msim::metrics
