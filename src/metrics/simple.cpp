#include "metrics/simple.hpp"

#include "common/check.hpp"

namespace msim::metrics {

std::string to_string(SimpleMetric metric) {
  switch (metric) {
    case SimpleMetric::Hpl:
      return "HPL";
    case SimpleMetric::Stream:
      return "STREAM";
    case SimpleMetric::Gups:
      return "GUPS";
  }
  return "?";
}

double simple_rate(const probes::ProbeSet& probes, SimpleMetric metric) {
  switch (metric) {
    case SimpleMetric::Hpl:
      return probes.hpl_rmax;
    case SimpleMetric::Stream:
      return probes.stream_bw;
    case SimpleMetric::Gups:
      return probes.gups_bw;
  }
  MSIM_CHECK(false, "unknown simple metric");
  return 0.0;
}

double eq1_predict(double measured_base_seconds, double base_rate,
                   double target_rate) {
  MSIM_REQUIRE(measured_base_seconds > 0.0, "base time must be positive");
  MSIM_REQUIRE(base_rate > 0.0 && target_rate > 0.0,
               "rates must be positive");
  return measured_base_seconds * base_rate / target_rate;
}

double predict_simple(double measured_base_seconds,
                      const probes::ProbeSet& base,
                      const probes::ProbeSet& target, SimpleMetric metric) {
  return eq1_predict(measured_base_seconds, simple_rate(base, metric),
                     simple_rate(target, metric));
}

}  // namespace msim::metrics
