// The unified catalog of metrics evaluated in the study: the paper's nine
// (Table 3) plus the two balanced-rating composites discussed in Section 4.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "convolve/convolver.hpp"

namespace msim::metrics {

enum class Metric {
  S1_Hpl,
  S2_Stream,
  S3_Gups,
  P4_Hpl,
  P5_HplStream,
  P6_HplStreamGups,
  P7_HplMaps,
  P8_HplMapsNet,
  P9_HplMapsNetDep,
  BalancedEqual,   ///< IDC equal-weight composite
  BalancedFitted,  ///< regression-fitted weights
};

enum class MetricKind { Simple, Predictive, Composite };

[[nodiscard]] MetricKind kind(Metric metric);

/// Paper row label, e.g. "1-S" or "9-P" ("B-E"/"B-F" for the composites).
[[nodiscard]] std::string row_label(Metric metric);

/// Description matching the paper's Table 4, e.g. "HPL+MAPS+NET".
[[nodiscard]] std::string description(Metric metric);

/// The paper's Table 4 rows, in order (#1-#9, no composites).
[[nodiscard]] std::vector<Metric> paper_metrics();

/// All metrics including the composites.
[[nodiscard]] std::vector<Metric> all_metrics();

/// The convolver configuration behind a predictive metric (nullopt for
/// simple/composite metrics).
[[nodiscard]] std::optional<convolve::PredictiveMetric> predictive_of(
    Metric metric);

}  // namespace msim::metrics
