#include "common/csv.hpp"

#include <cstdio>
#include <ostream>

namespace msim {

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::numeric_row(const std::string& label,
                            const std::vector<double>& values, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    cells.emplace_back(buf);
  }
  row(cells);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace msim
