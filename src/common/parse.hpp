// Strict whole-string numeric parsing and checked environment lookups.
//
// Every user-facing numeric input in msim — CLI positional arguments,
// option values, MSIM_* environment knobs — goes through these helpers
// instead of atoi/strtoul, which silently accept trailing garbage
// ("12abc" parses as 12) and truncate overflow through narrowing casts.
// Here a value parses only when the *entire* string is a number that fits
// the destination type; anything else is nullopt and the caller decides
// (usage error for CLI flags, documented fallback for env knobs).
//
// The env_* helpers implement the fallback policy uniformly: unset or
// empty means "use the default", and a malformed or out-of-range value
// also falls back rather than half-applying — an operator typo must not
// configure a daemon with a truncated worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace msim {

/// Whole-string decimal integer; nullopt on empty input, trailing
/// garbage, sign mismatch or overflow.
[[nodiscard]] std::optional<int> parse_int(std::string_view text);
[[nodiscard]] std::optional<unsigned> parse_unsigned(std::string_view text);
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Whole-string floating-point number (strtod grammar minus trailing
/// junk); nullopt on empty input, garbage, or a value outside the finite
/// double range.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// Byte count with an optional binary suffix (`512`, `64k`, `2m`, `1g`;
/// case-insensitive). Negative input, trailing garbage and unknown
/// suffixes are nullopt; a value too large for 64 bits *saturates* to
/// UINT64_MAX instead of wrapping — "99999999999g" must not silently
/// become a tiny cache cap that evicts everything.
[[nodiscard]] std::optional<std::uint64_t> parse_byte_size(
    std::string_view text);

/// `name` from the environment as an unsigned, else `fallback` when the
/// variable is unset, empty, malformed or does not fit (no silent
/// truncation — a bad knob falls back whole).
[[nodiscard]] unsigned env_unsigned(const char* name, unsigned fallback);
[[nodiscard]] std::uint64_t env_u64(const char* name,
                                    std::uint64_t fallback);

/// `name` from the environment as a double, else `fallback` when unset,
/// empty, malformed or non-finite.
[[nodiscard]] double env_double(const char* name, double fallback);

/// `name` from the environment as a byte count (parse_byte_size grammar),
/// else `fallback` when unset, empty or malformed.
[[nodiscard]] std::uint64_t env_byte_size(const char* name,
                                          std::uint64_t fallback);

/// `name` from the environment as a switch: unset or empty means
/// `fallback`; "0", "false", "off" and "no" (case-sensitive) mean off;
/// any other value means on. Matches the historical "anything but 0
/// enables it" contract of the MSIM_* toggle knobs.
[[nodiscard]] bool env_bool(const char* name, bool fallback);

/// `name` from the environment verbatim, else "" when unset. String
/// knobs (paths, command lines) have no parse step; this exists so every
/// knob read flows through one audited chokepoint.
[[nodiscard]] std::string env_string(const char* name);

}  // namespace msim
