#include "common/hash.hpp"

#include <cstring>

namespace msim {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

Fnv1a& Fnv1a::update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= kFnvPrime;
  }
  return *this;
}

Fnv1a& Fnv1a::update(const std::string& text) {
  // Length-prefix so that ("ab","c") and ("a","bc") differ.
  update_u64(text.size());
  return update(text.data(), text.size());
}

Fnv1a& Fnv1a::update_u64(std::uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  return update(bytes, sizeof bytes);
}

Fnv1a& Fnv1a::update_i64(std::int64_t value) {
  return update_u64(static_cast<std::uint64_t>(value));
}

Fnv1a& Fnv1a::update_double(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return update_u64(bits);
}

Fnv1a& Fnv1a::update_bool(bool value) {
  return update_u64(value ? 1u : 0u);
}

std::string hex_digest(std::uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[digest & 0xfu];
    digest >>= 4;
  }
  return out;
}

}  // namespace msim
