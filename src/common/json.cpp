#include "common/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

namespace msim::json {

namespace {

/// Recursive-descent parser over a string_view. Positions are tracked for
/// error messages; nesting depth is capped so a hostile input cannot blow
/// the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value value = parse_value(0);
    skip_whitespace();
    MSIM_REQUIRE(pos_ == text_.size(),
                 "json: trailing characters after document at " +
                     position());
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw precondition_error("json: " + what + " at " + position());
  }

  [[nodiscard]] std::string position() const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 128 levels");
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      // Duplicate keys: last one wins (common lenient behaviour).
      members.insert_or_assign(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array items;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      skip_whitespace();
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char escapee = text_[pos_++];
      switch (escapee) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          append_unicode_escape(out);
          break;
        default:
          fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  /// Decode \uXXXX (merging surrogate pairs) and append as UTF-8.
  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    auto digits = [this] {
      std::size_t count = 0;
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        ++count;
      }
      return count;
    };
    const std::size_t integer_digits = digits();
    if (integer_digits == 0) fail("invalid number");
    // JSON forbids leading zeros ("01"); strtod would accept them.
    if (integer_digits > 1 && text_[start] == '0') fail("leading zero");
    if (integer_digits > 1 && text_[start] == '-' &&
        text_[start + 1] == '0' && integer_digits > 1 &&
        pos_ - start > 2) {
      fail("leading zero");
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    // The token is validated above, so strtod on a bounded copy is safe.
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::Null;
    case 1:
      return Type::Bool;
    case 2:
      return Type::Number;
    case 3:
      return Type::String;
    case 4:
      return Type::Array;
    default:
      return Type::Object;
  }
}

bool Value::as_bool() const {
  MSIM_REQUIRE(is_bool(), "json value is not a bool");
  return std::get<bool>(data_);
}

double Value::as_number() const {
  MSIM_REQUIRE(is_number(), "json value is not a number");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  MSIM_REQUIRE(is_string(), "json value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::items() const {
  MSIM_REQUIRE(is_array(), "json value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::fields() const {
  MSIM_REQUIRE(is_object(), "json value is not an object");
  return std::get<Object>(data_);
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& members = std::get<Object>(data_);
  const auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_number() ? member->as_number()
                                                  : fallback;
}

std::string Value::string_or(const std::string& key,
                             std::string fallback) const {
  const Value* member = find(key);
  return member != nullptr && member->is_string() ? member->as_string()
                                                  : std::move(fallback);
}

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace msim::json
