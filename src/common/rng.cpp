#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace msim {

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 is kept away from zero so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  MSIM_REQUIRE(!weights.empty(), "pick_weighted needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    MSIM_REQUIRE(w >= 0.0, "pick_weighted weights must be non-negative");
    total += w;
  }
  MSIM_REQUIRE(total > 0.0, "pick_weighted weights must not all be zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off due to rounding
}

}  // namespace msim
