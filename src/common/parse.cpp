#include "common/parse.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace msim {

namespace {

template <typename T>
std::optional<T> parse_integral(std::string_view text) {
  if (text.empty()) return std::nullopt;
  T value{};
  const char* const begin = text.data();
  const char* const end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  // from_chars rejects leading whitespace and "+" by itself; a partial
  // consume (ptr != end) is trailing garbage, result_out_of_range is
  // overflow — both are hard failures, never a truncated value.
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

std::optional<int> parse_int(std::string_view text) {
  return parse_integral<int>(text);
}

std::optional<unsigned> parse_unsigned(std::string_view text) {
  return parse_integral<unsigned>(text);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  return parse_integral<std::uint64_t>(text);
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // strtod needs a terminated buffer; inputs here are short CLI/env
  // tokens, so the copy is irrelevant.
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_byte_size(std::string_view text) {
  constexpr std::uint64_t kSaturated =
      std::numeric_limits<std::uint64_t>::max();
  if (text.empty() || text[0] == '-') return std::nullopt;
  const std::string buffer(text);  // strtoull needs a terminated buffer
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (end == buffer.c_str()) return std::nullopt;
  std::uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': multiplier = 1ull << 10; break;
      case 'm': multiplier = 1ull << 20; break;
      case 'g': multiplier = 1ull << 30; break;
      default: return std::nullopt;
    }
    if (end[1] != '\0') return std::nullopt;
  }
  // Overflow saturates instead of wrapping or failing: the value the
  // operator asked for is "more bytes than addressable", and the closest
  // representable intent is the maximum, not a fallback.
  if (errno == ERANGE) return kSaturated;
  if (multiplier > 1 && value > kSaturated / multiplier) return kSaturated;
  return static_cast<std::uint64_t>(value) * multiplier;
}

unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return parse_unsigned(env).value_or(fallback);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return parse_u64(env).value_or(fallback);
}

double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return parse_double(env).value_or(fallback);
}

std::uint64_t env_byte_size(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return parse_byte_size(env).value_or(fallback);
}

bool env_bool(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::string_view value = env;
  return !(value == "0" || value == "false" || value == "off" ||
           value == "no");
}

std::string env_string(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace msim
