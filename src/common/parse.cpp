#include "common/parse.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <string>

namespace msim {

namespace {

template <typename T>
std::optional<T> parse_integral(std::string_view text) {
  if (text.empty()) return std::nullopt;
  T value{};
  const char* const begin = text.data();
  const char* const end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  // from_chars rejects leading whitespace and "+" by itself; a partial
  // consume (ptr != end) is trailing garbage, result_out_of_range is
  // overflow — both are hard failures, never a truncated value.
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

std::optional<int> parse_int(std::string_view text) {
  return parse_integral<int>(text);
}

std::optional<unsigned> parse_unsigned(std::string_view text) {
  return parse_integral<unsigned>(text);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  return parse_integral<std::uint64_t>(text);
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  // strtod needs a terminated buffer; inputs here are short CLI/env
  // tokens, so the copy is irrelevant.
  const std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
  return value;
}

unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return parse_unsigned(env).value_or(fallback);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return parse_u64(env).value_or(fallback);
}

double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return parse_double(env).value_or(fallback);
}

}  // namespace msim
