#include "common/binary.hpp"

#include <bit>
#include <cstring>

#include "common/hash.hpp"

namespace msim {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'B', 'F'};
constexpr std::uint32_t kFrameVersion = 1;
// magic + version + kind + payload length + payload checksum.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;

}  // namespace

void BinaryWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void BinaryWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void BinaryWriter::f64(double value) {
  u64(std::bit_cast<std::uint64_t>(value));
}

void BinaryWriter::str(const std::string& value) {
  u64(value.size());
  out_.append(value);
}

std::uint8_t BinaryReader::u8() {
  MSIM_REQUIRE(remaining() >= 1, "binary payload truncated");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t BinaryReader::u32() {
  MSIM_REQUIRE(remaining() >= 4, "binary payload truncated");
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_++]))
             << shift;
  }
  return value;
}

std::uint64_t BinaryReader::u64() {
  MSIM_REQUIRE(remaining() >= 8, "binary payload truncated");
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_++]))
             << shift;
  }
  return value;
}

double BinaryReader::f64() { return std::bit_cast<double>(u64()); }

std::string BinaryReader::str() {
  const std::uint64_t size = u64();
  MSIM_REQUIRE(remaining() >= size, "binary payload truncated");
  std::string value = data_.substr(pos_, size);
  pos_ += size;
  return value;
}

std::string frame_payload(ArtifactKind kind, const std::string& payload) {
  std::string framed;
  framed.append(kMagic, sizeof(kMagic));
  BinaryWriter header;
  header.u32(kFrameVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u64(payload.size());
  header.u64(Fnv1a{}.update(payload).digest());
  framed.append(header.bytes());
  framed.append(payload);
  return framed;
}

std::string unframe_payload(ArtifactKind kind, const std::string& framed) {
  MSIM_REQUIRE(framed.size() >= kHeaderBytes,
               "framed artifact truncated before header end");
  MSIM_REQUIRE(is_framed(framed), "framed artifact has wrong magic");
  BinaryReader reader(framed);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)reader.u8();
  const std::uint32_t version = reader.u32();
  MSIM_REQUIRE(version == kFrameVersion,
               "unsupported frame version " + std::to_string(version));
  const std::uint32_t framed_kind = reader.u32();
  MSIM_REQUIRE(framed_kind == static_cast<std::uint32_t>(kind),
               "framed artifact has kind " + std::to_string(framed_kind) +
                   ", expected " +
                   std::to_string(static_cast<std::uint32_t>(kind)));
  const std::uint64_t payload_bytes = reader.u64();
  const std::uint64_t checksum = reader.u64();
  MSIM_REQUIRE(reader.remaining() == payload_bytes,
               "framed artifact length mismatch (truncated or padded)");
  std::string payload = framed.substr(kHeaderBytes);
  MSIM_REQUIRE(Fnv1a{}.update(payload).digest() == checksum,
               "framed artifact checksum mismatch (corrupt payload)");
  return payload;
}

bool is_framed(const std::string& data) {
  return data.size() >= sizeof(kMagic) &&
         std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0;
}

}  // namespace msim
