#include "common/binary.hpp"

#include <bit>
#include <cstring>

#include "common/hash.hpp"

namespace msim {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'B', 'F'};
constexpr std::uint32_t kFrameVersion = 1;
constexpr std::uint32_t kChunkedFrameVersion = 2;
// v1: magic + version + kind + payload length + payload checksum.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;
// v2: magic + version + kind + chunk count + total frame length.
constexpr std::size_t kChunkedHeaderBytes = 4 + 4 + 4 + 4 + 8;
// v2 directory row: chunk offset + length + checksum.
constexpr std::size_t kDirectoryRowBytes = 8 + 8 + 8;
constexpr std::size_t kChunkAlign = 8;

constexpr std::size_t align_up(std::size_t value) {
  return (value + (kChunkAlign - 1)) & ~(kChunkAlign - 1);
}

}  // namespace

void BinaryWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void BinaryWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void BinaryWriter::f64(double value) {
  u64(std::bit_cast<std::uint64_t>(value));
}

void BinaryWriter::str(const std::string& value) {
  u64(value.size());
  out_.append(value);
}

std::uint8_t BinaryReader::u8() {
  MSIM_REQUIRE(remaining() >= 1, "binary payload truncated");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t BinaryReader::u32() {
  MSIM_REQUIRE(remaining() >= 4, "binary payload truncated");
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_++]))
             << shift;
  }
  return value;
}

std::uint64_t BinaryReader::u64() {
  MSIM_REQUIRE(remaining() >= 8, "binary payload truncated");
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_++]))
             << shift;
  }
  return value;
}

double BinaryReader::f64() { return std::bit_cast<double>(u64()); }

std::string BinaryReader::str() {
  const std::uint64_t size = u64();
  MSIM_REQUIRE(remaining() >= size, "binary payload truncated");
  std::string value(data_.substr(pos_, size));
  pos_ += size;
  return value;
}

std::string frame_payload(ArtifactKind kind, const std::string& payload) {
  std::string framed;
  framed.append(kMagic, sizeof(kMagic));
  BinaryWriter header;
  header.u32(kFrameVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u64(payload.size());
  header.u64(Fnv1a{}.update(payload).digest());
  framed.append(header.bytes());
  framed.append(payload);
  return framed;
}

std::string unframe_payload(ArtifactKind kind, std::string_view framed) {
  MSIM_REQUIRE(framed.size() >= kHeaderBytes,
               "framed artifact truncated before header end");
  MSIM_REQUIRE(is_framed(framed), "framed artifact has wrong magic");
  BinaryReader reader(framed);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)reader.u8();
  const std::uint32_t version = reader.u32();
  MSIM_REQUIRE(version == kFrameVersion,
               "unsupported frame version " + std::to_string(version));
  const std::uint32_t framed_kind = reader.u32();
  MSIM_REQUIRE(framed_kind == static_cast<std::uint32_t>(kind),
               "framed artifact has kind " + std::to_string(framed_kind) +
                   ", expected " +
                   std::to_string(static_cast<std::uint32_t>(kind)));
  const std::uint64_t payload_bytes = reader.u64();
  const std::uint64_t checksum = reader.u64();
  MSIM_REQUIRE(reader.remaining() == payload_bytes,
               "framed artifact length mismatch (truncated or padded)");
  std::string payload(framed.substr(kHeaderBytes));
  MSIM_REQUIRE(Fnv1a{}.update(payload).digest() == checksum,
               "framed artifact checksum mismatch (corrupt payload)");
  return payload;
}

bool is_framed(std::string_view data) {
  return data.size() >= sizeof(kMagic) &&
         std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0;
}

std::uint32_t frame_version(std::string_view data) {
  if (!is_framed(data) || data.size() < 8) return 0;
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data[4 + i]))
               << (8 * i);
  }
  return version;
}

std::string frame_chunked_payload(ArtifactKind kind,
                                  const std::vector<std::string>& chunks) {
  const std::size_t directory_bytes = chunks.size() * kDirectoryRowBytes;
  // First chunk lands right after the directory checksum; the header,
  // directory rows and checksum are all multiples of 8 bytes, so it is
  // already 8-aligned.
  std::size_t offset = kChunkedHeaderBytes + directory_bytes + 8;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(chunks.size());
  for (const std::string& chunk : chunks) {
    offset = align_up(offset);
    offsets.push_back(offset);
    offset += chunk.size();
  }
  const std::size_t total_bytes = offset;

  std::string framed;
  framed.reserve(total_bytes);
  framed.append(kMagic, sizeof(kMagic));
  BinaryWriter header;
  header.u32(kChunkedFrameVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u32(static_cast<std::uint32_t>(chunks.size()));
  header.u64(total_bytes);
  // Raw-byte digests (no length prefix): chunk lengths are explicit in
  // the directory, and the reader hashes views straight off the mapping.
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    header.u64(offsets[i]);
    header.u64(chunks[i].size());
    header.u64(
        Fnv1a{}.update(chunks[i].data(), chunks[i].size()).digest());
  }
  framed.append(header.bytes());
  {
    BinaryWriter directory_checksum;
    directory_checksum.u64(
        Fnv1a{}.update(framed.data(), framed.size()).digest());
    framed.append(directory_checksum.bytes());
  }
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    framed.resize(offsets[i], '\0');  // alignment padding
    framed.append(chunks[i]);
  }
  return framed;
}

ChunkedFrameView::ChunkedFrameView(ArtifactKind kind,
                                   std::string_view frame) {
  MSIM_REQUIRE(frame.size() >= kChunkedHeaderBytes + 8,
               "chunked frame truncated before header end");
  MSIM_REQUIRE(is_framed(frame), "framed artifact has wrong magic");
  BinaryReader reader(frame);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)reader.u8();
  const std::uint32_t version = reader.u32();
  MSIM_REQUIRE(version == kChunkedFrameVersion,
               "unsupported chunked frame version " +
                   std::to_string(version));
  const std::uint32_t framed_kind = reader.u32();
  MSIM_REQUIRE(framed_kind == static_cast<std::uint32_t>(kind),
               "framed artifact has kind " + std::to_string(framed_kind) +
                   ", expected " +
                   std::to_string(static_cast<std::uint32_t>(kind)));
  const std::uint32_t count = reader.u32();
  const std::uint64_t total_bytes = reader.u64();
  MSIM_REQUIRE(total_bytes == frame.size(),
               "chunked frame length mismatch (truncated or padded)");
  const std::size_t directory_end =
      kChunkedHeaderBytes +
      static_cast<std::size_t>(count) * kDirectoryRowBytes;
  MSIM_REQUIRE(frame.size() >= directory_end + 8,
               "chunked frame truncated inside directory");

  struct Row {
    std::uint64_t offset;
    std::uint64_t bytes;
    std::uint64_t checksum;
  };
  std::vector<Row> rows;
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Row row{};
    row.offset = reader.u64();
    row.bytes = reader.u64();
    row.checksum = reader.u64();
    rows.push_back(row);
  }
  const std::uint64_t directory_checksum = reader.u64();
  MSIM_REQUIRE(
      Fnv1a{}.update(frame.data(), directory_end).digest() ==
          directory_checksum,
      "chunked frame directory checksum mismatch (corrupt header)");

  // Only now are the directory offsets trusted enough to bounds-check the
  // chunks themselves.
  chunks_.reserve(count);
  std::uint64_t cursor = directory_end + 8;
  for (const Row& row : rows) {
    MSIM_REQUIRE(row.offset % kChunkAlign == 0,
                 "chunked frame chunk is not 8-byte aligned");
    MSIM_REQUIRE(row.offset >= cursor &&
                     row.offset <= frame.size() &&
                     row.bytes <= frame.size() - row.offset,
                 "chunked frame chunk out of bounds (corrupt directory)");
    const std::string_view chunk = frame.substr(row.offset, row.bytes);
    MSIM_REQUIRE(
        Fnv1a{}.update(chunk.data(), chunk.size()).digest() == row.checksum,
        "chunked frame chunk checksum mismatch (corrupt payload)");
    chunks_.push_back(chunk);
    cursor = row.offset + row.bytes;
  }
}

std::string_view ChunkedFrameView::chunk(std::size_t index) const {
  MSIM_REQUIRE(index < chunks_.size(), "chunk index out of range");
  return chunks_[index];
}

}  // namespace msim
