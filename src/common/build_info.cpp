#include "common/build_info.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

// Configure-time identity (see src/CMakeLists.txt). Every macro has a
// fallback so the file also compiles standalone.
#ifndef MSIM_GIT_DESCRIBE
#define MSIM_GIT_DESCRIBE "unknown"
#endif
#ifndef MSIM_BUILD_TYPE
#define MSIM_BUILD_TYPE "unknown"
#endif
#ifndef MSIM_CXX_FLAGS
#define MSIM_CXX_FLAGS ""
#endif

namespace msim {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// VmHWM from /proc/self/status, in bytes; 0 when the file or the row is
/// missing (non-Linux hosts).
std::uint64_t vm_hwm_bytes() {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::uint64_t kib = 0;
    fields >> kib;
    return kib * 1024;
  }
  return 0;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = {
      compiler_string(),
      MSIM_BUILD_TYPE,
      MSIM_CXX_FLAGS,
      MSIM_GIT_DESCRIBE,
  };
  return info;
}

std::uint64_t peak_rss_bytes() {
  if (const std::uint64_t bytes = vm_hwm_bytes(); bytes != 0) return bytes;
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
}

}  // namespace msim
