// Stable content hashing for artifact-cache keys.
//
// FNV-1a (64-bit) over explicitly fed bytes. The pipeline keys every cached
// stage artifact by a digest of exactly the inputs that stage consumes; the
// hash must therefore be stable across platforms, compilers and runs —
// std::hash guarantees none of that, so we carry our own. Doubles are fed
// as their IEEE-754 bit patterns (bitwise identity is the contract the
// deterministic simulator already provides).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace msim {

/// Streaming FNV-1a 64-bit hasher.
class Fnv1a {
 public:
  Fnv1a& update(const void* data, std::size_t size);
  Fnv1a& update(const std::string& text);
  Fnv1a& update_u64(std::uint64_t value);
  Fnv1a& update_i64(std::int64_t value);
  Fnv1a& update_double(double value);  ///< hashes the IEEE bit pattern
  Fnv1a& update_bool(bool value);

  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  ///< FNV offset basis
};

/// 16-character lowercase hex rendering of a digest (cache file names).
[[nodiscard]] std::string hex_digest(std::uint64_t digest);

}  // namespace msim
