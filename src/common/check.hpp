// Contract-check macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw rather than abort so that
// library misuse is testable and recoverable by callers.
#pragma once

#include <stdexcept>
#include <string>

namespace msim {

/// Thrown when a precondition (argument contract) is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant or postcondition fails.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
}  // namespace detail

}  // namespace msim

/// Precondition: validate caller-supplied arguments.
#define MSIM_REQUIRE(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::msim::detail::throw_precondition(#expr, __FILE__, __LINE__,    \
                                         (msg));                      \
    }                                                                  \
  } while (false)

/// Invariant / postcondition: validate internal consistency.
#define MSIM_CHECK(expr, msg)                                          \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::msim::detail::throw_invariant(#expr, __FILE__, __LINE__,       \
                                      (msg));                         \
    }                                                                  \
  } while (false)
