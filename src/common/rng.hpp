// Deterministic pseudo-random number generation.
//
// Every stochastic choice in msim flows through Rng so that a fixed seed
// reproduces a bit-identical campaign. The engine is xoshiro256** seeded via
// SplitMix64 (Blackman & Vigna), which is fast, has 256-bit state, and passes
// BigCrush — more than adequate for workload synthesis.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/check.hpp"

namespace msim {

/// SplitMix64 step — used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; handy for deriving per-entity seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ull);
  return splitmix64(s);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680cafe1234ull) { reseed(seed); }

  /// Reset the stream from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound) {
    MSIM_REQUIRE(bound > 0, "uniform_u64 bound must be positive");
    // Lemire's nearly-divisionless method with rejection.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    MSIM_REQUIRE(lo <= hi, "uniform range must be ordered");
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal deviate (Box–Muller, one value cached).
  [[nodiscard]] double normal();

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Pick an index according to non-negative weights (need not sum to 1).
  [[nodiscard]] std::size_t pick_weighted(std::span<const double> weights);

  /// true with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace msim
