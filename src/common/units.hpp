// Byte-size and rate unit helpers. All times are seconds (double), all
// bandwidths bytes/second (double), all sizes bytes (std::uint64_t) unless a
// name says otherwise; these helpers keep the literals readable.
#pragma once

#include <cstdint>
#include <string>

namespace msim {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

/// Convert a clock frequency in GHz to cycle time in seconds.
[[nodiscard]] constexpr double cycle_seconds(double ghz) {
  return 1.0 / (ghz * 1e9);
}

/// Render a byte count as a short human-readable string ("64 KiB", "1.5 GiB").
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Render a rate with an SI prefix ("3.41 GB/s", "120 MFLOP/s").
[[nodiscard]] std::string format_rate(double per_second,
                                      const std::string& unit);

}  // namespace msim
