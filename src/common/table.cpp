#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace msim {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Left) {
  MSIM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void AsciiTable::set_align(std::size_t column, Align align) {
  MSIM_REQUIRE(column < aligns_.size(), "column index out of range");
  aligns_[column] = align;
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  MSIM_REQUIRE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_rule() { rules_.push_back(rows_.size()); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto pad = [&](const std::string& text, std::size_t c) {
    std::string out;
    const std::size_t fill = width[c] - text.size();
    if (aligns_[c] == Align::Right) out.append(fill, ' ');
    out += text;
    if (aligns_[c] == Align::Left) out.append(fill, ' ');
    return out;
  };

  std::string rule = "+";
  for (std::size_t c = 0; c < width.size(); ++c) {
    rule.append(width[c] + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::ostringstream os;
  os << rule << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad(headers_[c], c) << " |";
  }
  os << '\n' << rule;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end()) os << rule;
    os << '|';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << ' ' << pad(rows_[r][c], c) << " |";
    }
    os << '\n';
  }
  os << rule;
  return os.str();
}

std::string AsciiTable::num(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string AsciiTable::pct(double fraction_as_percent, int decimals) {
  return num(fraction_as_percent, decimals);
}

std::ostream& operator<<(std::ostream& os, const AsciiTable& table) {
  return os << table.render();
}

}  // namespace msim
