// Minimal JSON reader: parse a document into an immutable value tree.
//
// msim emits two JSON formats (Chrome trace events, run records) and now
// also consumes one: `msim-report` reads run records back, tests validate
// trace files structurally, and run-record re-runs merge their noise
// samples into the existing file. This parser supports exactly standard
// JSON (RFC 8259) with no extensions, keeps object members in a std::map
// so iteration is deterministic, and throws msim::precondition_error with
// a line/column position on malformed input. It is a reader only — the
// writers keep emitting by hand, which preserves field order and avoids a
// DOM round-trip on the hot exit path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace msim::json {

class Value;
using Array = std::vector<Value>;
/// Ordered member map: deterministic iteration for diffable re-emission.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() : data_(nullptr) {}
  explicit Value(bool value) : data_(value) {}
  explicit Value(double value) : data_(value) {}
  explicit Value(std::string value) : data_(std::move(value)) {}
  explicit Value(Array value) : data_(std::move(value)) {}
  explicit Value(Object value) : data_(std::move(value)) {}

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type() == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type() == Type::Number; }
  [[nodiscard]] bool is_string() const { return type() == Type::String; }
  [[nodiscard]] bool is_array() const { return type() == Type::Array; }
  [[nodiscard]] bool is_object() const { return type() == Type::Object; }

  // Typed accessors; each requires the matching type (precondition_error).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& fields() const;

  /// Object member by key, nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;

  // Defaulted lookups for optional members.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Throws msim::precondition_error on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Escape a string for embedding inside a JSON string literal (no quotes).
[[nodiscard]] std::string escape(std::string_view text);

}  // namespace msim::json
