// Fixed-width ASCII table rendering for bench/report output.
//
// The paper's tables (Table 4, Table 5, the appendix run-time tables) are
// re-emitted in this format so that bench output can be diffed run-to-run.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace msim {

/// Column alignment inside an AsciiTable.
enum class Align { Left, Right };

/// Builder for a monospaced table with a header row and separator rules.
class AsciiTable {
 public:
  /// Create a table with the given column headers (left-aligned by default).
  explicit AsciiTable(std::vector<std::string> headers);

  /// Override the alignment of one column (0-based).
  void set_align(std::size_t column, Align align);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render the table to a string (trailing newline included).
  [[nodiscard]] std::string render() const;

  /// Format a double with the given number of decimals ("12.3").
  [[nodiscard]] static std::string num(double value, int decimals = 1);

  /// Format a double as a percentage without the sign ("63").
  [[nodiscard]] static std::string pct(double fraction_as_percent,
                                       int decimals = 0);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;  // row indices that a rule precedes
};

std::ostream& operator<<(std::ostream& os, const AsciiTable& table);

}  // namespace msim
