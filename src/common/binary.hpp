// Little-endian binary encoding and the framed-artifact envelope.
//
// The artifact cache stores its large curve artifacts (probe sets with
// four MAPS bandwidth sweeps) in a compact binary form instead of the
// line-oriented text format. Every binary artifact is wrapped in one
// self-verifying frame:
//
//   offset  size  field
//   0       4     magic "MSBF" (msim binary frame)
//   4       u32   frame version (currently 1)
//   8       u32   artifact kind (ArtifactKind)
//   12      u64   payload length in bytes
//   20      u64   FNV-1a digest of the payload bytes
//   28      ...   payload (little-endian fields, layout owned by the kind)
//
// The frame is what makes truncation and bit-flips detectable *before*
// any payload field is interpreted: a reader checks magic, version, kind,
// length and checksum, and throws precondition_error on any mismatch —
// which the cache's parse layer turns into a miss, never wrong data.
// Multi-byte integers are assembled byte-by-byte (shift/or), so the
// encoding is identical on any host endianness; doubles travel as their
// IEEE-754 bit patterns, preserving bitwise round-trip identity.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace msim {

/// What a framed payload contains (frame field 3). Values are wire format:
/// never renumber.
enum class ArtifactKind : std::uint32_t {
  ProbeSet = 1,
};

/// Appends little-endian fields to a growing byte string.
class BinaryWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void f64(double value);  ///< IEEE-754 bit pattern, bitwise round-trip
  /// Length-prefixed (u64) byte string.
  void str(const std::string& value);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Consumes little-endian fields from a byte string; every read is
/// bounds-checked and throws precondition_error on underrun.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Call at the end of a decode: trailing bytes mean a layout mismatch.
  void expect_done() const {
    MSIM_REQUIRE(remaining() == 0, "trailing bytes after binary payload");
  }

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

/// Wrap a payload in the self-verifying frame described above.
[[nodiscard]] std::string frame_payload(ArtifactKind kind,
                                        const std::string& payload);

/// Unwrap a frame, validating magic, version, kind, length and checksum.
/// Throws precondition_error on any mismatch (truncation, corruption,
/// wrong kind).
[[nodiscard]] std::string unframe_payload(ArtifactKind kind,
                                          const std::string& framed);

/// Cheap sniff: does this byte string start with the frame magic? Used for
/// the transparent fallback from binary artifacts to v1 text artifacts.
[[nodiscard]] bool is_framed(const std::string& data);

}  // namespace msim
