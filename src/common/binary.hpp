// Little-endian binary encoding and the framed-artifact envelope.
//
// The artifact cache stores its large curve artifacts (probe sets with
// four MAPS bandwidth sweeps) in a compact binary form instead of the
// line-oriented text format. Every binary artifact is wrapped in one
// self-verifying frame. Frame v1 is a single monolithic payload:
//
//   offset  size  field
//   0       4     magic "MSBF" (msim binary frame)
//   4       u32   frame version (1)
//   8       u32   artifact kind (ArtifactKind)
//   12      u64   payload length in bytes
//   20      u64   FNV-1a digest of the payload bytes
//   28      ...   payload (little-endian fields, layout owned by the kind)
//
// Frame v2 splits the payload into independently checksummed chunks so a
// reader can validate and *view* an artifact in place (e.g. over an mmap
// region) without first copying it through one contiguous std::string:
//
//   offset   size   field
//   0        4      magic "MSBF"
//   4        u32    frame version (2)
//   8        u32    artifact kind (ArtifactKind)
//   12       u32    chunk count C
//   16       u64    total frame length in bytes
//   24       C*24   directory: per chunk {u64 offset from frame start,
//                   u64 length in bytes, u64 FNV-1a digest}
//   24+C*24  u64    FNV-1a digest of bytes [0, 24+C*24) — header+directory
//   ...             chunk payloads, each 8-byte aligned (zero padding
//                   between; the first starts at 32+C*24, itself 8-aligned)
//
// The frame is what makes truncation and bit-flips detectable *before*
// any payload field is interpreted: a reader checks magic, version, kind,
// lengths and checksums, and throws precondition_error on any mismatch —
// which the cache's parse layer turns into a miss, never wrong data. The
// v2 directory checksum catches a corrupt directory before any chunk
// offset is trusted, and the per-chunk checksums localize damage: a
// validated ChunkedFrameView hands out string_views into the frame bytes,
// so a memory-mapped artifact is decoded with zero copies of the sweeps.
// Multi-byte integers are assembled byte-by-byte (shift/or), so the
// encoding is identical on any host endianness; doubles travel as their
// IEEE-754 bit patterns, preserving bitwise round-trip identity.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace msim {

/// What a framed payload contains (frame field 3). Values are wire format:
/// never renumber.
enum class ArtifactKind : std::uint32_t {
  ProbeSet = 1,
};

/// Appends little-endian fields to a growing byte string.
class BinaryWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void f64(double value);  ///< IEEE-754 bit pattern, bitwise round-trip
  /// Length-prefixed (u64) byte string.
  void str(const std::string& value);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Consumes little-endian fields from a byte range; every read is
/// bounds-checked and throws precondition_error on underrun. Holds a view:
/// the underlying bytes (a cache string or an mmap region) must outlive
/// the reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Call at the end of a decode: trailing bytes mean a layout mismatch.
  void expect_done() const {
    MSIM_REQUIRE(remaining() == 0, "trailing bytes after binary payload");
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Wrap a payload in the self-verifying v1 frame described above.
[[nodiscard]] std::string frame_payload(ArtifactKind kind,
                                        const std::string& payload);

/// Unwrap a v1 frame, validating magic, version, kind, length and
/// checksum. Throws precondition_error on any mismatch (truncation,
/// corruption, wrong kind).
[[nodiscard]] std::string unframe_payload(ArtifactKind kind,
                                          std::string_view framed);

/// Cheap sniff: does this byte string start with the frame magic? Used for
/// the transparent fallback from binary artifacts to v1 text artifacts.
[[nodiscard]] bool is_framed(std::string_view data);

/// Frame version of a framed byte string (1 or 2), or 0 when the bytes do
/// not carry the frame magic or are too short to hold a version field.
/// Purely a sniff — no checksum is verified.
[[nodiscard]] std::uint32_t frame_version(std::string_view data);

/// Wrap `chunks` in the self-verifying v2 chunked frame described above.
/// Chunk order and count are part of the layout owned by the kind.
[[nodiscard]] std::string frame_chunked_payload(
    ArtifactKind kind, const std::vector<std::string>& chunks);

/// Validated zero-copy view of a v2 chunked frame. The constructor checks
/// magic, version, kind, the directory checksum, every chunk's bounds,
/// 8-byte alignment and checksum, and throws precondition_error on any
/// mismatch — afterwards chunk() is a bounds-known string_view into the
/// frame bytes, safe to decode in place. The viewed bytes must outlive
/// the view (the cache's MappedArtifact keeps its region alive).
class ChunkedFrameView {
 public:
  ChunkedFrameView(ArtifactKind kind, std::string_view frame);

  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::string_view chunk(std::size_t index) const;

 private:
  std::vector<std::string_view> chunks_;
};

}  // namespace msim
