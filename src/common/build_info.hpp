// Build and process identity for observability records.
//
// A run record is only comparable to another run record when both know
// what produced them: the compiler, the configured build type and extra
// flags, and the git revision of the tree. Compiler and flags come from
// predefined macros and configure-time definitions (set on build_info.cpp
// alone, so a revision bump recompiles one translation unit); the git
// revision is captured by `git describe` at CMake configure time and
// degrades to "unknown" outside a git checkout.
//
// peak_rss_bytes() reads the process high-water resident set size (VmHWM
// on Linux, getrusage elsewhere) — a run-cost number every record samples
// at write time.
#pragma once

#include <cstdint>
#include <string>

namespace msim {

/// Identity of the binary answering "what build produced this record?".
struct BuildInfo {
  std::string compiler;    ///< e.g. "gcc 13.2.0" or "clang 18.1.3"
  std::string build_type;  ///< CMake build type ("RelWithDebInfo", ...)
  std::string flags;       ///< extra CMAKE_CXX_FLAGS ("" when none)
  std::string git;         ///< `git describe --always --dirty`, or "unknown"
};

/// The process-wide build identity (computed once).
[[nodiscard]] const BuildInfo& build_info();

/// Peak resident set size of this process in bytes; 0 when unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace msim
