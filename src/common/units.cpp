#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace msim {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 4> suffix = {"B", "KiB", "MiB",
                                                        "GiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < suffix.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[64];
  if (value == static_cast<std::uint64_t>(value)) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, suffix[idx]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, suffix[idx]);
  }
  return buf;
}

std::string format_rate(double per_second, const std::string& unit) {
  static constexpr std::array<const char*, 4> prefix = {"", "K", "M", "G"};
  double value = per_second;
  std::size_t idx = 0;
  while (value >= 1000.0 && idx + 1 < prefix.size()) {
    value /= 1000.0;
    ++idx;
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f %s%s/s", value, prefix[idx],
                unit.c_str());
  return buf;
}

}  // namespace msim
