// Minimal RFC-4180-style CSV emission, used by benches to dump figure series
// (one CSV per paper figure) alongside the human-readable tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace msim {

/// Streams rows to an std::ostream, quoting cells only when necessary.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row of raw string cells.
  void row(const std::vector<std::string>& cells);

  /// Write a row of numeric cells after a leading label.
  void numeric_row(const std::string& label, const std::vector<double>& values,
                   int decimals = 6);

  /// Quote a single cell per RFC 4180 if it contains , " or newline.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

}  // namespace msim
