// Text (de)serialization of MachineConfig.
//
// Format: one "dotted.key = value" pair per line, '#' comments, blank lines
// ignored. Cache levels are indexed (cache.0.size = ...). The format is
// stable so that site-specific machine descriptions can live outside the
// compiled registry and round-trip losslessly.
#pragma once

#include <string>

#include "machine/machine_config.hpp"

namespace msim::machine {

/// Serialize a config to the key=value text format.
[[nodiscard]] std::string to_text(const MachineConfig& config);

/// Parse a config from text; throws precondition_error on malformed input
/// (unknown key, bad number, missing required field).
[[nodiscard]] MachineConfig from_text(const std::string& text);

/// Stable FNV-1a digest of every field of a config (hashes the canonical
/// text form, so two configs digest equal iff they serialize equal). Used
/// by the pipeline's artifact cache to key machine-derived stage outputs.
[[nodiscard]] std::uint64_t config_digest(const MachineConfig& config);

}  // namespace msim::machine
