#include "machine/machine_config.hpp"

#include "common/check.hpp"

namespace msim::machine {

double MachineConfig::peak_flops() const {
  return cpu.clock_ghz * 1e9 * cpu.flops_per_cycle;
}

double MachineConfig::rmax_flops() const {
  return peak_flops() * cpu.hpl_efficiency;
}

std::uint64_t MachineConfig::total_cache_bytes() const {
  std::uint64_t total = 0;
  for (const auto& level : caches) total += level.size_bytes;
  return total;
}

namespace {
bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

void validate(const MachineConfig& config) {
  MSIM_REQUIRE(!config.name.empty(), "machine name must be set");
  MSIM_REQUIRE(config.total_processors > 0, "total_processors must be > 0");

  MSIM_REQUIRE(config.cpu.clock_ghz > 0.0, "clock must be positive");
  MSIM_REQUIRE(config.cpu.flops_per_cycle > 0, "flops_per_cycle must be > 0");
  MSIM_REQUIRE(config.cpu.hpl_efficiency > 0.0 &&
                   config.cpu.hpl_efficiency <= 1.0,
               "hpl_efficiency must be in (0, 1]");
  MSIM_REQUIRE(config.cpu.dependency_derate > 0.0 &&
                   config.cpu.dependency_derate <= 1.0,
               "dependency_derate must be in (0, 1]");
  MSIM_REQUIRE(config.cpu.branch_derate > 0.0 &&
                   config.cpu.branch_derate <= 1.0,
               "branch_derate must be in (0, 1]");
  MSIM_REQUIRE(config.cpu.latency_hiding >= 0.0 &&
                   config.cpu.latency_hiding <= 1.0,
               "latency_hiding must be in [0, 1]");

  MSIM_REQUIRE(!config.caches.empty(), "at least one cache level required");
  std::uint64_t prev_size = 0;
  for (const auto& level : config.caches) {
    MSIM_REQUIRE(!level.name.empty(), "cache level name must be set");
    MSIM_REQUIRE(is_power_of_two(level.size_bytes),
                 "cache size must be a power of two: " + level.name);
    MSIM_REQUIRE(is_power_of_two(level.line_bytes),
                 "cache line must be a power of two: " + level.name);
    MSIM_REQUIRE(level.line_bytes >= 8 && level.line_bytes <= 1024,
                 "cache line size out of range: " + level.name);
    MSIM_REQUIRE(level.associativity > 0,
                 "associativity must be > 0: " + level.name);
    MSIM_REQUIRE(level.size_bytes % (static_cast<std::uint64_t>(
                     level.line_bytes) * level.associativity) == 0,
                 "cache size must be divisible by line*assoc: " + level.name);
    MSIM_REQUIRE(level.size_bytes > prev_size,
                 "cache levels must grow strictly: " + level.name);
    MSIM_REQUIRE(level.unit_stride_bw > 0.0 && level.random_bw > 0.0,
                 "cache bandwidths must be positive: " + level.name);
    MSIM_REQUIRE(level.random_bw <= level.unit_stride_bw,
                 "random bw cannot exceed unit-stride bw: " + level.name);
    MSIM_REQUIRE(level.latency_s >= 0.0,
                 "cache latency must be non-negative: " + level.name);
    prev_size = level.size_bytes;
  }

  MSIM_REQUIRE(config.memory.unit_stride_bw > 0.0 &&
                   config.memory.random_bw > 0.0,
               "memory bandwidths must be positive");
  MSIM_REQUIRE(config.memory.random_bw <= config.memory.unit_stride_bw,
               "memory random bw cannot exceed unit-stride bw");
  // Bandwidth must not increase when falling out of the last cache level.
  MSIM_REQUIRE(config.memory.unit_stride_bw <=
                   config.caches.back().unit_stride_bw,
               "main memory cannot be faster than the last cache level");

  MSIM_REQUIRE(config.tlb.entries > 0, "tlb entries must be > 0");
  MSIM_REQUIRE(is_power_of_two(config.tlb.page_bytes),
               "page size must be a power of two");
  MSIM_REQUIRE(config.tlb.miss_penalty_s >= 0.0,
               "tlb penalty must be non-negative");

  MSIM_REQUIRE(config.net.latency_s > 0.0, "net latency must be positive");
  MSIM_REQUIRE(config.net.bandwidth > 0.0, "net bandwidth must be positive");
  MSIM_REQUIRE(config.net.procs_per_node > 0, "procs_per_node must be > 0");
  MSIM_REQUIRE(config.net.per_message_overhead_s >= 0.0,
               "per-message overhead must be non-negative");

  MSIM_REQUIRE(config.system_efficiency > 0.0 &&
                   config.system_efficiency <= 1.0,
               "system_efficiency must be in (0, 1]");
  MSIM_REQUIRE(config.memory_contention >= 0.0 &&
                   config.memory_contention <= 1.0,
               "memory_contention must be in [0, 1]");
}

}  // namespace msim::machine
