// Registry of the study's machine models.
//
// The ten target systems follow the paper's Tables 1 and 2; the eleventh
// entry is the base system the paper traced on (a NAVO IBM p690). Constants
// are era-plausible engineering estimates reconstructed from public 2003-05
// documentation of each processor/interconnect family — see the per-system
// notes in registry.cpp. Absolute fidelity to the (unpublished) DoD probe
// data is impossible; what matters for the reproduction is the *diversity*
// of flop/memory/network balance across systems, which these profiles
// preserve (e.g. the Opteron's on-die memory controller winning STREAM while
// losing HPL, the Altix's huge mid-cache bandwidth but poor
// dependency-limited behaviour, the SC45's low Rmax but strong memory system).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "machine/machine_config.hpp"

namespace msim::machine {

/// Name of the base system used for tracing (paper: "the NAVO p690").
[[nodiscard]] std::string base_system_name();

/// Names of the ten target systems, in the paper's Table 5 order.
[[nodiscard]] std::vector<std::string> target_system_names();

/// Look up any registry machine (targets + base) by name; throws
/// precondition_error for unknown names.
[[nodiscard]] const MachineConfig& find(const std::string& name);

/// All registry machines (ten targets followed by the base system).
[[nodiscard]] std::span<const MachineConfig> all();

/// The ten target machines only, Table 5 order.
[[nodiscard]] std::vector<MachineConfig> targets();

}  // namespace msim::machine
