#include "machine/registry.hpp"

#include <mutex>

#include "common/check.hpp"
#include "common/units.hpp"

namespace msim::machine {

namespace {

constexpr double ns = 1e-9;
constexpr double us = 1e-6;

CacheLevel level(std::string name, std::uint64_t size, std::uint32_t line,
                 std::uint32_t assoc, double unit_gbs, double random_gbs,
                 double latency_ns) {
  return CacheLevel{.name = std::move(name),
                    .size_bytes = size,
                    .line_bytes = line,
                    .associativity = assoc,
                    .unit_stride_bw = unit_gbs * GB,
                    .random_bw = random_gbs * GB,
                    .latency_s = latency_ns * ns};
}

// --- IBM p690 (Power4 1.3 GHz, Colony) ---------------------------------
// Power4: 2 FMA units -> 4 flop/cycle; 32 KiB L1D, ~1.5 MB L2 (modeled as
// the nearest power of two), 32 MB off-chip L3 shared per 8-core MCM (modeled as the 4 MB
// per-processor share); 32-way nodes share memory,
// giving strong contention. HPL efficiency ~0.70 on these systems.
MachineConfig p690_13(std::string name, std::string site_notes_efficiency) {
  (void)site_notes_efficiency;
  MachineConfig c;
  c.name = std::move(name);
  c.architecture = "IBM_690_1.3GHz_COL";
  c.total_processors = 320;
  c.cpu = Processor{.clock_ghz = 1.3,
                    .flops_per_cycle = 4,
                    .hpl_efficiency = 0.70,
                    .dependency_derate = 0.55,
                    .branch_derate = 0.75,
                    .latency_hiding = 0.75};
  c.caches = {level("L1", 32 * KiB, 128, 2, 10.0, 4.0, 2.0),
              level("L2", 2 * MiB, 128, 8, 7.0, 2.2, 10.0),
              level("L3", 4 * MiB, 512, 8, 4.5, 1.2, 40.0)};
  c.memory = MainMemory{.unit_stride_bw = 2.0 * GB,
                        .random_bw = 0.35 * GB,
                        .latency_s = 250 * ns};
  c.tlb = Tlb{.entries = 1024, .page_bytes = 4096, .miss_penalty_s = 100 * ns};
  c.net = Network{.latency_s = 18 * us,
                  .bandwidth = 0.35 * GB,
                  .eager_threshold_bytes = 16 * KiB,
                  .per_message_overhead_s = 3 * us,
                  .procs_per_node = 32};
  c.system_efficiency = 0.92;
  c.memory_contention = 0.30;
  return c;
}

std::vector<MachineConfig> build_registry() {
  std::vector<MachineConfig> machines;

  // ---- ERDC_O3800: SGI Origin 3800, R14000 400 MHz, NUMAlink ----------
  // MIPS R14000: 1 FMA/cycle -> 2 flop/cycle, 0.8 GF peak; modest HPL
  // efficiency. 8 MB unified off-chip L2. NUMAlink gives low MPI latency
  // but per-processor DRAM bandwidth is limited.
  {
    MachineConfig c;
    c.name = "ERDC_O3800";
    c.architecture = "SGI_O3800_400MHz_NUMA";
    c.total_processors = 504;
    c.cpu = Processor{.clock_ghz = 0.4,
                      .flops_per_cycle = 2,
                      .hpl_efficiency = 0.75,
                      .dependency_derate = 0.78,
                      .branch_derate = 0.80,
                      .latency_hiding = 0.50};
    c.caches = {level("L1", 32 * KiB, 64, 2, 3.2, 1.6, 2.5),
                level("L2", 8 * MiB, 128, 2, 1.6, 0.60, 25.0)};
    c.memory = MainMemory{.unit_stride_bw = 0.55 * GB,
                          .random_bw = 0.16 * GB,
                          .latency_s = 320 * ns};
    c.tlb = Tlb{.entries = 64, .page_bytes = 16384,
                .miss_penalty_s = 200 * ns};
    c.net = Network{.latency_s = 3 * us,
                    .bandwidth = 0.8 * GB,
                    .eager_threshold_bytes = 16 * KiB,
                    .per_message_overhead_s = 1 * us,
                    .procs_per_node = 4};
    c.system_efficiency = 0.84;
    c.memory_contention = 0.25;
    machines.push_back(std::move(c));
  }

  // ---- MHPCC_P3 / NAVO_P3: IBM Power3-II 375 MHz, Colony --------------
  // Power3: 2 FMA units -> 4 flop/cycle, 1.5 GF peak; 64 KiB L1, 8 MB L2.
  // Colony switch has high latency. The two sites run the same
  // architecture; they differ only in node population and site effects.
  {
    MachineConfig c;
    c.name = "MHPCC_P3";
    c.architecture = "IBM_P3_375MHz_COL";
    c.total_processors = 736;
    c.cpu = Processor{.clock_ghz = 0.375,
                      .flops_per_cycle = 4,
                      .hpl_efficiency = 0.85,
                      .dependency_derate = 0.62,
                      .branch_derate = 0.80,
                      .latency_hiding = 0.60};
    c.caches = {level("L1", 64 * KiB, 128, 4, 6.0, 2.5, 2.7),
                level("L2", 8 * MiB, 128, 4, 2.6, 0.90, 35.0)};
    c.memory = MainMemory{.unit_stride_bw = 1.0 * GB,
                          .random_bw = 0.18 * GB,
                          .latency_s = 350 * ns};
    c.tlb = Tlb{.entries = 256, .page_bytes = 4096,
                .miss_penalty_s = 150 * ns};
    c.net = Network{.latency_s = 20 * us,
                    .bandwidth = 0.35 * GB,
                    .eager_threshold_bytes = 16 * KiB,
                    .per_message_overhead_s = 4 * us,
                    .procs_per_node = 16};
    c.system_efficiency = 0.90;
    c.memory_contention = 0.30;
    machines.push_back(c);

    c.name = "NAVO_P3";
    c.total_processors = 928;
    c.net.bandwidth = 0.33 * GB;
    c.system_efficiency = 0.86;
    c.memory_contention = 0.33;
    machines.push_back(std::move(c));
  }

  // ---- ASC_SC45: HP AlphaServer SC45, EV68 1.0 GHz, Quadrics ----------
  // Alpha 21264: 2 FP pipes without FMA -> 2 flop/cycle and a low Rmax,
  // but a strong memory system for its flops — the canonical example of a
  // machine HPL mispredicts (the paper reports 167% HPL error here).
  {
    MachineConfig c;
    c.name = "ASC_SC45";
    c.architecture = "HP_SC45_1GHz_QUAD";
    c.total_processors = 472;
    c.cpu = Processor{.clock_ghz = 1.0,
                      .flops_per_cycle = 2,
                      .hpl_efficiency = 0.58,
                      .dependency_derate = 0.78,
                      .branch_derate = 0.85,
                      .latency_hiding = 0.70};
    c.caches = {level("L1", 64 * KiB, 64, 2, 16.0, 5.0, 3.0),
                level("L2", 8 * MiB, 64, 1, 4.4, 1.5, 12.0)};
    c.memory = MainMemory{.unit_stride_bw = 1.6 * GB,
                          .random_bw = 0.42 * GB,
                          .latency_s = 170 * ns};
    c.tlb = Tlb{.entries = 128, .page_bytes = 8192,
                .miss_penalty_s = 150 * ns};
    c.net = Network{.latency_s = 4.5 * us,
                    .bandwidth = 0.30 * GB,
                    .eager_threshold_bytes = 32 * KiB,
                    .per_message_overhead_s = 1.5 * us,
                    .procs_per_node = 4};
    c.system_efficiency = 0.95;
    c.memory_contention = 0.22;
    machines.push_back(std::move(c));
  }

  // ---- MHPCC_690_1.3: IBM p690 1.3 GHz, Colony -------------------------
  machines.push_back(p690_13("MHPCC_690_1.3", "site"));
  machines.back().net.bandwidth = 0.33 * GB;
  machines.back().system_efficiency = 0.90;
  machines.back().memory_contention = 0.32;

  // ---- ARL_690_1.7: IBM p690 1.7 GHz, Federation ----------------------
  // Power4+ clock bump plus the much faster Federation switch.
  {
    MachineConfig c = p690_13("ARL_690_1.7", "site");
    c.architecture = "IBM_690_1.7GHz_FED";
    c.total_processors = 128;
    c.cpu.clock_ghz = 1.7;
    c.cpu.hpl_efficiency = 0.68;
    c.caches = {level("L1", 32 * KiB, 128, 2, 13.0, 5.0, 1.8),
                level("L2", 2 * MiB, 128, 8, 8.8, 2.8, 9.0),
                level("L3", 4 * MiB, 512, 8, 5.2, 1.4, 35.0)};
    c.memory = MainMemory{.unit_stride_bw = 2.3 * GB,
                          .random_bw = 0.38 * GB,
                          .latency_s = 230 * ns};
    c.net = Network{.latency_s = 7 * us,
                    .bandwidth = 1.4 * GB,
                    .eager_threshold_bytes = 32 * KiB,
                    .per_message_overhead_s = 2 * us,
                    .procs_per_node = 32};
    c.system_efficiency = 0.91;
    c.memory_contention = 0.32;
    machines.push_back(std::move(c));
  }

  // ---- ARL_Xeon: Linux Networx Xeon 3.06 GHz, Myrinet ------------------
  // Pentium 4 era: high clock, SSE2 -> 2 flop/cycle, tiny 8 KiB L1, long
  // pipeline (severe branch-miss and dependency penalties), shared FSB.
  {
    MachineConfig c;
    c.name = "ARL_Xeon";
    c.architecture = "LNX_Xeon_3.06GHz_MNET";
    c.total_processors = 256;
    c.cpu = Processor{.clock_ghz = 3.06,
                      .flops_per_cycle = 2,
                      .hpl_efficiency = 0.55,
                      .dependency_derate = 0.40,
                      .branch_derate = 0.60,
                      .latency_hiding = 0.65};
    c.caches = {level("L1", 8 * KiB, 64, 4, 24.0, 8.0, 0.65),
                level("L2", 512 * KiB, 64, 8, 9.5, 3.0, 6.0)};
    c.memory = MainMemory{.unit_stride_bw = 1.5 * GB,
                          .random_bw = 0.22 * GB,
                          .latency_s = 190 * ns};
    c.tlb = Tlb{.entries = 64, .page_bytes = 4096,
                .miss_penalty_s = 140 * ns};
    c.net = Network{.latency_s = 7 * us,
                    .bandwidth = 0.24 * GB,
                    .eager_threshold_bytes = 32 * KiB,
                    .per_message_overhead_s = 1.5 * us,
                    .procs_per_node = 2};
    c.system_efficiency = 0.82;
    c.memory_contention = 0.40;
    machines.push_back(std::move(c));
  }

  // ---- ARL_Altix: SGI Altix 3700, Itanium2 1.5 GHz, NUMAlink4 ----------
  // Itanium2: 2 FMA -> 4 flop/cycle with outstanding HPL efficiency and an
  // extremely fast L2/L3 (FP loads bypass L1), but in-order EPIC execution
  // collapses on dependency- and branch-limited loops — the machine that
  // motivates the paper's Metric #9.
  {
    MachineConfig c;
    c.name = "ARL_Altix";
    c.architecture = "SGI_Altix_1.5GHz_NUMA";
    c.total_processors = 256;
    c.cpu = Processor{.clock_ghz = 1.5,
                      .flops_per_cycle = 4,
                      .hpl_efficiency = 0.85,
                      .dependency_derate = 0.25,
                      .branch_derate = 0.55,
                      .latency_hiding = 0.50};
    c.caches = {level("L1", 16 * KiB, 64, 4, 12.0, 4.0, 0.7),
                level("L2", 256 * KiB, 128, 8, 24.0, 7.0, 4.0),
                level("L3", 4 * MiB, 128, 8, 15.0, 4.5, 10.0)};
    c.memory = MainMemory{.unit_stride_bw = 2.7 * GB,
                          .random_bw = 0.45 * GB,
                          .latency_s = 160 * ns};
    c.tlb = Tlb{.entries = 128, .page_bytes = 16384,
                .miss_penalty_s = 60 * ns};
    c.net = Network{.latency_s = 2 * us,
                    .bandwidth = 1.6 * GB,
                    .eager_threshold_bytes = 64 * KiB,
                    .per_message_overhead_s = 1 * us,
                    .procs_per_node = 2};
    c.system_efficiency = 0.90;
    c.memory_contention = 0.20;
    machines.push_back(std::move(c));
  }

  // ---- NAVO_655: IBM p655 1.7 GHz, Federation ---------------------------
  // Power4+ in 8-way nodes: same core as the p690 1.7 but much better
  // per-processor memory bandwidth (fewer sharers) — best-in-class L1
  // bandwidth in the paper's Figure 1.
  {
    MachineConfig c;
    c.name = "NAVO_655";
    c.architecture = "IBM_655_1.7GHz_FED";
    c.total_processors = 2832;
    c.cpu = Processor{.clock_ghz = 1.7,
                      .flops_per_cycle = 4,
                      .hpl_efficiency = 0.70,
                      .dependency_derate = 0.55,
                      .branch_derate = 0.75,
                      .latency_hiding = 0.75};
    c.caches = {level("L1", 32 * KiB, 128, 2, 14.0, 5.5, 1.7),
                level("L2", 2 * MiB, 128, 8, 9.5, 3.0, 8.0),
                level("L3", 4 * MiB, 512, 8, 5.5, 1.5, 32.0)};
    c.memory = MainMemory{.unit_stride_bw = 2.2 * GB,
                          .random_bw = 0.42 * GB,
                          .latency_s = 210 * ns};
    c.tlb = Tlb{.entries = 1024, .page_bytes = 4096,
                .miss_penalty_s = 80 * ns};
    c.net = Network{.latency_s = 6 * us,
                    .bandwidth = 1.5 * GB,
                    .eager_threshold_bytes = 32 * KiB,
                    .per_message_overhead_s = 2 * us,
                    .procs_per_node = 8};
    c.system_efficiency = 0.96;
    c.memory_contention = 0.25;
    machines.push_back(std::move(c));
  }

  // ---- ARL_Opteron: Opteron 2.2 GHz, Myrinet ----------------------------
  // On-die memory controller: the best main-memory bandwidth and latency of
  // the set (it wins the right-hand side of Figure 1) with only moderate
  // peak flops — the anti-HPL data point at the other extreme from SC45.
  {
    MachineConfig c;
    c.name = "ARL_Opteron";
    c.architecture = "IBM_Opteron_2.2GHz_MNET";
    c.total_processors = 2304;
    c.cpu = Processor{.clock_ghz = 2.2,
                      .flops_per_cycle = 2,
                      .hpl_efficiency = 0.78,
                      .dependency_derate = 0.85,
                      .branch_derate = 0.80,
                      .latency_hiding = 0.80};
    c.caches = {level("L1", 64 * KiB, 64, 2, 12.0, 6.0, 1.4),
                level("L2", 1 * MiB, 64, 8, 7.0, 2.5, 5.5)};
    c.memory = MainMemory{.unit_stride_bw = 3.2 * GB,
                          .random_bw = 0.55 * GB,
                          .latency_s = 120 * ns};
    c.tlb = Tlb{.entries = 512, .page_bytes = 4096,
                .miss_penalty_s = 60 * ns};
    c.net = Network{.latency_s = 6.5 * us,
                    .bandwidth = 0.25 * GB,
                    .eager_threshold_bytes = 32 * KiB,
                    .per_message_overhead_s = 1.3 * us,
                    .procs_per_node = 2};
    c.system_efficiency = 0.90;
    c.memory_contention = 0.28;
    machines.push_back(std::move(c));
  }

  // ---- Base system: the NAVO p690 the paper traced on ------------------
  machines.push_back(p690_13("NAVO_690_BASE", "base"));

  for (const auto& machine : machines) validate(machine);
  return machines;
}

const std::vector<MachineConfig>& registry() {
  static const std::vector<MachineConfig> machines = build_registry();
  return machines;
}

}  // namespace

std::string base_system_name() { return "NAVO_690_BASE"; }

std::vector<std::string> target_system_names() {
  return {"ERDC_O3800", "MHPCC_P3",  "NAVO_P3",  "ASC_SC45",
          "MHPCC_690_1.3", "ARL_690_1.7", "ARL_Xeon", "ARL_Altix",
          "NAVO_655",  "ARL_Opteron"};
}

const MachineConfig& find(const std::string& name) {
  for (const auto& machine : registry()) {
    if (machine.name == name) return machine;
  }
  throw precondition_error("unknown machine '" + name + "'");
}

std::span<const MachineConfig> all() { return registry(); }

std::vector<MachineConfig> targets() {
  std::vector<MachineConfig> out;
  for (const auto& name : target_system_names()) out.push_back(find(name));
  return out;
}

}  // namespace msim::machine
