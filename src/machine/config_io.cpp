#include "machine/config_io.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace msim::machine {

namespace {

void emit(std::ostringstream& os, const std::string& key, double value) {
  os << key << " = " << value << '\n';
}
void emit(std::ostringstream& os, const std::string& key,
          std::uint64_t value) {
  os << key << " = " << value << '\n';
}
void emit(std::ostringstream& os, const std::string& key,
          const std::string& value) {
  os << key << " = " << value << '\n';
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    MSIM_REQUIRE(consumed == value.size(), "trailing junk in value");
    return parsed;
  } catch (const precondition_error&) {
    throw;
  } catch (const std::exception&) {
    throw precondition_error("bad numeric value for key '" + key + "': '" +
                             value + "'");
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  MSIM_REQUIRE(ec == std::errc{} && ptr == value.data() + value.size(),
               "bad integer value for key '" + key + "': '" + value + "'");
  return parsed;
}

}  // namespace

std::string to_text(const MachineConfig& c) {
  std::ostringstream os;
  // Full precision: the text form doubles as the cache-key digest input
  // (config_digest) and must distinguish any two non-identical configs.
  os.precision(17);
  os << "# msim machine description\n";
  emit(os, "name", c.name);
  emit(os, "architecture", c.architecture);
  emit(os, "total_processors", static_cast<std::uint64_t>(c.total_processors));

  emit(os, "cpu.clock_ghz", c.cpu.clock_ghz);
  emit(os, "cpu.flops_per_cycle",
       static_cast<std::uint64_t>(c.cpu.flops_per_cycle));
  emit(os, "cpu.hpl_efficiency", c.cpu.hpl_efficiency);
  emit(os, "cpu.dependency_derate", c.cpu.dependency_derate);
  emit(os, "cpu.branch_derate", c.cpu.branch_derate);
  emit(os, "cpu.latency_hiding", c.cpu.latency_hiding);

  for (std::size_t i = 0; i < c.caches.size(); ++i) {
    const auto& level = c.caches[i];
    const std::string prefix = "cache." + std::to_string(i) + '.';
    emit(os, prefix + "name", level.name);
    emit(os, prefix + "size_bytes", level.size_bytes);
    emit(os, prefix + "line_bytes",
         static_cast<std::uint64_t>(level.line_bytes));
    emit(os, prefix + "associativity",
         static_cast<std::uint64_t>(level.associativity));
    emit(os, prefix + "unit_stride_bw", level.unit_stride_bw);
    emit(os, prefix + "random_bw", level.random_bw);
    emit(os, prefix + "latency_s", level.latency_s);
  }

  emit(os, "memory.unit_stride_bw", c.memory.unit_stride_bw);
  emit(os, "memory.random_bw", c.memory.random_bw);
  emit(os, "memory.latency_s", c.memory.latency_s);

  emit(os, "tlb.entries", static_cast<std::uint64_t>(c.tlb.entries));
  emit(os, "tlb.page_bytes", static_cast<std::uint64_t>(c.tlb.page_bytes));
  emit(os, "tlb.miss_penalty_s", c.tlb.miss_penalty_s);

  emit(os, "net.latency_s", c.net.latency_s);
  emit(os, "net.bandwidth", c.net.bandwidth);
  emit(os, "net.eager_threshold_bytes", c.net.eager_threshold_bytes);
  emit(os, "net.per_message_overhead_s", c.net.per_message_overhead_s);
  emit(os, "net.procs_per_node",
       static_cast<std::uint64_t>(c.net.procs_per_node));

  emit(os, "system_efficiency", c.system_efficiency);
  emit(os, "memory_contention", c.memory_contention);
  return os.str();
}

MachineConfig from_text(const std::string& text) {
  std::map<std::string, std::string> pairs;
  std::istringstream is(text);
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    MSIM_REQUIRE(eq != std::string::npos,
                 "missing '=' on line " + std::to_string(line_number));
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    MSIM_REQUIRE(!key.empty(), "empty key on line " +
                                   std::to_string(line_number));
    MSIM_REQUIRE(pairs.emplace(key, value).second,
                 "duplicate key '" + key + "'");
  }

  auto take = [&pairs](const std::string& key) {
    const auto it = pairs.find(key);
    MSIM_REQUIRE(it != pairs.end(), "missing required key '" + key + "'");
    std::string value = it->second;
    pairs.erase(it);
    return value;
  };

  MachineConfig c;
  c.name = take("name");
  c.architecture = take("architecture");
  c.total_processors =
      static_cast<int>(parse_u64("total_processors", take("total_processors")));

  c.cpu.clock_ghz = parse_double("cpu.clock_ghz", take("cpu.clock_ghz"));
  c.cpu.flops_per_cycle = static_cast<int>(
      parse_u64("cpu.flops_per_cycle", take("cpu.flops_per_cycle")));
  c.cpu.hpl_efficiency =
      parse_double("cpu.hpl_efficiency", take("cpu.hpl_efficiency"));
  c.cpu.dependency_derate =
      parse_double("cpu.dependency_derate", take("cpu.dependency_derate"));
  c.cpu.branch_derate =
      parse_double("cpu.branch_derate", take("cpu.branch_derate"));
  c.cpu.latency_hiding =
      parse_double("cpu.latency_hiding", take("cpu.latency_hiding"));

  for (std::size_t i = 0;; ++i) {
    const std::string prefix = "cache." + std::to_string(i) + '.';
    if (pairs.find(prefix + "name") == pairs.end()) break;
    CacheLevel level;
    level.name = take(prefix + "name");
    level.size_bytes = parse_u64(prefix + "size_bytes",
                                 take(prefix + "size_bytes"));
    level.line_bytes = static_cast<std::uint32_t>(
        parse_u64(prefix + "line_bytes", take(prefix + "line_bytes")));
    level.associativity = static_cast<std::uint32_t>(
        parse_u64(prefix + "associativity", take(prefix + "associativity")));
    level.unit_stride_bw = parse_double(prefix + "unit_stride_bw",
                                        take(prefix + "unit_stride_bw"));
    level.random_bw =
        parse_double(prefix + "random_bw", take(prefix + "random_bw"));
    level.latency_s =
        parse_double(prefix + "latency_s", take(prefix + "latency_s"));
    c.caches.push_back(level);
  }

  c.memory.unit_stride_bw =
      parse_double("memory.unit_stride_bw", take("memory.unit_stride_bw"));
  c.memory.random_bw =
      parse_double("memory.random_bw", take("memory.random_bw"));
  c.memory.latency_s =
      parse_double("memory.latency_s", take("memory.latency_s"));

  c.tlb.entries = static_cast<std::uint32_t>(
      parse_u64("tlb.entries", take("tlb.entries")));
  c.tlb.page_bytes = static_cast<std::uint32_t>(
      parse_u64("tlb.page_bytes", take("tlb.page_bytes")));
  c.tlb.miss_penalty_s =
      parse_double("tlb.miss_penalty_s", take("tlb.miss_penalty_s"));

  c.net.latency_s = parse_double("net.latency_s", take("net.latency_s"));
  c.net.bandwidth = parse_double("net.bandwidth", take("net.bandwidth"));
  c.net.eager_threshold_bytes = parse_u64("net.eager_threshold_bytes",
                                          take("net.eager_threshold_bytes"));
  c.net.per_message_overhead_s = parse_double(
      "net.per_message_overhead_s", take("net.per_message_overhead_s"));
  c.net.procs_per_node = static_cast<int>(
      parse_u64("net.procs_per_node", take("net.procs_per_node")));

  c.system_efficiency =
      parse_double("system_efficiency", take("system_efficiency"));
  c.memory_contention =
      parse_double("memory_contention", take("memory_contention"));

  MSIM_REQUIRE(pairs.empty(),
               "unknown key '" + pairs.begin()->first + "' in machine text");
  validate(c);
  return c;
}

std::uint64_t config_digest(const MachineConfig& config) {
  return Fnv1a{}.update("msim-machine-v1").update(to_text(config)).digest();
}

}  // namespace msim::machine
