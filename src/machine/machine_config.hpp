// Parameterized machine models for the ten HPCMP target systems.
//
// The study's target systems (paper Tables 1 and 2) are unobtainable 2004-era
// hardware, so each is modeled by a MachineConfig: clock and floating-point
// issue, a 2-3 level cache hierarchy with distinct unit-stride and random
// bandwidths per level, main memory, a TLB, and an interconnect. Probes
// (src/probes) measure these models exactly the way real probes measure real
// machines — by execution through the simulator — while the detailed
// simulator (src/simulate) additionally applies effects no probe observes
// (TLB misses, contention, per-system efficiency), preserving the
// information asymmetry that creates prediction error on real systems.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msim::machine {

/// One level of cache. Bandwidths are sustained load/store rates for a
/// working set resident in this level, in bytes/second.
struct CacheLevel {
  std::string name;               ///< "L1", "L2", "L3"
  std::uint64_t size_bytes = 0;   ///< capacity
  std::uint32_t line_bytes = 0;   ///< cache line size
  std::uint32_t associativity = 0;  ///< ways; 0 is invalid
  double unit_stride_bw = 0.0;    ///< bytes/s, stride-1 streams
  double random_bw = 0.0;         ///< bytes/s, dependent random access
  double latency_s = 0.0;         ///< load-to-use latency, seconds
};

/// Main memory behind the last cache level.
struct MainMemory {
  double unit_stride_bw = 0.0;  ///< bytes/s (what STREAM sees)
  double random_bw = 0.0;       ///< bytes/s (what GUPS sees)
  double latency_s = 0.0;       ///< seconds
};

/// Core execution resources.
struct Processor {
  double clock_ghz = 0.0;
  int flops_per_cycle = 0;     ///< peak FP ops/cycle (FMA counted as 2)
  double hpl_efficiency = 0.0; ///< Rmax / Rpeak achieved by HPL
  /// Bandwidth multiplier when the inner loop carries a serial data
  /// dependence (0 < derate <= 1). Out-of-order cores with deep reorder
  /// windows derate mildly; in-order cores severely.
  double dependency_derate = 1.0;
  /// Bandwidth multiplier for loops with hard-to-predict inner branches.
  double branch_derate = 1.0;
  /// Fraction of memory latency the core can hide behind other work
  /// (0 = blocking in-order, 1 = perfect overlap).
  double latency_hiding = 0.0;
};

/// Address-translation model, a ground-truth-only second-order effect.
struct Tlb {
  std::uint32_t entries = 0;
  std::uint32_t page_bytes = 0;
  double miss_penalty_s = 0.0;
};

/// Interconnect model (Hockney alpha-beta with an eager/rendezvous split).
struct Network {
  double latency_s = 0.0;          ///< zero-byte one-way latency
  double bandwidth = 0.0;          ///< bytes/s per link direction
  std::uint64_t eager_threshold_bytes = 0;  ///< rendezvous adds a round trip
  double per_message_overhead_s = 0.0;      ///< software (CPU) cost
  int procs_per_node = 1;          ///< sharing factor for NIC/memory
};

/// A complete system description.
struct MachineConfig {
  std::string name;          ///< site name used in the paper ("NAVO_655")
  std::string architecture;  ///< paper's architecture string
  int total_processors = 0;

  Processor cpu;
  std::vector<CacheLevel> caches;  ///< ordered L1 first
  MainMemory memory;
  Tlb tlb;
  Network net;

  /// Sustained fraction of modeled performance actually delivered
  /// (compiler maturity, OS noise). Applied only by the detailed simulator;
  /// invisible to probes — one source of irreducible prediction error.
  double system_efficiency = 1.0;
  /// Memory-bandwidth contention exponent: effective per-process bandwidth
  /// scales as (1/procs_sharing)^contention. 0 = no contention.
  double memory_contention = 0.0;

  /// Peak floating-point rate per processor, ops/second.
  [[nodiscard]] double peak_flops() const;
  /// HPL Rmax per processor, ops/second (peak times HPL efficiency).
  [[nodiscard]] double rmax_flops() const;
  /// Total cache capacity across levels, bytes.
  [[nodiscard]] std::uint64_t total_cache_bytes() const;
};

/// Throws precondition_error describing the first problem found, if any.
void validate(const MachineConfig& config);

}  // namespace msim::machine
