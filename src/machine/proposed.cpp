#include "machine/proposed.hpp"

#include "common/units.hpp"

namespace msim::machine {

namespace {
constexpr double ns = 1e-9;
constexpr double us = 1e-6;
}  // namespace

MachineConfig make_cray_xt3() {
  MachineConfig c;
  c.name = "PROP_CrayXT3";
  c.architecture = "CRAY_XT3_2.4GHz_SEASTAR";
  c.total_processors = 4096;
  c.cpu = Processor{.clock_ghz = 2.4,
                    .flops_per_cycle = 2,
                    .hpl_efficiency = 0.81,
                    .dependency_derate = 0.85,
                    .branch_derate = 0.80,
                    .latency_hiding = 0.80};
  c.caches = {CacheLevel{.name = "L1",
                         .size_bytes = 64 * KiB,
                         .line_bytes = 64,
                         .associativity = 2,
                         .unit_stride_bw = 13.0 * GB,
                         .random_bw = 6.0 * GB,
                         .latency_s = 1.3 * ns},
              CacheLevel{.name = "L2",
                         .size_bytes = 1 * MiB,
                         .line_bytes = 64,
                         .associativity = 16,
                         .unit_stride_bw = 7.5 * GB,
                         .random_bw = 2.8 * GB,
                         .latency_s = 5.0 * ns}};
  // One core per socket with a dedicated memory controller: the best
  // per-processor memory system of its day.
  c.memory = MainMemory{.unit_stride_bw = 5.0 * GB,
                        .random_bw = 0.9 * GB,
                        .latency_s = 90 * ns};
  c.tlb = Tlb{.entries = 1024, .page_bytes = 4096,
              .miss_penalty_s = 45 * ns};
  // SeaStar: modest latency, strong link bandwidth, no NIC sharing.
  c.net = Network{.latency_s = 5.5 * us,
                  .bandwidth = 1.1 * GB,
                  .eager_threshold_bytes = 16 * KiB,
                  .per_message_overhead_s = 1.2 * us,
                  .procs_per_node = 1};
  c.system_efficiency = 0.90;  // early Catamount software stack
  c.memory_contention = 0.0;   // nothing shares the controller
  validate(c);
  return c;
}

MachineConfig make_bluegene_l() {
  MachineConfig c;
  c.name = "PROP_BlueGeneL";
  c.architecture = "IBM_BGL_700MHz_TORUS";
  c.total_processors = 32768;
  c.cpu = Processor{.clock_ghz = 0.7,
                    .flops_per_cycle = 4,  // double FPU
                    .hpl_efficiency = 0.75,
                    .dependency_derate = 0.55,
                    .branch_derate = 0.70,
                    .latency_hiding = 0.45};  // simple in-order core
  c.caches = {CacheLevel{.name = "L1",
                         .size_bytes = 32 * KiB,
                         .line_bytes = 32,
                         .associativity = 2,
                         .unit_stride_bw = 5.6 * GB,
                         .random_bw = 2.2 * GB,
                         .latency_s = 4.3 * ns},
              CacheLevel{.name = "L3",
                         .size_bytes = 4 * MiB,
                         .line_bytes = 128,
                         .associativity = 8,
                         .unit_stride_bw = 4.0 * GB,
                         .random_bw = 1.2 * GB,
                         .latency_s = 25 * ns}};
  c.memory = MainMemory{.unit_stride_bw = 2.7 * GB,
                        .random_bw = 0.5 * GB,
                        .latency_s = 95 * ns};
  c.tlb = Tlb{.entries = 64, .page_bytes = 4096,
              .miss_penalty_s = 60 * ns};
  // Torus + dedicated collective tree: superb latency at scale.
  c.net = Network{.latency_s = 2.5 * us,
                  .bandwidth = 0.35 * GB,
                  .eager_threshold_bytes = 8 * KiB,
                  .per_message_overhead_s = 0.5 * us,
                  .procs_per_node = 2};
  c.system_efficiency = 0.94;  // minimal-OS compute kernels
  c.memory_contention = 0.15;
  validate(c);
  return c;
}

MachineConfig make_opteron_dc_ib() {
  MachineConfig c;
  c.name = "PROP_OpteronDC_IB";
  c.architecture = "AMD_Opteron280_2.4GHz_IB";
  c.total_processors = 4096;
  c.cpu = Processor{.clock_ghz = 2.4,
                    .flops_per_cycle = 2,
                    .hpl_efficiency = 0.80,
                    .dependency_derate = 0.85,
                    .branch_derate = 0.82,
                    .latency_hiding = 0.82};
  c.caches = {CacheLevel{.name = "L1",
                         .size_bytes = 64 * KiB,
                         .line_bytes = 64,
                         .associativity = 2,
                         .unit_stride_bw = 14.0 * GB,
                         .random_bw = 6.5 * GB,
                         .latency_s = 1.3 * ns},
              CacheLevel{.name = "L2",
                         .size_bytes = 1 * MiB,
                         .line_bytes = 64,
                         .associativity = 16,
                         .unit_stride_bw = 8.0 * GB,
                         .random_bw = 3.0 * GB,
                         .latency_s = 5.0 * ns}};
  c.memory = MainMemory{.unit_stride_bw = 4.2 * GB,
                        .random_bw = 0.8 * GB,
                        .latency_s = 95 * ns};
  c.tlb = Tlb{.entries = 1024, .page_bytes = 4096,
              .miss_penalty_s = 45 * ns};
  c.net = Network{.latency_s = 3.5 * us,
                  .bandwidth = 0.9 * GB,
                  .eager_threshold_bytes = 32 * KiB,
                  .per_message_overhead_s = 0.8 * us,
                  .procs_per_node = 4};
  c.system_efficiency = 0.92;
  c.memory_contention = 0.30;  // two cores per controller
  validate(c);
  return c;
}

std::vector<MachineConfig> proposed_systems() {
  return {make_cray_xt3(), make_bluegene_l(), make_opteron_dc_ib()};
}

}  // namespace msim::machine
