// Proposed next-generation systems (a TI-06 outlook).
//
// The study's purpose was procurement: decide among machines, some of which
// do not exist yet. These profiles sketch the systems that were on 2005
// roadmaps — a Cray XT3 (single-core Opteron + SeaStar torus), an IBM
// BlueGene/L rack (slow, cool, massively parallel cores with a fast tree
// network), and a dual-core Opteron InfiniBand cluster — so the TI-05
// signatures can be convolved against next year's hardware. They are kept
// out of the main registry: the paper's campaign must stay exactly its ten
// systems.
#pragma once

#include <vector>

#include "machine/machine_config.hpp"

namespace msim::machine {

/// Cray XT3: 2.4 GHz Opteron, SeaStar 3-D torus, one core per NIC.
[[nodiscard]] MachineConfig make_cray_xt3();

/// IBM BlueGene/L: 700 MHz PowerPC 440 with double FPU, tiny memory per
/// node, excellent collective network.
[[nodiscard]] MachineConfig make_bluegene_l();

/// Dual-core Opteron 280 cluster on InfiniBand (two cores share a memory
/// controller and a NIC).
[[nodiscard]] MachineConfig make_opteron_dc_ib();

/// All proposed systems.
[[nodiscard]] std::vector<MachineConfig> proposed_systems();

}  // namespace msim::machine
