// Bottleneck breakdowns: where does an application spend its time on a
// machine? Renders the detailed simulator's per-block flop / memory / TLB /
// communication decomposition — the view a performance engineer wants
// before believing any prediction.
#pragma once

#include <string>
#include <vector>

#include "machine/machine_config.hpp"
#include "simulate/executor.hpp"
#include "workload/basic_block.hpp"

namespace msim::report {

/// Aggregate shares of one run's wall-clock time.
struct TimeShares {
  double flop = 0.0;    ///< fraction bounded by floating point
  double memory = 0.0;  ///< fraction bounded by memory bandwidth
  double tlb = 0.0;     ///< fraction spent in address translation
  double comm = 0.0;    ///< fraction in MPI
  /// Residual overlap/imbalance share so the four above plus this sum to 1.
  double other = 0.0;
};

/// Compute time shares from a simulated run. Per-block times are
/// attributed to the dominant resource of each block (max of flop vs
/// memory+tlb), which matches how bottlenecks are reported in practice.
[[nodiscard]] TimeShares time_shares(const simulate::RunResult& run);

/// Full per-block breakdown table for one (application, machine) pair.
[[nodiscard]] std::string render_breakdown(
    const workload::AppModel& app, const machine::MachineConfig& machine,
    const simulate::ExecutorOptions& options = {});

/// Side-by-side dominant-resource summary across several machines.
[[nodiscard]] std::string render_bottleneck_summary(
    const workload::AppModel& app,
    const std::vector<machine::MachineConfig>& machines,
    const simulate::ExecutorOptions& options = {});

}  // namespace msim::report
