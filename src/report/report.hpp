// Paper-layout rendering of study results.
//
// Each renderer produces the table/figure data the paper reports, in a
// diffable fixed-width layout, side by side with the paper's reference
// values where they exist. Benches print these and also dump CSV series for
// plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/study.hpp"
#include "obs/registry.hpp"
#include "probes/probe_set.hpp"

namespace msim::report {

/// Table 4 / Figure 2: overall average absolute error and standard
/// deviation per metric, with the paper's values alongside.
[[nodiscard]] std::string render_table4(
    const metrics::Study& study,
    const std::vector<metrics::Prediction>& predictions,
    bool include_composites = true);

/// Table 5: per-system average absolute error for metrics #1-#9, with an
/// OVERALL row, plus the paper's reference matrix.
[[nodiscard]] std::string render_table5(
    const metrics::Study& study,
    const std::vector<metrics::Prediction>& predictions);

/// Figures 3-7: per-application error assessment — one table per test
/// case with a row per (metric) and a column per CPU count.
[[nodiscard]] std::string render_figure_app(
    const metrics::Study& study,
    const std::vector<metrics::Prediction>& predictions,
    const std::string& app);

/// Figure 1: MAPS bandwidth-versus-working-set table for a list of probe
/// sets (unit stride by default).
[[nodiscard]] std::string render_maps_table(
    const std::vector<probes::ProbeSet>& sets, bool random_stride = false);

/// Appendix comparison: per app, simulated ground truth vs the paper's
/// observed times, with Spearman rank correlation per (app, count).
[[nodiscard]] std::string render_appendix_comparison(
    const simulate::ObservationSet& observations);

/// Dump Figure-2-style series (metric label, mean, stddev) as CSV.
void write_table4_csv(std::ostream& out, const metrics::Study& study,
                      const std::vector<metrics::Prediction>& predictions);

/// Dump a MAPS curve set as CSV (working_set_bytes, one column per system).
void write_maps_csv(std::ostream& out,
                    const std::vector<probes::ProbeSet>& sets,
                    bool random_stride = false);

/// One pipeline stage for the bench-banner cache-stats line.
struct PipelineStageLine {
  std::string name;
  std::size_t items = 0;
  std::size_t cache_hits = 0;
  double seconds = 0.0;
};

/// On-disk cache totals appended to the stats line (0/0 = omit).
struct PipelineCacheLine {
  std::size_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_bytes = 0;  ///< configured size cap, 0 = unlimited
  std::uint64_t evictions = 0;  ///< entries evicted during the run
};

/// Single-line stage/cache summary printed under bench banners, e.g.
///   pipeline: ground-truth 1/1 cached 0.00s | probes 11/11 cached 0.00s |
///   traces 15/15 cached 0.01s | total 0.02s | cache .msim-cache
///   (27 entries, 1.4 MiB)
[[nodiscard]] std::string render_pipeline_stats(
    const std::vector<PipelineStageLine>& stages, double total_seconds,
    bool cache_enabled, const std::string& cache_dir,
    const PipelineCacheLine& cache_totals = {});

/// Fixed-width summary of every obs registry metric (counters, gauges,
/// histograms), sorted by name. Printed to stderr at process exit when
/// MSIM_METRICS / --metrics is set; see docs/FORMATS.md.
[[nodiscard]] std::string render_metrics(const obs::Snapshot& snapshot);

}  // namespace msim::report
