#include "report/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "data/paper_data.hpp"
#include "stats/correlation.hpp"

namespace msim::report {

namespace {

using metrics::Metric;
using metrics::Prediction;
using metrics::Study;

}  // namespace

std::string render_table4(const Study& study,
                          const std::vector<Prediction>& predictions,
                          bool include_composites) {
  AsciiTable table({"# & Type", "Metric Description", "Avg |Err| (%)",
                    "Stddev (%)", "Paper Avg", "Paper Stddev"});
  for (std::size_t c = 2; c < 6; ++c) table.set_align(c, Align::Right);

  const auto& paper = data::table4();
  const auto metric_list = include_composites ? metrics::all_metrics()
                                              : metrics::paper_metrics();
  for (Metric metric : metric_list) {
    const auto slice = Study::slice_metric(predictions, metric);
    if (slice.empty()) continue;
    const auto summary = Study::summarize(slice);
    std::string paper_mean = "-";
    std::string paper_sd = "-";
    for (const auto& row : paper) {
      if (row.label == metrics::row_label(metric)) {
        paper_mean = AsciiTable::num(row.mean_abs_error_pct, 0);
        paper_sd = AsciiTable::num(row.stddev_pct, 0);
      }
    }
    if (metric == Metric::BalancedEqual) {
      paper_mean = AsciiTable::num(data::balanced_reference().equal_mean_pct, 0);
      paper_sd = AsciiTable::num(data::balanced_reference().equal_stddev_pct, 0);
    }
    if (metric == Metric::BalancedFitted) {
      paper_mean =
          AsciiTable::num(data::balanced_reference().fitted_mean_pct, 0);
      paper_sd =
          AsciiTable::num(data::balanced_reference().fitted_stddev_pct, 0);
    }
    table.add_row({metrics::row_label(metric), metrics::description(metric),
                   AsciiTable::num(summary.mean_abs_error_pct, 0),
                   AsciiTable::num(summary.stddev_abs_error_pct, 0),
                   paper_mean, paper_sd});
  }
  (void)study;
  return table.render();
}

std::string render_table5(const Study& study,
                          const std::vector<Prediction>& predictions) {
  std::vector<std::string> headers = {"System"};
  for (Metric metric : metrics::paper_metrics()) {
    headers.push_back(metrics::row_label(metric));
  }
  AsciiTable table(headers);
  for (std::size_t c = 1; c < headers.size(); ++c) {
    table.set_align(c, Align::Right);
  }

  auto add_machine_row = [&](const std::string& machine,
                             const std::vector<Prediction>& slice) {
    std::vector<std::string> cells = {machine};
    for (Metric metric : metrics::paper_metrics()) {
      const auto per_metric = Study::slice_metric(slice, metric);
      cells.push_back(AsciiTable::num(
          Study::summarize(per_metric).mean_abs_error_pct, 0));
    }
    table.add_row(std::move(cells));
  };

  for (const auto& machine : study.target_names()) {
    add_machine_row(machine, Study::slice_machine(predictions, machine));
  }
  table.add_rule();
  add_machine_row("OVERALL", predictions);

  std::ostringstream os;
  os << "Measured (this reproduction):\n" << table.render();

  AsciiTable paper_table(headers);
  for (std::size_t c = 1; c < headers.size(); ++c) {
    paper_table.set_align(c, Align::Right);
  }
  for (const auto& row : data::table5()) {
    std::vector<std::string> cells = {row.machine};
    for (double value : row.error_pct) {
      cells.push_back(AsciiTable::num(value, 0));
    }
    paper_table.add_row(std::move(cells));
  }
  os << "\nPaper (Table 5):\n" << paper_table.render();
  return os.str();
}

std::string render_figure_app(const Study& study,
                              const std::vector<Prediction>& predictions,
                              const std::string& app) {
  const workload::TestCase* test_case = nullptr;
  for (const auto& candidate : study.suite()) {
    if (candidate.name == app) test_case = &candidate;
  }
  MSIM_REQUIRE(test_case != nullptr, "unknown app '" + app + "'");

  std::vector<std::string> headers = {"Metric"};
  for (int nprocs : test_case->cpu_counts) {
    headers.push_back(std::to_string(nprocs) + " CPUs");
  }
  headers.push_back("All");
  AsciiTable table(headers);
  for (std::size_t c = 1; c < headers.size(); ++c) {
    table.set_align(c, Align::Right);
  }

  const auto app_slice = Study::slice_app(predictions, app);
  for (Metric metric : metrics::paper_metrics()) {
    const auto per_metric = Study::slice_metric(app_slice, metric);
    if (per_metric.empty()) continue;
    std::vector<std::string> cells = {metrics::row_label(metric) + " " +
                                      metrics::description(metric)};
    for (int nprocs : test_case->cpu_counts) {
      const auto per_count = Study::slice_app(per_metric, app, nprocs);
      cells.push_back(AsciiTable::num(
          Study::summarize(per_count).mean_abs_error_pct, 0));
    }
    cells.push_back(
        AsciiTable::num(Study::summarize(per_metric).mean_abs_error_pct, 0));
    table.add_row(std::move(cells));
  }
  std::ostringstream os;
  os << "Average absolute error (%) for " << app << ":\n" << table.render();
  return os.str();
}

std::string render_maps_table(const std::vector<probes::ProbeSet>& sets,
                              bool random_stride) {
  MSIM_REQUIRE(!sets.empty(), "need at least one probe set");
  std::vector<std::string> headers = {"Working set"};
  for (const auto& set : sets) headers.push_back(set.machine);
  AsciiTable table(headers);
  for (std::size_t c = 1; c < headers.size(); ++c) {
    table.set_align(c, Align::Right);
  }

  const auto& reference_curve =
      random_stride ? sets.front().maps_random : sets.front().maps_unit;
  for (const auto& point : reference_curve.points) {
    std::vector<std::string> cells = {format_bytes(point.working_set_bytes)};
    for (const auto& set : sets) {
      const auto& curve = random_stride ? set.maps_random : set.maps_unit;
      cells.push_back(AsciiTable::num(
          curve.bandwidth_at(point.working_set_bytes) / GB, 2));
    }
    table.add_row(std::move(cells));
  }
  std::ostringstream os;
  os << (random_stride ? "Random" : "Unit") << "-stride MAPS bandwidth"
     << " (GB/s) versus working-set size:\n"
     << table.render();
  return os.str();
}

std::string render_appendix_comparison(
    const simulate::ObservationSet& observations) {
  std::ostringstream os;
  for (const auto& paper_table : data::observed_tables()) {
    std::vector<std::string> headers = {"Machine"};
    for (int nprocs : paper_table.cpu_counts) {
      headers.push_back(std::to_string(nprocs) + " sim");
      headers.push_back(std::to_string(nprocs) + " paper");
    }
    AsciiTable table(headers);
    for (std::size_t c = 1; c < headers.size(); ++c) {
      table.set_align(c, Align::Right);
    }

    // Collect per-count series for rank correlation.
    std::vector<std::vector<double>> sim_series(paper_table.cpu_counts.size());
    std::vector<std::vector<double>> paper_series(
        paper_table.cpu_counts.size());

    std::vector<std::string> machines;
    for (const auto& cell : paper_table.cells) {
      if (std::find(machines.begin(), machines.end(), cell.machine) ==
          machines.end()) {
        machines.push_back(cell.machine);
      }
    }
    for (const auto& machine : machines) {
      std::vector<std::string> cells = {machine};
      for (std::size_t k = 0; k < paper_table.cpu_counts.size(); ++k) {
        const int nprocs = paper_table.cpu_counts[k];
        const auto simulated =
            observations.find(paper_table.app, nprocs, machine);
        const auto paper_value =
            data::observed_seconds(paper_table.app, nprocs, machine);
        cells.push_back(simulated ? AsciiTable::num(*simulated, 0) : "-");
        cells.push_back(paper_value ? AsciiTable::num(*paper_value, 0) : "-");
        if (simulated && paper_value) {
          sim_series[k].push_back(*simulated);
          paper_series[k].push_back(*paper_value);
        }
      }
      table.add_row(std::move(cells));
    }
    os << paper_table.app << " times-to-solution (seconds):\n"
       << table.render();
    os << "Spearman rank correlation (simulated vs paper):";
    for (std::size_t k = 0; k < paper_table.cpu_counts.size(); ++k) {
      os << "  " << paper_table.cpu_counts[k] << " CPUs: ";
      if (sim_series[k].size() >= 3) {
        os << AsciiTable::num(
            stats::spearman(sim_series[k], paper_series[k]), 2);
      } else {
        os << "n/a";
      }
    }
    os << "\n\n";
  }
  return os.str();
}

void write_table4_csv(std::ostream& out, const Study& study,
                      const std::vector<Prediction>& predictions) {
  (void)study;
  CsvWriter csv(out);
  csv.row({"metric", "description", "mean_abs_error_pct",
           "stddev_abs_error_pct"});
  for (Metric metric : metrics::all_metrics()) {
    const auto slice = Study::slice_metric(predictions, metric);
    if (slice.empty()) continue;
    const auto summary = Study::summarize(slice);
    csv.row({metrics::row_label(metric), metrics::description(metric),
             AsciiTable::num(summary.mean_abs_error_pct, 2),
             AsciiTable::num(summary.stddev_abs_error_pct, 2)});
  }
}

void write_maps_csv(std::ostream& out,
                    const std::vector<probes::ProbeSet>& sets,
                    bool random_stride) {
  MSIM_REQUIRE(!sets.empty(), "need at least one probe set");
  CsvWriter csv(out);
  std::vector<std::string> header = {"working_set_bytes"};
  for (const auto& set : sets) header.push_back(set.machine);
  csv.row(header);
  const auto& reference_curve =
      random_stride ? sets.front().maps_random : sets.front().maps_unit;
  for (const auto& point : reference_curve.points) {
    std::vector<double> values;
    for (const auto& set : sets) {
      const auto& curve = random_stride ? set.maps_random : set.maps_unit;
      values.push_back(curve.bandwidth_at(point.working_set_bytes));
    }
    csv.numeric_row(std::to_string(point.working_set_bytes), values, 0);
  }
}

std::string render_pipeline_stats(
    const std::vector<PipelineStageLine>& stages, double total_seconds,
    bool cache_enabled, const std::string& cache_dir,
    const PipelineCacheLine& cache_totals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "pipeline:";
  for (const auto& stage : stages) {
    os << ' ' << stage.name << ' ';
    if (cache_enabled) {
      os << stage.cache_hits << '/' << stage.items << " cached ";
    } else {
      os << stage.items << (stage.items == 1 ? " item " : " items ");
    }
    os << stage.seconds << "s |";
  }
  os << " total " << total_seconds << "s | cache ";
  os << (cache_enabled ? cache_dir : "off");
  if (cache_enabled && cache_totals.entries > 0) {
    os << " (" << cache_totals.entries
       << (cache_totals.entries == 1 ? " entry, " : " entries, ")
       << format_bytes(cache_totals.bytes);
    if (cache_totals.max_bytes > 0) {
      os << ", cap " << format_bytes(cache_totals.max_bytes);
    }
    if (cache_totals.evictions > 0) {
      os << ", " << cache_totals.evictions << " evicted";
    }
    os << ')';
  }
  return os.str();
}

std::string render_metrics(const obs::Snapshot& snapshot) {
  std::ostringstream os;
  os << "telemetry metrics:\n";
  if (snapshot.empty()) {
    os << "(no metrics recorded)\n";
    return os.str();
  }

  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    AsciiTable table({"Metric", "Kind", "Value"});
    table.set_align(2, Align::Right);
    for (const auto& row : snapshot.counters) {
      table.add_row({row.name, "counter", std::to_string(row.value)});
    }
    for (const auto& row : snapshot.gauges) {
      table.add_row({row.name, "gauge", AsciiTable::num(row.value, 3)});
    }
    os << table.render();
  }

  if (!snapshot.histograms.empty()) {
    AsciiTable table({"Histogram", "Count", "Mean", "Min", "Max", "~P95"});
    for (std::size_t c = 1; c < 6; ++c) table.set_align(c, Align::Right);
    for (const auto& row : snapshot.histograms) {
      const auto& h = row.values;
      table.add_row({row.name, std::to_string(h.count),
                     AsciiTable::num(h.mean(), 6),
                     AsciiTable::num(h.min, 6), AsciiTable::num(h.max, 6),
                     AsciiTable::num(h.quantile(0.95), 6)});
    }
    os << table.render();
  }
  return os.str();
}

}  // namespace msim::report
