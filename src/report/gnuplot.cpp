#include "report/gnuplot.hpp"

#include <ostream>

#include "common/check.hpp"

namespace msim::report {

void write_fig1_gnuplot(std::ostream& out, const std::string& csv_path,
                        const std::vector<std::string>& systems) {
  MSIM_REQUIRE(!systems.empty(), "need at least one system to plot");
  out << "# Reproduces paper Figure 1: unit-stride memory bandwidth versus\n"
         "# working-set size. Run: gnuplot <this file>\n"
         "set datafile separator ','\n"
         "set terminal pngcairo size 900,600\n"
         "set output 'fig1_maps.png'\n"
         "set logscale x 2\n"
         "set logscale y 10\n"
         "set xlabel 'working set (bytes)'\n"
         "set ylabel 'bandwidth (bytes/s)'\n"
         "set key top right\n"
         "set grid\n"
         "plot ";
  for (std::size_t i = 0; i < systems.size(); ++i) {
    if (i != 0) out << ", \\\n     ";
    out << '\'' << csv_path << "' every ::1 using 1:" << (i + 2)
        << " with linespoints title '" << systems[i] << '\'';
  }
  out << '\n';
}

void write_fig2_gnuplot(std::ostream& out, const std::string& csv_path) {
  out << "# Reproduces paper Figure 2: average absolute error per metric.\n"
         "# Run: gnuplot <this file>\n"
         "set datafile separator ','\n"
         "set terminal pngcairo size 900,600\n"
         "set output 'fig2_error_per_metric.png'\n"
         "set style data histogram\n"
         "set style histogram errorbars gap 1 lw 1\n"
         "set style fill solid 0.6 border -1\n"
         "set ylabel 'average absolute error (%)'\n"
         "set xtics rotate by -35\n"
         "set yrange [0:*]\n"
         "set grid ytics\n"
         "plot '"
      << csv_path
      << "' every ::1 using 3:4:xtic(1) title 'msim reproduction'\n";
}

}  // namespace msim::report
