// Gnuplot script emission for the paper's two graphical artifacts.
//
// The figure benches write CSV series; these helpers emit matching gnuplot
// scripts so `gnuplot fig1_maps.gp` reproduces the paper's Figure 1 plot
// (log-x bandwidth curves) and Figure 2 (the Table-4 bar chart) from the
// CSVs, with no plotting dependency inside msim itself.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace msim::report {

/// Script plotting a MAPS CSV (working_set_bytes, one bandwidth column per
/// system) as Figure 1: log2 x-axis in bytes, GB/s on y.
void write_fig1_gnuplot(std::ostream& out, const std::string& csv_path,
                        const std::vector<std::string>& systems);

/// Script plotting the Table-4 CSV (metric, description, mean, stddev) as
/// Figure 2: a bar chart of average absolute error with error bars.
void write_fig2_gnuplot(std::ostream& out, const std::string& csv_path);

}  // namespace msim::report
