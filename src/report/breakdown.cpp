#include "report/breakdown.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace msim::report {

TimeShares time_shares(const simulate::RunResult& run) {
  double flop = 0.0, memory = 0.0, tlb = 0.0, accounted = 0.0;
  for (const auto& phase : run.per_timestep) {
    for (const auto& block : phase.blocks) {
      // Attribute the block to its dominant resource.
      if (block.flop_seconds >= block.memory_seconds + block.tlb_seconds) {
        flop += block.total_seconds;
      } else {
        const double mem_side = block.memory_seconds + block.tlb_seconds;
        MSIM_CHECK(mem_side > 0.0, "memory-bound block with zero time");
        memory += block.total_seconds * (block.memory_seconds / mem_side);
        tlb += block.total_seconds * (block.tlb_seconds / mem_side);
      }
      accounted += block.total_seconds;
    }
  }
  double comm = 0.0;
  double total = 0.0;
  for (const auto& phase : run.per_timestep) {
    comm += phase.comm_seconds;
    total += phase.total_seconds();
  }
  MSIM_REQUIRE(total > 0.0, "run has zero time");

  TimeShares shares;
  shares.flop = flop / total;
  shares.memory = memory / total;
  shares.tlb = tlb / total;
  shares.comm = comm / total;
  shares.other =
      1.0 - (shares.flop + shares.memory + shares.tlb + shares.comm);
  // Imbalance scales block time up after attribution; fold the residual
  // into 'other' but never negative beyond rounding.
  MSIM_CHECK(shares.other > -1e-6, "time shares exceed the total");
  if (shares.other < 0.0) shares.other = 0.0;
  return shares;
}

std::string render_breakdown(const workload::AppModel& app,
                             const machine::MachineConfig& machine,
                             const simulate::ExecutorOptions& options) {
  const simulate::RunResult run = simulate::execute(app, machine, options);

  AsciiTable table({"Phase / block", "Flop (s)", "Memory (s)", "TLB (s)",
                    "Total (s)", "Bound by"});
  for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::Right);

  for (const auto& phase : run.per_timestep) {
    for (const auto& block : phase.blocks) {
      const bool flop_bound =
          block.flop_seconds >= block.memory_seconds + block.tlb_seconds;
      table.add_row({"  " + block.block,
                     AsciiTable::num(block.flop_seconds, 3),
                     AsciiTable::num(block.memory_seconds, 3),
                     AsciiTable::num(block.tlb_seconds, 3),
                     AsciiTable::num(block.total_seconds, 3),
                     flop_bound ? "flops" : "memory"});
    }
    table.add_row({phase.phase + " comm", "-", "-", "-",
                   AsciiTable::num(phase.comm_seconds, 3), "network"});
    table.add_rule();
  }

  const TimeShares shares = time_shares(run);
  std::ostringstream os;
  os << app.name << " @ " << app.nprocs << " CPUs on " << machine.name
     << " — " << AsciiTable::num(run.wall_seconds, 0)
     << " s total (per-timestep breakdown):\n"
     << table.render();
  os << "Shares: flops " << AsciiTable::num(shares.flop * 100, 0)
     << "%, memory " << AsciiTable::num(shares.memory * 100, 0)
     << "%, TLB " << AsciiTable::num(shares.tlb * 100, 0) << "%, comm "
     << AsciiTable::num(shares.comm * 100, 0) << "%, overlap/imbalance "
     << AsciiTable::num(shares.other * 100, 0) << "%\n";
  return os.str();
}

std::string render_bottleneck_summary(
    const workload::AppModel& app,
    const std::vector<machine::MachineConfig>& machines,
    const simulate::ExecutorOptions& options) {
  MSIM_REQUIRE(!machines.empty(), "need at least one machine");
  AsciiTable table({"Machine", "Wall (s)", "Flop %", "Memory %", "TLB %",
                    "Comm %"});
  for (std::size_t c = 1; c < 6; ++c) table.set_align(c, Align::Right);
  for (const auto& machine : machines) {
    const auto run = simulate::execute(app, machine, options);
    const TimeShares shares = time_shares(run);
    table.add_row({machine.name, AsciiTable::num(run.wall_seconds, 0),
                   AsciiTable::num(shares.flop * 100, 0),
                   AsciiTable::num(shares.memory * 100, 0),
                   AsciiTable::num(shares.tlb * 100, 0),
                   AsciiTable::num(shares.comm * 100, 0)});
  }
  std::ostringstream os;
  os << "Bottlenecks for " << app.name << " @ " << app.nprocs
     << " CPUs:\n"
     << table.render();
  return os.str();
}

}  // namespace msim::report
