#include "trace/stride_detector.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace msim::trace {

double StrideCounts::unit_fraction() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(unit) / static_cast<double>(n);
}

double StrideCounts::short_fraction() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(short_) / static_cast<double>(n);
}

double StrideCounts::random_fraction() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(random) / static_cast<double>(n);
}

StrideDetector::StrideDetector(std::uint32_t element_bytes,
                               int short_threshold)
    : element_bytes_(element_bytes),
      short_threshold_bytes_(static_cast<std::int64_t>(element_bytes) *
                             short_threshold) {
  MSIM_REQUIRE(element_bytes > 0, "element size must be positive");
  MSIM_REQUIRE(short_threshold >= 1, "short threshold must be >= 1");
}

void StrideDetector::observe(const TaggedRef& ref) {
  observe_batch(&ref, 1);
}

void StrideDetector::observe_batch(const TaggedRef* refs,
                                   std::size_t count) {
  // Local accumulators: the compiler keeps them in registers across the
  // batch instead of updating counts_ through a pointer every reference.
  std::uint64_t unit = 0;
  std::uint64_t short_ = 0;
  std::uint64_t random = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t pc = refs[i].pc;
    const std::uint64_t address = refs[i].address;
    if (pc >= seen_.size()) {
      seen_.resize(pc + 1, 0);
      last_address_.resize(pc + 1, 0);
    }
    if (seen_[pc] == 0) {
      // No history for this PC yet: conservatively random (real detectors
      // warm up the same way; the bias vanishes for long streams).
      seen_[pc] = 1;
      last_address_[pc] = address;
      ++random;
      continue;
    }
    const std::int64_t delta = static_cast<std::int64_t>(address) -
                               static_cast<std::int64_t>(last_address_[pc]);
    last_address_[pc] = address;

    const std::int64_t magnitude = std::llabs(delta);
    if (magnitude == element_bytes_) {
      ++unit;
    } else if (magnitude != 0 && magnitude <= short_threshold_bytes_ &&
               magnitude % element_bytes_ == 0) {
      ++short_;
    } else {
      ++random;
    }
  }
  counts_.unit += unit;
  counts_.short_ += short_;
  counts_.random += random;
}

void StrideDetector::reset() {
  counts_ = StrideCounts{};
  last_address_.clear();
  seen_.clear();
}

}  // namespace msim::trace
