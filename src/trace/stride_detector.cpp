#include "trace/stride_detector.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace msim::trace {

double StrideCounts::unit_fraction() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(unit) / static_cast<double>(n);
}

double StrideCounts::short_fraction() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(short_) / static_cast<double>(n);
}

double StrideCounts::random_fraction() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(random) / static_cast<double>(n);
}

StrideDetector::StrideDetector(std::uint32_t element_bytes,
                               int short_threshold)
    : element_bytes_(element_bytes),
      short_threshold_bytes_(static_cast<std::int64_t>(element_bytes) *
                             short_threshold) {
  MSIM_REQUIRE(element_bytes > 0, "element size must be positive");
  MSIM_REQUIRE(short_threshold >= 1, "short threshold must be >= 1");
}

void StrideDetector::observe(const TaggedRef& ref) {
  const auto [it, inserted] = last_address_.try_emplace(ref.pc, ref.address);
  if (inserted) {
    // No history for this PC yet: conservatively random (real detectors
    // warm up the same way; the bias vanishes for long streams).
    ++counts_.random;
    return;
  }
  const std::int64_t delta = static_cast<std::int64_t>(ref.address) -
                             static_cast<std::int64_t>(it->second);
  it->second = ref.address;

  const std::int64_t magnitude = std::llabs(delta);
  if (magnitude == element_bytes_) {
    ++counts_.unit;
  } else if (magnitude != 0 && magnitude <= short_threshold_bytes_ &&
             magnitude % element_bytes_ == 0) {
    ++counts_.short_;
  } else {
    ++counts_.random;
  }
}

void StrideDetector::reset() {
  counts_ = StrideCounts{};
  last_address_.clear();
}

}  // namespace msim::trace
