// Cross-count signature scaling.
//
// Tracing at large processor counts is the most expensive part of the
// methodology. A standard practice (and a natural extension of the paper)
// is to trace an application at two *small* counts and extrapolate the
// signature to the counts you actually care about: with strong scaling,
// per-block operation counts, working sets and halo sizes follow power
// laws in the processor count, so two traced points determine each
// exponent. This module fits those per-block power laws and synthesizes a
// signature for an untraced count — everything downstream (the convolver,
// the metrics) works unchanged.
#pragma once

#include "trace/signature.hpp"

namespace msim::trace {

/// Fit x(p) = x_a * (p/p_a)^e through (p_a, x_a) and (p_b, x_b) and
/// evaluate at p. Exact for any power law, including constants (e = 0).
/// Zero values are carried through as zero.
[[nodiscard]] double power_law_scale(double x_a, int p_a, double x_b,
                                     int p_b, int p);

/// Synthesize the signature at `target_nprocs` from two traced counts.
/// Requirements: same application, same base system, same block and phase
/// structure, distinct counts. Fractions are interpolated linearly in
/// log(p) and re-normalized; boolean analysis verdicts are taken from the
/// trace nearest the target.
[[nodiscard]] ApplicationSignature scale_signature(
    const ApplicationSignature& first, const ApplicationSignature& second,
    int target_nprocs);

}  // namespace msim::trace
