// MetaSim-Tracer analog: produce an ApplicationSignature by observing the
// application's reference streams, not by reading its spec.
//
// For each basic block the tracer:
//  1. samples `sample_refs` PC-tagged references from the block's address
//     generator (instrumented execution on the base system);
//  2. classifies them with the stride detector;
//  3. estimates the working set with the per-PC extent estimator;
//  4. copies the exact flop / reference / branch counts (hardware counters
//     and instrumentation count exactly);
//  5. asks the static analyzer for a dependency verdict.
// Communication is recorded exactly (MPIDTRACE sees every MPI call).
#pragma once

#include <cstdint>

#include "trace/signature.hpp"
#include "trace/static_analysis.hpp"
#include "workload/basic_block.hpp"

namespace msim::trace {

struct TracerOptions {
  /// References sampled per basic block. Larger samples reduce stride and
  /// working-set estimation error but dilate (simulated) tracing time.
  std::uint64_t sample_refs = 1u << 18;
  /// Largest stride (elements) classified as "short" (paper: 8).
  int short_stride_threshold = 8;
  std::uint64_t seed = 0x7ace5eedull;
  StaticAnalyzer analyzer{};
};

/// Trace one basic block.
[[nodiscard]] BlockSignature trace_block(const workload::BasicBlock& block,
                                         const std::string& phase,
                                         const TracerOptions& options = {});

/// Trace a full application instantiation on the named base system.
[[nodiscard]] ApplicationSignature trace_application(
    const workload::AppModel& app, const std::string& base_system,
    const TracerOptions& options = {});

}  // namespace msim::trace
