// Static dependency analysis of basic blocks.
//
// Metric #9 needs to know which loops are ILP-limited by loop-carried
// dependences or internal branches. The paper obtained this by static
// analysis of the binary ("so ILP limited basic blocks could be
// identified"). Static analysis is imperfect — aliasing hides some
// dependences and spurious ones are reported — so the analyzer has tunable
// false-negative and false-positive rates, drawn deterministically per
// block name. Setting both rates to zero models a perfect analyzer
// (useful as an ablation of how much of #9's residual error it causes).
#pragma once

#include "workload/basic_block.hpp"

namespace msim::trace {

class StaticAnalyzer {
 public:
  /// Rates in [0, 1]: a false negative misses a real serial dependence; a
  /// false positive flags an independent loop as dependence-limited.
  explicit StaticAnalyzer(double false_negative_rate = 0.10,
                          double false_positive_rate = 0.05,
                          std::uint64_t seed = 0x5ca1ab1e);

  /// Verdict: is this block's inner loop dependency-limited?
  [[nodiscard]] bool dependency_limited(
      const workload::BasicBlock& block) const;

  // Accessors for the analyzer's identity (the pipeline hashes these into
  // trace-stage cache keys; two analyzers with equal rates and seed give
  // equal verdicts).
  [[nodiscard]] double false_negative_rate() const {
    return false_negative_rate_;
  }
  [[nodiscard]] double false_positive_rate() const {
    return false_positive_rate_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  double false_negative_rate_;
  double false_positive_rate_;
  std::uint64_t seed_;
};

}  // namespace msim::trace
