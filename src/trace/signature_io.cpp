#include "trace/signature_io.hpp"

#include <map>
#include <sstream>

#include "common/check.hpp"

namespace msim::trace {

namespace {

netsim::CommType comm_type_from_string(const std::string& name) {
  for (auto type : {netsim::CommType::PointToPoint,
                    netsim::CommType::AllReduce, netsim::CommType::Broadcast,
                    netsim::CommType::AllToAll, netsim::CommType::Barrier}) {
    if (netsim::to_string(type) == name) return type;
  }
  throw precondition_error("unknown comm type '" + name + "'");
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    MSIM_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw precondition_error("bad number for '" + key + "': " + value);
  }
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const auto parsed = std::stoull(value, &used);
    MSIM_REQUIRE(used == value.size(), "trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw precondition_error("bad integer for '" + key + "': " + value);
  }
}

}  // namespace

std::string to_text(const ApplicationSignature& signature) {
  std::ostringstream os;
  // Full precision: the stride fractions and branch densities are measured
  // data; the archive must round-trip bitwise so cached signatures predict
  // exactly what freshly traced ones do.
  os.precision(17);
  os << "# msim application signature\n";
  os << "app = " << signature.app << '\n';
  os << "nprocs = " << signature.nprocs << '\n';
  os << "timesteps = " << signature.timesteps << '\n';
  os << "traced_on = " << signature.traced_on << '\n';
  os << "blocks = " << signature.blocks.size() << '\n';
  for (std::size_t i = 0; i < signature.blocks.size(); ++i) {
    const BlockView block = signature.blocks[i];
    const std::string prefix = "block." + std::to_string(i) + '.';
    os << prefix << "name = " << block.name() << '\n';
    os << prefix << "phase = " << block.phase() << '\n';
    os << prefix << "flops = " << block.flops() << '\n';
    os << prefix << "refs = " << block.refs() << '\n';
    os << prefix << "element_bytes = " << block.element_bytes() << '\n';
    os << prefix << "unit_fraction = " << block.unit_fraction() << '\n';
    os << prefix << "short_fraction = " << block.short_fraction() << '\n';
    os << prefix << "random_fraction = " << block.random_fraction() << '\n';
    os << prefix << "working_set_estimate = "
       << block.working_set_estimate() << '\n';
    os << prefix << "working_set_is_lower_bound = "
       << (block.working_set_is_lower_bound() ? 1 : 0) << '\n';
    os << prefix << "branch_density = " << block.branch_density() << '\n';
    os << prefix << "dependency_limited = "
       << (block.dependency_limited() ? 1 : 0) << '\n';
  }
  os << "phases = " << signature.comm.size() << '\n';
  for (std::size_t p = 0; p < signature.comm.size(); ++p) {
    const auto& phase = signature.comm[p];
    const std::string phase_prefix = "phase." + std::to_string(p) + '.';
    os << phase_prefix << "name = " << phase.phase << '\n';
    os << phase_prefix << "events = " << phase.events.size() << '\n';
    for (std::size_t e = 0; e < phase.events.size(); ++e) {
      const auto& event = phase.events[e];
      const std::string prefix =
          phase_prefix + "event." + std::to_string(e) + '.';
      os << prefix << "type = " << netsim::to_string(event.type) << '\n';
      os << prefix << "bytes = " << event.bytes << '\n';
      os << prefix << "count = " << event.count << '\n';
    }
  }
  return os.str();
}

ApplicationSignature signature_from_text(const std::string& text) {
  std::map<std::string, std::string> pairs;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    MSIM_REQUIRE(eq != std::string::npos, "missing '=' in: " + line);
    const std::string key = trim(line.substr(0, eq));
    MSIM_REQUIRE(pairs.emplace(key, trim(line.substr(eq + 1))).second,
                 "duplicate key '" + key + "'");
  }
  auto take = [&pairs](const std::string& key) {
    const auto it = pairs.find(key);
    MSIM_REQUIRE(it != pairs.end(), "missing key '" + key + "'");
    std::string value = it->second;
    pairs.erase(it);
    return value;
  };

  ApplicationSignature signature;
  signature.app = take("app");
  signature.nprocs = static_cast<int>(parse_u64("nprocs", take("nprocs")));
  signature.timesteps =
      static_cast<int>(parse_u64("timesteps", take("timesteps")));
  signature.traced_on = take("traced_on");

  const std::uint64_t block_count = parse_u64("blocks", take("blocks"));
  for (std::uint64_t i = 0; i < block_count; ++i) {
    const std::string prefix = "block." + std::to_string(i) + '.';
    BlockSignature block;
    block.name = take(prefix + "name");
    block.phase = take(prefix + "phase");
    block.flops = parse_u64(prefix + "flops", take(prefix + "flops"));
    block.refs = parse_u64(prefix + "refs", take(prefix + "refs"));
    block.element_bytes = static_cast<std::uint32_t>(
        parse_u64(prefix + "element_bytes", take(prefix + "element_bytes")));
    block.unit_fraction =
        parse_double(prefix + "unit_fraction", take(prefix + "unit_fraction"));
    block.short_fraction = parse_double(prefix + "short_fraction",
                                        take(prefix + "short_fraction"));
    block.random_fraction = parse_double(prefix + "random_fraction",
                                         take(prefix + "random_fraction"));
    block.working_set_estimate =
        parse_u64(prefix + "working_set_estimate",
                  take(prefix + "working_set_estimate"));
    block.working_set_is_lower_bound =
        parse_u64(prefix + "working_set_is_lower_bound",
                  take(prefix + "working_set_is_lower_bound")) != 0;
    block.branch_density = parse_double(prefix + "branch_density",
                                        take(prefix + "branch_density"));
    block.dependency_limited =
        parse_u64(prefix + "dependency_limited",
                  take(prefix + "dependency_limited")) != 0;
    signature.blocks.push_back(std::move(block));
  }

  const std::uint64_t phase_count = parse_u64("phases", take("phases"));
  for (std::uint64_t p = 0; p < phase_count; ++p) {
    const std::string phase_prefix = "phase." + std::to_string(p) + '.';
    PhaseComm phase;
    phase.phase = take(phase_prefix + "name");
    const std::uint64_t event_count =
        parse_u64(phase_prefix + "events", take(phase_prefix + "events"));
    for (std::uint64_t e = 0; e < event_count; ++e) {
      const std::string prefix =
          phase_prefix + "event." + std::to_string(e) + '.';
      netsim::CommEvent event;
      event.type = comm_type_from_string(take(prefix + "type"));
      event.bytes = parse_u64(prefix + "bytes", take(prefix + "bytes"));
      event.count = parse_u64(prefix + "count", take(prefix + "count"));
      phase.events.push_back(event);
    }
    signature.comm.push_back(std::move(phase));
  }

  MSIM_REQUIRE(pairs.empty(),
               "unknown key '" + pairs.begin()->first + "' in signature");
  return signature;
}

}  // namespace msim::trace
