#include "trace/tracer.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "memsim/address_stream.hpp"
#include "trace/stride_detector.hpp"
#include "trace/working_set_estimator.hpp"

namespace msim::trace {

BlockSignature trace_block(const workload::BasicBlock& block,
                           const std::string& phase,
                           const TracerOptions& options) {
  workload::validate(block);
  MSIM_REQUIRE(options.sample_refs > 0, "sample size must be positive");

  // Deterministic per-block sampling seed.
  std::uint64_t seed = options.seed;
  for (char ch : block.name) seed = mix64(seed, static_cast<std::uint64_t>(ch));

  memsim::AddressGenerator generator(block.stream_spec(), seed);
  StrideDetector detector(block.element_bytes,
                          options.short_stride_threshold);
  WorkingSetEstimator extents(block.element_bytes);

  const std::uint64_t refs_per_timestep =
      block.refs_per_iteration * block.iterations;
  const std::uint64_t samples =
      std::min<std::uint64_t>(options.sample_refs, refs_per_timestep);
  // Feed the analyzers in batches: generation fills a flat buffer, then
  // each analyzer strides it in a tight loop. Observation order — and so
  // every count and estimate — is identical to the one-at-a-time form.
  constexpr std::uint64_t kBatchRefs = 4096;
  std::vector<TaggedRef> batch(
      static_cast<std::size_t>(std::min(samples, kBatchRefs)));
  std::uint64_t remaining = samples;
  while (remaining > 0) {
    const std::size_t count =
        static_cast<std::size_t>(std::min(remaining, kBatchRefs));
    for (std::size_t i = 0; i < count; ++i) {
      const memsim::TaggedAddress ref = generator.next_tagged();
      batch[i] = TaggedRef{.pc = ref.stream_id, .address = ref.address};
    }
    detector.observe_batch(batch.data(), count);
    extents.observe_batch(batch.data(), count);
    remaining -= count;
  }

  const StrideCounts& counts = detector.counts();
  const ExtentEstimate extent = extents.estimate();

  BlockSignature signature;
  signature.name = block.name;
  signature.phase = phase;
  signature.flops = block.flops_per_timestep();
  signature.refs = refs_per_timestep;
  signature.element_bytes = block.element_bytes;
  signature.unit_fraction = counts.unit_fraction();
  signature.short_fraction = counts.short_fraction();
  signature.random_fraction = counts.random_fraction();
  signature.working_set_estimate =
      std::max<std::uint64_t>(extent.bytes, block.element_bytes);
  signature.working_set_is_lower_bound = extent.is_lower_bound;
  signature.branch_density = block.branch_density;  // counted exactly
  signature.dependency_limited = options.analyzer.dependency_limited(block);
  return signature;
}

ApplicationSignature trace_application(const workload::AppModel& app,
                                       const std::string& base_system,
                                       const TracerOptions& options) {
  workload::validate(app);
  ApplicationSignature signature;
  signature.app = app.name;
  signature.nprocs = app.nprocs;
  signature.timesteps = app.timesteps;
  signature.traced_on = base_system;
  std::size_t block_count = 0;
  for (const auto& phase : app.phases) block_count += phase.blocks.size();
  signature.blocks.reserve(block_count);
  for (const auto& phase : app.phases) {
    for (const auto& block : phase.blocks) {
      signature.blocks.push_back(trace_block(block, phase.name, options));
    }
    // MPIDTRACE records every communication event exactly.
    signature.comm.push_back(
        PhaseComm{.phase = phase.name, .events = phase.comm});
  }
  return signature;
}

}  // namespace msim::trace
