#include "trace/static_analysis.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace msim::trace {

StaticAnalyzer::StaticAnalyzer(double false_negative_rate,
                               double false_positive_rate,
                               std::uint64_t seed)
    : false_negative_rate_(false_negative_rate),
      false_positive_rate_(false_positive_rate),
      seed_(seed) {
  MSIM_REQUIRE(false_negative_rate >= 0.0 && false_negative_rate <= 1.0,
               "false negative rate must be in [0, 1]");
  MSIM_REQUIRE(false_positive_rate >= 0.0 && false_positive_rate <= 1.0,
               "false positive rate must be in [0, 1]");
}

bool StaticAnalyzer::dependency_limited(
    const workload::BasicBlock& block) const {
  // Deterministic per-block draw: the same block always gets the same
  // verdict, as a real analyzer would.
  std::uint64_t h = seed_;
  for (char ch : block.name) h = mix64(h, static_cast<std::uint64_t>(ch));
  const double draw =
      static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;

  const bool truly_serial =
      block.dependency == memsim::DependencyClass::Serial;
  if (truly_serial) return draw >= false_negative_rate_;
  return draw < false_positive_rate_;
}

}  // namespace msim::trace
