// Tracing-cost model (paper Section 3).
//
// "MetaSim has been carefully streamlined for speed, imposing approximately
// a 30x slowdown on an instrumented application" — and tracing is a
// non-recurring cost paid once per application on the base system. This
// model quantifies the paper's "was the increase in accuracy worth the
// effort?" question for the tracing-cost bench (E7).
#pragma once

#include <cstdint>

namespace msim::trace {

struct DilationModel {
  /// Execution-time multiplier of full memory tracing (Metrics #6-#9).
  double memory_trace_slowdown = 30.0;
  /// Multiplier of counter-only runs (Metrics #4-#5 use hardware
  /// performance counters; overhead is negligible).
  double counter_slowdown = 1.02;
};

/// What each metric family costs to prepare, in base-system CPU-hours.
struct TracingCost {
  double counter_hours = 0.0;  ///< Metrics #4-#5
  double memory_hours = 0.0;   ///< Metrics #6-#9
};

/// Cost of preparing predictions for an application whose untraced runtime
/// on the base system is `base_seconds` at `nprocs` processors.
[[nodiscard]] TracingCost tracing_cost(double base_seconds, int nprocs,
                                       const DilationModel& model = {});

}  // namespace msim::trace
