// Text (de)serialization for application signatures.
//
// Tracing is the expensive step of the methodology (30x dilation on the
// base system); real workflows trace once and archive the signature. This
// is the archive format: the same "dotted.key = value" style as machine
// configs, lossless for everything the convolver consumes.
#pragma once

#include <string>

#include "trace/signature.hpp"

namespace msim::trace {

/// Serialize a signature to text.
[[nodiscard]] std::string to_text(const ApplicationSignature& signature);

/// Parse a signature; throws precondition_error on malformed input.
[[nodiscard]] ApplicationSignature signature_from_text(
    const std::string& text);

}  // namespace msim::trace
