#include "trace/signature.hpp"

namespace msim::trace {

std::uint64_t ApplicationSignature::total_flops_per_timestep() const {
  std::uint64_t total = 0;
  for (const auto& block : blocks) total += block.flops;
  return total;
}

std::uint64_t ApplicationSignature::total_bytes_per_timestep() const {
  std::uint64_t total = 0;
  for (const auto& block : blocks) total += block.bytes();
  return total;
}

}  // namespace msim::trace
