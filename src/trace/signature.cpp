#include "trace/signature.hpp"

#include <utility>

namespace msim::trace {

void BlockColumns::reserve(std::size_t count) {
  name.reserve(count);
  phase.reserve(count);
  flops.reserve(count);
  refs.reserve(count);
  element_bytes.reserve(count);
  unit_fraction.reserve(count);
  short_fraction.reserve(count);
  random_fraction.reserve(count);
  working_set_estimate.reserve(count);
  working_set_is_lower_bound.reserve(count);
  branch_density.reserve(count);
  dependency_limited.reserve(count);
}

void BlockColumns::clear() {
  name.clear();
  phase.clear();
  flops.clear();
  refs.clear();
  element_bytes.clear();
  unit_fraction.clear();
  short_fraction.clear();
  random_fraction.clear();
  working_set_estimate.clear();
  working_set_is_lower_bound.clear();
  branch_density.clear();
  dependency_limited.clear();
}

void BlockColumns::push_back(const BlockSignature& row) {
  name.push_back(row.name);
  phase.push_back(row.phase);
  flops.push_back(row.flops);
  refs.push_back(row.refs);
  element_bytes.push_back(row.element_bytes);
  unit_fraction.push_back(row.unit_fraction);
  short_fraction.push_back(row.short_fraction);
  random_fraction.push_back(row.random_fraction);
  working_set_estimate.push_back(row.working_set_estimate);
  working_set_is_lower_bound.push_back(row.working_set_is_lower_bound ? 1
                                                                      : 0);
  branch_density.push_back(row.branch_density);
  dependency_limited.push_back(row.dependency_limited ? 1 : 0);
}

void BlockColumns::push_back(BlockSignature&& row) {
  name.push_back(std::move(row.name));
  phase.push_back(std::move(row.phase));
  flops.push_back(row.flops);
  refs.push_back(row.refs);
  element_bytes.push_back(row.element_bytes);
  unit_fraction.push_back(row.unit_fraction);
  short_fraction.push_back(row.short_fraction);
  random_fraction.push_back(row.random_fraction);
  working_set_estimate.push_back(row.working_set_estimate);
  working_set_is_lower_bound.push_back(row.working_set_is_lower_bound ? 1
                                                                      : 0);
  branch_density.push_back(row.branch_density);
  dependency_limited.push_back(row.dependency_limited ? 1 : 0);
}

BlockSignature BlockColumns::row(std::size_t index) const {
  BlockSignature out;
  out.name = name[index];
  out.phase = phase[index];
  out.flops = flops[index];
  out.refs = refs[index];
  out.element_bytes = element_bytes[index];
  out.unit_fraction = unit_fraction[index];
  out.short_fraction = short_fraction[index];
  out.random_fraction = random_fraction[index];
  out.working_set_estimate = working_set_estimate[index];
  out.working_set_is_lower_bound = working_set_is_lower_bound[index] != 0;
  out.branch_density = branch_density[index];
  out.dependency_limited = dependency_limited[index] != 0;
  return out;
}

std::uint64_t ApplicationSignature::total_flops_per_timestep() const {
  std::uint64_t total = 0;
  for (std::uint64_t value : blocks.flops) total += value;
  return total;
}

std::uint64_t ApplicationSignature::total_bytes_per_timestep() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    total += blocks.refs[i] * blocks.element_bytes[i];
  }
  return total;
}

}  // namespace msim::trace
