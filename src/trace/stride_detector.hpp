// Stride detection over an observed, PC-tagged address stream.
//
// The paper: "MetaSim Tracer parses the address stream with a stride
// detector, thus determining what portion of memory references are stride-1,
// non-unit short strides (up to stride-8), and random stride." Real tracers
// see the program counter of each reference, so interleaved access streams
// separate naturally by PC; we model that with a small integer tag per
// reference. Classification is purely from observed deltas — the detector
// has no access to the workload's generative spec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "memsim/access_types.hpp"

namespace msim::trace {

/// A single observed reference: the issuing instruction and the address.
struct TaggedRef {
  std::uint32_t pc = 0;
  std::uint64_t address = 0;
};

/// Counts of references per stride bin.
struct StrideCounts {
  std::uint64_t unit = 0;
  std::uint64_t short_ = 0;
  std::uint64_t random = 0;

  [[nodiscard]] std::uint64_t total() const { return unit + short_ + random; }
  [[nodiscard]] double unit_fraction() const;
  [[nodiscard]] double short_fraction() const;
  [[nodiscard]] double random_fraction() const;
};

/// Streaming stride classifier.
class StrideDetector {
 public:
  /// `element_bytes` is the reference granularity; `short_threshold` is the
  /// largest stride (in elements) still binned as "short" (paper: 8).
  explicit StrideDetector(std::uint32_t element_bytes = 8,
                          int short_threshold = 8);

  /// Observe one reference and bin it. The first reference of each PC has
  /// no delta and is binned conservatively as random.
  void observe(const TaggedRef& ref);

  /// Classify a contiguous run of references: identical binning to calling
  /// observe() per element, but the inner loop strides flat per-PC history
  /// columns instead of chasing a hash table.
  void observe_batch(const TaggedRef* refs, std::size_t count);

  [[nodiscard]] const StrideCounts& counts() const { return counts_; }

  void reset();

 private:
  std::uint32_t element_bytes_;
  std::int64_t short_threshold_bytes_;
  StrideCounts counts_;
  // Dense per-PC history, indexed by pc: stream ids are small component
  // indices, so a flat table beats hashing on every reference.
  std::vector<std::uint64_t> last_address_;
  std::vector<std::uint8_t> seen_;
};

}  // namespace msim::trace
