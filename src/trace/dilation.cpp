#include "trace/dilation.hpp"

#include "common/check.hpp"

namespace msim::trace {

TracingCost tracing_cost(double base_seconds, int nprocs,
                         const DilationModel& model) {
  MSIM_REQUIRE(base_seconds > 0.0, "base runtime must be positive");
  MSIM_REQUIRE(nprocs > 0, "nprocs must be positive");
  const double cpu_hours =
      base_seconds * static_cast<double>(nprocs) / 3600.0;
  return TracingCost{
      .counter_hours = cpu_hours * model.counter_slowdown,
      .memory_hours = cpu_hours * model.memory_trace_slowdown,
  };
}

}  // namespace msim::trace
