#include "trace/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace msim::trace {

double power_law_scale(double x_a, int p_a, double x_b, int p_b, int p) {
  MSIM_REQUIRE(p_a > 0 && p_b > 0 && p > 0, "counts must be positive");
  MSIM_REQUIRE(p_a != p_b, "need two distinct counts to fit");
  MSIM_REQUIRE(x_a >= 0.0 && x_b >= 0.0, "values must be non-negative");
  if (x_a == 0.0 || x_b == 0.0) return 0.0;
  const double exponent = std::log(x_b / x_a) /
                          std::log(static_cast<double>(p_b) / p_a);
  return x_a * std::pow(static_cast<double>(p) / p_a, exponent);
}

namespace {

std::uint64_t scale_u64(std::uint64_t x_a, int p_a, std::uint64_t x_b,
                        int p_b, int p) {
  const double scaled = power_law_scale(static_cast<double>(x_a), p_a,
                                        static_cast<double>(x_b), p_b, p);
  return static_cast<std::uint64_t>(scaled + 0.5);
}

/// Linear interpolation/extrapolation weight of `p` between p_a and p_b in
/// log space: 0 at p_a, 1 at p_b.
double log_weight(int p_a, int p_b, int p) {
  return std::log(static_cast<double>(p) / p_a) /
         std::log(static_cast<double>(p_b) / p_a);
}

}  // namespace

ApplicationSignature scale_signature(const ApplicationSignature& first,
                                     const ApplicationSignature& second,
                                     int target_nprocs) {
  MSIM_REQUIRE(first.app == second.app, "signatures are different apps");
  MSIM_REQUIRE(first.traced_on == second.traced_on,
               "signatures traced on different base systems");
  MSIM_REQUIRE(first.nprocs != second.nprocs,
               "need traces at two distinct counts");
  MSIM_REQUIRE(target_nprocs > 0, "target count must be positive");
  MSIM_REQUIRE(first.blocks.size() == second.blocks.size(),
               "signatures have different block structure");
  MSIM_REQUIRE(first.comm.size() == second.comm.size(),
               "signatures have different phase structure");
  MSIM_REQUIRE(first.timesteps == second.timesteps,
               "signatures have different timestep counts");

  const int p_a = first.nprocs;
  const int p_b = second.nprocs;
  const int p = target_nprocs;
  const double w = log_weight(p_a, p_b, p);
  const bool nearer_second =
      std::abs(std::log(static_cast<double>(p) / p_b)) <
      std::abs(std::log(static_cast<double>(p) / p_a));

  ApplicationSignature scaled;
  scaled.app = first.app;
  scaled.nprocs = p;
  scaled.timesteps = first.timesteps;
  scaled.traced_on = first.traced_on;

  scaled.blocks.reserve(first.blocks.size());
  for (std::size_t i = 0; i < first.blocks.size(); ++i) {
    const BlockView a = first.blocks[i];
    const BlockView b = second.blocks[i];
    MSIM_REQUIRE(a.name() == b.name(), "block order mismatch: " + a.name());

    BlockSignature block;
    block.name = a.name();
    block.phase = a.phase();
    block.element_bytes = a.element_bytes();
    block.flops = scale_u64(a.flops(), p_a, b.flops(), p_b, p);
    block.refs = scale_u64(a.refs(), p_a, b.refs(), p_b, p);
    block.working_set_estimate = std::max<std::uint64_t>(
        scale_u64(a.working_set_estimate(), p_a, b.working_set_estimate(),
                  p_b, p),
        a.element_bytes());

    // Stride fractions drift slowly with count (halo-to-volume effects);
    // interpolate linearly in log p and re-normalize.
    double unit =
        a.unit_fraction() + w * (b.unit_fraction() - a.unit_fraction());
    double short_f =
        a.short_fraction() + w * (b.short_fraction() - a.short_fraction());
    double random =
        a.random_fraction() + w * (b.random_fraction() - a.random_fraction());
    unit = std::max(unit, 0.0);
    short_f = std::max(short_f, 0.0);
    random = std::max(random, 0.0);
    const double total = unit + short_f + random;
    MSIM_CHECK(total > 0.0, "scaled fractions vanished: " + a.name());
    block.unit_fraction = unit / total;
    block.short_fraction = short_f / total;
    block.random_fraction = random / total;

    block.branch_density =
        a.branch_density() + w * (b.branch_density() - a.branch_density());
    block.working_set_is_lower_bound =
        a.working_set_is_lower_bound() || b.working_set_is_lower_bound();
    block.dependency_limited = nearer_second ? b.dependency_limited()
                                             : a.dependency_limited();
    scaled.blocks.push_back(std::move(block));
  }

  for (std::size_t phase = 0; phase < first.comm.size(); ++phase) {
    const auto& a = first.comm[phase];
    const auto& b = second.comm[phase];
    MSIM_REQUIRE(a.phase == b.phase, "phase order mismatch: " + a.phase);
    MSIM_REQUIRE(a.events.size() == b.events.size(),
                 "comm schedule mismatch in phase " + a.phase);
    PhaseComm out;
    out.phase = a.phase;
    for (std::size_t e = 0; e < a.events.size(); ++e) {
      MSIM_REQUIRE(a.events[e].type == b.events[e].type,
                   "comm event type mismatch in phase " + a.phase);
      netsim::CommEvent event;
      event.type = a.events[e].type;
      event.bytes =
          scale_u64(a.events[e].bytes, p_a, b.events[e].bytes, p_b, p);
      event.count =
          scale_u64(a.events[e].count, p_a, b.events[e].count, p_b, p);
      out.events.push_back(event);
    }
    scaled.comm.push_back(std::move(out));
  }
  return scaled;
}

}  // namespace msim::trace
