#include "trace/working_set_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace msim::trace {

double invert_unique_count(std::uint64_t unique, std::uint64_t draws,
                           double cap) {
  MSIM_REQUIRE(unique <= draws, "unique count cannot exceed draws");
  if (draws == 0) return 0.0;
  const double u = static_cast<double>(unique);
  const double n = static_cast<double>(draws);
  if (unique == draws) return cap;  // no collisions: unbounded above

  // Solve u = L (1 - exp(-n/L)) for L by Newton iteration on
  // f(L) = L (1 - exp(-n/L)) - u. f is increasing in L.
  double estimate = std::max(u, 1.0);
  for (int iter = 0; iter < 64; ++iter) {
    const double e = std::exp(-n / estimate);
    const double f = estimate * (1.0 - e) - u;
    const double df = 1.0 - e - (n / estimate) * e;
    if (std::abs(df) < 1e-300) break;
    double next = estimate - f / df;
    if (next <= 0.0) next = estimate / 2.0;
    if (next > cap) return cap;
    if (std::abs(next - estimate) <= 1e-9 * estimate) return next;
    estimate = next;
  }
  return std::min(estimate, cap);
}

WorkingSetEstimator::WorkingSetEstimator(std::uint32_t element_bytes)
    : element_bytes_(element_bytes) {
  MSIM_REQUIRE(element_bytes > 0, "element size must be positive");
}

void WorkingSetEstimator::observe(std::uint32_t pc, std::uint64_t address) {
  if (pc >= streams_.size()) streams_.resize(pc + 1);
  PcState& state = streams_[pc];
  ++state.draws;
  state.unique.insert(address / element_bytes_);
  state.min_address = std::min(state.min_address, address);
  state.max_address = std::max(state.max_address, address);

  if (state.has_last) {
    const std::int64_t delta = static_cast<std::int64_t>(address) -
                               static_cast<std::int64_t>(state.last_address);
    const std::int64_t magnitude = std::llabs(delta);
    const std::int64_t small = static_cast<std::int64_t>(element_bytes_) * 64;
    if (magnitude != 0 && magnitude <= small) {
      state.stride = delta;
      ++state.strided_steps;
    } else if (state.stride != 0 && ((state.stride > 0) != (delta > 0))) {
      // Opposite-sign jump after a strided run: the walk wrapped. A
      // forward walk at the last slot W-s jumps to 0, so delta = s - W and
      // the extent is |delta - stride| = W (symmetrically for backward
      // walks).
      const std::uint64_t extent =
          static_cast<std::uint64_t>(std::llabs(delta - state.stride));
      state.wrap_extent = std::max(state.wrap_extent, extent);
      ++state.jump_steps;
    } else {
      ++state.jump_steps;
    }
  }
  state.has_last = true;
  state.last_address = address;
}

void WorkingSetEstimator::observe_batch(const TaggedRef* refs,
                                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    observe(refs[i].pc, refs[i].address);
  }
}

ExtentEstimate WorkingSetEstimator::estimate() const {
  ExtentEstimate best;
  bool any_bounded = false;
  // Dense storage walks streams in pc order by construction: the winning
  // estimate feeds block signatures (cached artifacts), so the walk must
  // be reproducible across library versions and process runs.
  for (const PcState& state : streams_) {
    if (state.draws == 0) continue;  // pc never observed
    ExtentEstimate mine;
    const bool looks_strided =
        state.strided_steps > 4 * (state.jump_steps + 1);
    if (looks_strided) {
      if (state.wrap_extent > 0) {
        mine.bytes = state.wrap_extent;
      } else {
        mine.bytes = state.max_address - state.min_address + element_bytes_;
        mine.is_lower_bound = true;
      }
    } else {
      const double slots = invert_unique_count(state.unique.size(),
                                               state.draws);
      mine.bytes = static_cast<std::uint64_t>(
          std::min(slots * element_bytes_, 1e15));
    }
    // Prefer the largest bounded estimate; fall back to lower bounds.
    if (!mine.is_lower_bound) {
      if (!any_bounded || mine.bytes > best.bytes) {
        best = mine;
        any_bounded = true;
      }
    } else if (!any_bounded && mine.bytes > best.bytes) {
      best = mine;
    }
  }
  return best;
}

}  // namespace msim::trace
