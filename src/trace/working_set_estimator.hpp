// Working-set estimation from a *sampled* reference stream.
//
// A tracer that samples (it must — full traces dilate execution ~30x even in
// MetaSim's streamlined form) cannot simply count unique lines: a sample that
// is smaller than the working set touches only part of it. We estimate per
// issuing PC, the way real analyses do:
//  * strided streams: a wrap of the walk shows up as one large opposite-sign
//    jump; the extent is stride - jump. If no wrap is observed, the touched
//    span is a certified lower bound — an honest tracer artifact;
//  * random streams: unique-count saturation. After n uniform draws over L
//    lines the expected unique count is L(1 - (1 - 1/L)^n); we invert that
//    (Newton) to estimate L from the observed unique count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "trace/stride_detector.hpp"

namespace msim::trace {

/// Result of estimating one stream's extent.
struct ExtentEstimate {
  std::uint64_t bytes = 0;
  bool is_lower_bound = false;  ///< strided stream that never wrapped
};

/// Estimate the number of distinct slots L of a uniform random draw from
/// the observed unique count after n draws. Returns `cap` when the sample
/// shows no saturation (unique == n). Granularity of the result is slots,
/// not bytes.
[[nodiscard]] double invert_unique_count(std::uint64_t unique,
                                         std::uint64_t draws,
                                         double cap = 1e15);

/// Streaming per-PC working-set estimator.
class WorkingSetEstimator {
 public:
  explicit WorkingSetEstimator(std::uint32_t element_bytes = 8);

  void observe(std::uint32_t pc, std::uint64_t address);

  /// Observe a contiguous run of PC-tagged references; identical state to
  /// calling observe() per element.
  void observe_batch(const TaggedRef* refs, std::size_t count);

  /// Combined estimate across PCs: the largest per-stream extent.
  [[nodiscard]] ExtentEstimate estimate() const;

 private:
  struct PcState {
    bool has_last = false;
    std::uint64_t last_address = 0;
    std::int64_t stride = 0;        ///< most recent small delta
    std::uint64_t wrap_extent = 0;  ///< extent from observed wraps
    std::uint64_t min_address = ~0ull;
    std::uint64_t max_address = 0;
    std::uint64_t draws = 0;
    std::unordered_set<std::uint64_t> unique;  ///< element-granular
    std::uint64_t strided_steps = 0;
    std::uint64_t jump_steps = 0;
  };

  std::uint32_t element_bytes_;
  // Dense per-PC state, indexed by pc: index order *is* pc order, so
  // estimate() walks streams reproducibly with no sort step. Entries with
  // draws == 0 were never observed.
  std::vector<PcState> streams_;
};

}  // namespace msim::trace
