// Application signatures: the "transfer function" data the paper's
// predictive metrics convolve with machine rates.
//
// A signature is everything tracing on the base system may legitimately
// know: exact operation counts per basic block (instrumentation counts
// exactly), *observed* stride-class fractions (from the stride detector),
// *estimated* working sets (from sampling), exact branch counts, the static
// analyzer's dependency verdict, and the MPIDTRACE communication-event
// counts. It deliberately excludes ground-truth-only facts: true stride
// mixes, true working sets, ILP efficiency, load imbalance, page locality.
//
// Storage is structure-of-arrays: the per-block columns live in
// contiguous per-field vectors (BlockColumns) so the convolver's
// prediction sweep is a stride-1 kernel over flat arrays instead of a
// walk over nested structs. Producers and the text codec still traffic
// in whole rows (BlockSignature); consumers index columns through the
// BlockView proxy, which preserves the field-per-block access pattern
// as accessor methods.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>
#include <vector>

#include "netsim/comm_event.hpp"

namespace msim::trace {

/// Traced profile of one basic block (per process, per timestep) in row
/// form — the unit producers build and the text codec round-trips.
struct BlockSignature {
  std::string name;
  std::string phase;

  std::uint64_t flops = 0;  ///< exact (performance counters)
  std::uint64_t refs = 0;   ///< exact load/store count
  std::uint32_t element_bytes = 8;

  // Stride-detector output (fractions of refs, sum to 1).
  double unit_fraction = 0.0;
  double short_fraction = 0.0;
  double random_fraction = 0.0;

  std::uint64_t working_set_estimate = 0;  ///< bytes
  bool working_set_is_lower_bound = false;

  double branch_density = 0.0;     ///< exact (branch counters)
  bool dependency_limited = false; ///< static analyzer verdict

  /// Total memory traffic per timestep, bytes.
  [[nodiscard]] std::uint64_t bytes() const {
    return refs * element_bytes;
  }
};

class BlockView;

/// Structure-of-arrays storage for per-block signature data. The column
/// vectors are public on purpose: the convolver kernel reads them as raw
/// stride-1 arrays. Row-shaped access goes through operator[] /
/// iteration, which hand out BlockView proxies.
class BlockColumns {
 public:
  std::vector<std::string> name;
  std::vector<std::string> phase;
  std::vector<std::uint64_t> flops;
  std::vector<std::uint64_t> refs;
  std::vector<std::uint32_t> element_bytes;
  std::vector<double> unit_fraction;
  std::vector<double> short_fraction;
  std::vector<double> random_fraction;
  std::vector<std::uint64_t> working_set_estimate;
  std::vector<std::uint8_t> working_set_is_lower_bound;
  std::vector<double> branch_density;
  std::vector<std::uint8_t> dependency_limited;

  BlockColumns() = default;
  BlockColumns(std::initializer_list<BlockSignature> rows) {
    assign(rows.begin(), rows.end());
  }
  BlockColumns& operator=(std::initializer_list<BlockSignature> rows) {
    clear();
    assign(rows.begin(), rows.end());
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return flops.size(); }
  [[nodiscard]] bool empty() const { return flops.empty(); }

  void reserve(std::size_t count);
  void clear();
  void push_back(const BlockSignature& row);
  void push_back(BlockSignature&& row);

  /// Row materialized back from the columns (text codec, scaling).
  [[nodiscard]] BlockSignature row(std::size_t index) const;

  [[nodiscard]] inline BlockView operator[](std::size_t index) const;

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = BlockView;
    using difference_type = std::ptrdiff_t;
    using pointer = const BlockView*;
    using reference = BlockView;

    const_iterator(const BlockColumns& columns, std::size_t index)
        : columns_(&columns), index_(index) {}
    inline BlockView operator*() const;
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const const_iterator& other) const {
      return index_ != other.index_;
    }

   private:
    const BlockColumns* columns_;
    std::size_t index_;
  };

  [[nodiscard]] const_iterator begin() const {
    return const_iterator(*this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(*this, size());
  }

 private:
  template <typename It>
  void assign(It first, It last) {
    for (It it = first; it != last; ++it) push_back(*it);
  }
};

/// Thin indexed view of one block inside BlockColumns: the pre-SoA
/// field-per-block API, one accessor method per column.
class BlockView {
 public:
  BlockView(const BlockColumns& columns, std::size_t index)
      : columns_(&columns), index_(index) {}

  [[nodiscard]] const std::string& name() const {
    return columns_->name[index_];
  }
  [[nodiscard]] const std::string& phase() const {
    return columns_->phase[index_];
  }
  [[nodiscard]] std::uint64_t flops() const {
    return columns_->flops[index_];
  }
  [[nodiscard]] std::uint64_t refs() const { return columns_->refs[index_]; }
  [[nodiscard]] std::uint32_t element_bytes() const {
    return columns_->element_bytes[index_];
  }
  [[nodiscard]] double unit_fraction() const {
    return columns_->unit_fraction[index_];
  }
  [[nodiscard]] double short_fraction() const {
    return columns_->short_fraction[index_];
  }
  [[nodiscard]] double random_fraction() const {
    return columns_->random_fraction[index_];
  }
  [[nodiscard]] std::uint64_t working_set_estimate() const {
    return columns_->working_set_estimate[index_];
  }
  [[nodiscard]] bool working_set_is_lower_bound() const {
    return columns_->working_set_is_lower_bound[index_] != 0;
  }
  [[nodiscard]] double branch_density() const {
    return columns_->branch_density[index_];
  }
  [[nodiscard]] bool dependency_limited() const {
    return columns_->dependency_limited[index_] != 0;
  }

  /// Total memory traffic per timestep, bytes.
  [[nodiscard]] std::uint64_t bytes() const {
    return refs() * element_bytes();
  }

  [[nodiscard]] BlockSignature row() const { return columns_->row(index_); }
  [[nodiscard]] std::size_t index() const { return index_; }

 private:
  const BlockColumns* columns_;
  std::size_t index_;
};

inline BlockView BlockColumns::operator[](std::size_t index) const {
  return BlockView(*this, index);
}

inline BlockView BlockColumns::const_iterator::operator*() const {
  return BlockView(*columns_, index_);
}

/// Communication schedule of one phase, as MPIDTRACE records it (exact).
struct PhaseComm {
  std::string phase;
  std::vector<netsim::CommEvent> events;  ///< per process, per timestep
};

/// Complete traced signature of an (application, processor count) pair.
struct ApplicationSignature {
  std::string app;
  int nprocs = 0;
  int timesteps = 0;
  std::string traced_on;  ///< base system name
  BlockColumns blocks;
  std::vector<PhaseComm> comm;

  [[nodiscard]] std::uint64_t total_flops_per_timestep() const;
  [[nodiscard]] std::uint64_t total_bytes_per_timestep() const;
};

}  // namespace msim::trace
