// Application signatures: the "transfer function" data the paper's
// predictive metrics convolve with machine rates.
//
// A signature is everything tracing on the base system may legitimately
// know: exact operation counts per basic block (instrumentation counts
// exactly), *observed* stride-class fractions (from the stride detector),
// *estimated* working sets (from sampling), exact branch counts, the static
// analyzer's dependency verdict, and the MPIDTRACE communication-event
// counts. It deliberately excludes ground-truth-only facts: true stride
// mixes, true working sets, ILP efficiency, load imbalance, page locality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/comm_event.hpp"

namespace msim::trace {

/// Traced profile of one basic block (per process, per timestep).
struct BlockSignature {
  std::string name;
  std::string phase;

  std::uint64_t flops = 0;  ///< exact (performance counters)
  std::uint64_t refs = 0;   ///< exact load/store count
  std::uint32_t element_bytes = 8;

  // Stride-detector output (fractions of refs, sum to 1).
  double unit_fraction = 0.0;
  double short_fraction = 0.0;
  double random_fraction = 0.0;

  std::uint64_t working_set_estimate = 0;  ///< bytes
  bool working_set_is_lower_bound = false;

  double branch_density = 0.0;     ///< exact (branch counters)
  bool dependency_limited = false; ///< static analyzer verdict

  /// Total memory traffic per timestep, bytes.
  [[nodiscard]] std::uint64_t bytes() const {
    return refs * element_bytes;
  }
};

/// Communication schedule of one phase, as MPIDTRACE records it (exact).
struct PhaseComm {
  std::string phase;
  std::vector<netsim::CommEvent> events;  ///< per process, per timestep
};

/// Complete traced signature of an (application, processor count) pair.
struct ApplicationSignature {
  std::string app;
  int nprocs = 0;
  int timesteps = 0;
  std::string traced_on;  ///< base system name
  std::vector<BlockSignature> blocks;
  std::vector<PhaseComm> comm;

  [[nodiscard]] std::uint64_t total_flops_per_timestep() const;
  [[nodiscard]] std::uint64_t total_bytes_per_timestep() const;
};

}  // namespace msim::trace
