// Communication-event vocabulary shared by the workload models, the
// MPIDTRACE-analog comm tracer, the NETBENCH probe, and the convolver's
// network term.
#pragma once

#include <cstdint>
#include <string>

namespace msim::netsim {

/// MPI operation categories the cost model distinguishes.
enum class CommType : std::uint8_t {
  PointToPoint,  ///< matched send/recv pair (e.g. halo exchange)
  AllReduce,
  Broadcast,
  AllToAll,
  Barrier,
};

[[nodiscard]] std::string to_string(CommType type);

/// A batch of identical communication operations, per process per timestep.
struct CommEvent {
  CommType type = CommType::PointToPoint;
  std::uint64_t bytes = 0;  ///< payload per operation (0 for Barrier)
  std::uint64_t count = 1;  ///< how many such operations
};

}  // namespace msim::netsim
