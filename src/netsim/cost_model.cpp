#include "netsim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace msim::netsim {

namespace {
double ceil_log2(int n) {
  MSIM_REQUIRE(n >= 1, "need at least one process");
  return std::ceil(std::log2(static_cast<double>(n)));
}
}  // namespace

double shared_bandwidth(const machine::Network& net, double node_sharing) {
  MSIM_REQUIRE(node_sharing >= 1.0, "node_sharing must be >= 1");
  return net.bandwidth / node_sharing;
}

double pt2pt_time(const machine::Network& net, std::uint64_t bytes,
                  double node_sharing) {
  const double bw = shared_bandwidth(net, node_sharing);
  const double transfer = static_cast<double>(bytes) / bw;
  if (bytes <= net.eager_threshold_bytes) {
    return net.per_message_overhead_s + net.latency_s + transfer;
  }
  // Rendezvous: request + clear-to-send handshake adds a round trip.
  return net.per_message_overhead_s + 3.0 * net.latency_s + transfer;
}

double collective_time(const machine::Network& net, CommType type,
                       std::uint64_t bytes, int nprocs, double node_sharing) {
  MSIM_REQUIRE(nprocs >= 1, "need at least one process");
  if (nprocs == 1) return 0.0;
  const double log_p = ceil_log2(nprocs);
  const double p = static_cast<double>(nprocs);
  const double bw = shared_bandwidth(net, node_sharing);
  const double bytes_d = static_cast<double>(bytes);
  const double alpha = net.latency_s + net.per_message_overhead_s;

  switch (type) {
    case CommType::Barrier:
      // Dissemination barrier: ceil(log2 p) rounds of zero-byte messages.
      return log_p * alpha;

    case CommType::AllReduce:
      if (bytes <= net.eager_threshold_bytes) {
        // Recursive doubling: log p rounds, full payload each round.
        return log_p * (alpha + bytes_d / bw);
      }
      // Rabenseifner (reduce-scatter + allgather).
      return 2.0 * log_p * alpha + 2.0 * (p - 1.0) / p * bytes_d / bw;

    case CommType::Broadcast:
      if (bytes <= net.eager_threshold_bytes) {
        return log_p * (alpha + bytes_d / bw);  // binomial tree
      }
      // Scatter + allgather (van de Geijn).
      return 2.0 * log_p * alpha + 2.0 * (p - 1.0) / p * bytes_d / bw;

    case CommType::AllToAll:
      // Pairwise exchange: p-1 rounds, each sending `bytes` to one peer.
      return (p - 1.0) * (alpha + bytes_d / bw);

    case CommType::PointToPoint:
      return pt2pt_time(net, bytes, node_sharing);
  }
  MSIM_CHECK(false, "unknown collective type");
  return 0.0;
}

double event_time(const machine::Network& net, const CommEvent& event,
                  int nprocs, double node_sharing) {
  const double single =
      collective_time(net, event.type, event.bytes, nprocs, node_sharing);
  return single * static_cast<double>(event.count);
}

}  // namespace msim::netsim
