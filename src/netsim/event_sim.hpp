// Rank-level event simulation of collectives.
//
// The analytic cost model (cost_model.hpp) prices collectives with closed
// forms; this module is the reference it is validated against: it runs the
// actual communication schedules — recursive doubling, binomial trees,
// pairwise exchange, dissemination — rank by rank, round by round, with
// per-rank clocks. Two things the closed forms cannot express fall out
// naturally: process skew (ranks arriving at the collective at different
// times, the real cost of load imbalance at synchronization points) and
// idle rounds for non-power-of-two communicators.
#pragma once

#include <cstdint>

#include "machine/machine_config.hpp"
#include "netsim/comm_event.hpp"

namespace msim::netsim {

struct EventSimOptions {
  /// Standard deviation of per-rank arrival skew, seconds (0 = all ranks
  /// enter the collective simultaneously).
  double skew_stddev_s = 0.0;
  std::uint64_t seed = 0xde7e77;
  /// NIC sharing factor applied to bandwidth (cf. shared_bandwidth).
  double node_sharing = 1.0;
};

/// Completion time of one collective: the time at which the *last* rank
/// finishes, measured from the earliest rank's arrival.
[[nodiscard]] double simulate_collective(const machine::Network& net,
                                         CommType type, std::uint64_t bytes,
                                         int nprocs,
                                         const EventSimOptions& options = {});

/// Completion time of a halo exchange: every rank exchanges `bytes` with
/// `neighbors` peers; exchanges with distinct peers serialize on the NIC.
[[nodiscard]] double simulate_halo_exchange(
    const machine::Network& net, std::uint64_t bytes, int neighbors,
    int nprocs, const EventSimOptions& options = {});

}  // namespace msim::netsim
