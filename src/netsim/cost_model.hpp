// Interconnect cost model: Hockney point-to-point with an eager/rendezvous
// protocol split, and standard tree/ring collective algorithms (Thakur et
// al.) on top.
//
// `node_sharing` models concurrent senders per node dividing NIC bandwidth.
// The NETBENCH probe measures with node_sharing = 1 (a dedicated ping-pong,
// as real netbench does); the ground-truth executor applies the machine's
// actual procs_per_node — an intentional, realistic probe blind spot.
#pragma once

#include "machine/machine_config.hpp"
#include "netsim/comm_event.hpp"

namespace msim::netsim {

/// Time for one point-to-point message of `bytes` (one direction).
[[nodiscard]] double pt2pt_time(const machine::Network& net,
                                std::uint64_t bytes,
                                double node_sharing = 1.0);

/// Time for one collective across `nprocs` ranks.
[[nodiscard]] double collective_time(const machine::Network& net,
                                     CommType type, std::uint64_t bytes,
                                     int nprocs, double node_sharing = 1.0);

/// Time for a CommEvent batch (count * single-operation time).
[[nodiscard]] double event_time(const machine::Network& net,
                                const CommEvent& event, int nprocs,
                                double node_sharing = 1.0);

/// Effective per-process bandwidth given senders sharing a node's NIC.
[[nodiscard]] double shared_bandwidth(const machine::Network& net,
                                      double node_sharing);

}  // namespace msim::netsim
