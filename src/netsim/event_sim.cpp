#include "netsim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "netsim/cost_model.hpp"

namespace msim::netsim {

namespace {

/// Per-rank clocks initialized with deterministic Gaussian arrival skew.
std::vector<double> initial_clocks(int nprocs,
                                   const EventSimOptions& options) {
  std::vector<double> clocks(static_cast<std::size_t>(nprocs), 0.0);
  if (options.skew_stddev_s > 0.0) {
    Rng rng(options.seed);
    for (double& clock : clocks) {
      clock = std::abs(rng.normal(0.0, options.skew_stddev_s));
    }
  }
  return clocks;
}

double finish(const std::vector<double>& clocks) {
  return *std::max_element(clocks.begin(), clocks.end());
}

/// One message between two ranks: both must be ready; both advance.
void exchange(std::vector<double>& clocks, int a, int b, double cost) {
  const double start = std::max(clocks[static_cast<std::size_t>(a)],
                                clocks[static_cast<std::size_t>(b)]);
  const double done = start + cost;
  clocks[static_cast<std::size_t>(a)] = done;
  clocks[static_cast<std::size_t>(b)] = done;
}

int ceil_log2(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

double recursive_doubling(const machine::Network& net, std::uint64_t bytes,
                          int nprocs, const EventSimOptions& options) {
  auto clocks = initial_clocks(nprocs, options);
  const double per_round =
      net.latency_s + net.per_message_overhead_s +
      static_cast<double>(bytes) / shared_bandwidth(net,
                                                    options.node_sharing);
  const int rounds = ceil_log2(nprocs);
  for (int round = 0; round < rounds; ++round) {
    const int distance = 1 << round;
    for (int rank = 0; rank < nprocs; ++rank) {
      const int peer = rank ^ distance;
      if (peer < nprocs && peer > rank) {
        exchange(clocks, rank, peer, per_round);
      }
    }
  }
  return finish(clocks);
}

double binomial_bcast(const machine::Network& net, std::uint64_t bytes,
                      int nprocs, const EventSimOptions& options) {
  auto clocks = initial_clocks(nprocs, options);
  const double per_hop =
      net.latency_s + net.per_message_overhead_s +
      static_cast<double>(bytes) / shared_bandwidth(net,
                                                    options.node_sharing);
  const int rounds = ceil_log2(nprocs);
  for (int round = 0; round < rounds; ++round) {
    const int distance = 1 << round;
    for (int rank = 0; rank < distance && rank < nprocs; ++rank) {
      const int peer = rank + distance;
      if (peer < nprocs) exchange(clocks, rank, peer, per_hop);
    }
  }
  return finish(clocks);
}

double pairwise_alltoall(const machine::Network& net, std::uint64_t bytes,
                         int nprocs, const EventSimOptions& options) {
  auto clocks = initial_clocks(nprocs, options);
  const double per_partner =
      net.latency_s + net.per_message_overhead_s +
      static_cast<double>(bytes) / shared_bandwidth(net,
                                                    options.node_sharing);
  for (int step = 1; step < nprocs; ++step) {
    // Pairwise exchange schedule: in step k, rank r talks to r XOR k when
    // that forms disjoint pairs (power-of-two p); otherwise fall back to
    // the (r + k) mod p ring schedule, executed as a synchronized round.
    double round_finish = 0.0;
    std::vector<double> start(clocks);
    for (int rank = 0; rank < nprocs; ++rank) {
      const int peer = (rank + step) % nprocs;
      const double begin = std::max(start[static_cast<std::size_t>(rank)],
                                    start[static_cast<std::size_t>(peer)]);
      clocks[static_cast<std::size_t>(rank)] =
          std::max(clocks[static_cast<std::size_t>(rank)],
                   begin + per_partner);
      round_finish = std::max(round_finish,
                              clocks[static_cast<std::size_t>(rank)]);
    }
    (void)round_finish;
  }
  return finish(clocks);
}

}  // namespace

double simulate_collective(const machine::Network& net, CommType type,
                           std::uint64_t bytes, int nprocs,
                           const EventSimOptions& options) {
  MSIM_REQUIRE(nprocs >= 1, "need at least one rank");
  if (nprocs == 1) return 0.0;
  switch (type) {
    case CommType::AllReduce:
      return recursive_doubling(net, bytes, nprocs, options);
    case CommType::Barrier:
      return recursive_doubling(net, 0, nprocs, options);
    case CommType::Broadcast:
      return binomial_bcast(net, bytes, nprocs, options);
    case CommType::AllToAll:
      return pairwise_alltoall(net, bytes, nprocs, options);
    case CommType::PointToPoint:
      return pt2pt_time(net, bytes, options.node_sharing);
  }
  MSIM_CHECK(false, "unknown collective type");
  return 0.0;
}

double simulate_halo_exchange(const machine::Network& net,
                              std::uint64_t bytes, int neighbors, int nprocs,
                              const EventSimOptions& options) {
  MSIM_REQUIRE(neighbors >= 0, "neighbor count must be non-negative");
  MSIM_REQUIRE(nprocs >= 1, "need at least one rank");
  if (neighbors == 0 || nprocs == 1) return 0.0;
  auto clocks = initial_clocks(nprocs, options);
  // One synchronous round per neighbor: every rank exchanges with the
  // partner at the round's shift (full duplex), so each round costs one
  // message time once both sides have arrived. A rank's `neighbors` sends
  // serialize on its NIC across rounds.
  const double per_message = pt2pt_time(net, bytes, options.node_sharing);
  for (int n = 0; n < neighbors; ++n) {
    const int shift = (n / 2) + 1;
    std::vector<double> next(clocks);
    for (int rank = 0; rank < nprocs; ++rank) {
      const int peer = (n % 2 == 0) ? (rank + shift) % nprocs
                                    : (rank - shift + nprocs) % nprocs;
      const double start = std::max(clocks[static_cast<std::size_t>(rank)],
                                    clocks[static_cast<std::size_t>(peer)]);
      next[static_cast<std::size_t>(rank)] = start + per_message;
    }
    clocks = std::move(next);
  }
  return finish(clocks);
}

}  // namespace msim::netsim
