#include "netsim/comm_event.hpp"

namespace msim::netsim {

std::string to_string(CommType type) {
  switch (type) {
    case CommType::PointToPoint:
      return "p2p";
    case CommType::AllReduce:
      return "allreduce";
    case CommType::Broadcast:
      return "bcast";
    case CommType::AllToAll:
      return "alltoall";
    case CommType::Barrier:
      return "barrier";
  }
  return "?";
}

}  // namespace msim::netsim
