// Signed-error analysis (paper Section 3's methodological point).
//
// "After calculating signed error for each experiment, absolute error is
// calculated to ensure the magnitude of each deviation is considered when
// averaging across experiments, preventing error cancellation." This bench
// shows what that sentence protects against: for each metric, the mean
// *signed* error (the bias a careless average would report) next to the
// mean absolute error, plus the optimistic/pessimistic split.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "signed_error_analysis",
                "Section 3 (signed vs absolute error, bias per metric)");

  const auto& study = bench::paper_study();
  const auto predictions = study.evaluate(metrics::all_metrics());

  AsciiTable table({"Metric", "Mean signed", "Mean |err|", "Optimistic",
                    "Pessimistic"});
  for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::Right);

  for (metrics::Metric metric : metrics::all_metrics()) {
    const auto slice = metrics::Study::slice_metric(predictions, metric);
    std::vector<double> signed_errors;
    std::size_t optimistic = 0;
    for (const auto& prediction : slice) {
      signed_errors.push_back(prediction.signed_error_pct);
      if (prediction.signed_error_pct < 0.0) ++optimistic;
    }
    const double signed_mean = stats::mean(signed_errors);
    const auto summary = metrics::Study::summarize(slice);
    table.add_row(
        {metrics::row_label(metric) + " " + metrics::description(metric),
         AsciiTable::num(signed_mean, 1) + "%",
         AsciiTable::num(summary.mean_abs_error_pct, 1) + "%",
         std::to_string(optimistic) + "/" + std::to_string(slice.size()),
         std::to_string(slice.size() - optimistic) + "/" +
             std::to_string(slice.size())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Negative signed error = prediction faster than reality (paper's\n"
      "convention). A metric can have near-zero mean signed error and\n"
      "still be useless — cancellation is why the paper averages |error|.\n"
      "The sign split also shows each metric's character: HPL's ratio\n"
      "overpredicts time on flop-weak machines and underpredicts on\n"
      "flop-strong ones.\n");
  return 0;
}
