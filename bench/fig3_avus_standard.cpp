// E4 — reproduces paper Figure 3: error assessment for AVUS Standard.
#include "fig_app_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_app(
      argc, argv, "fig3_avus_standard", "Figure 3 (AVUS Standard error assessment)",
      "AVUS_Standard");
}
