// Extension bench: when does the network term matter?
//
// The paper found the NETBENCH term (#8 over #7) worth only ~2 points
// "because these application cases are not communication bound" — a caveat,
// not a conclusion. This bench runs the same pipeline on two deliberately
// communication-dominated workloads (a 3-D FFT with global alltoalls and a
// latency-bound Krylov solver) across a sweep of processor counts, and
// shows the #7-to-#8 gap opening as communication takes over.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "stats/summary.hpp"
#include "trace/tracer.hpp"
#include "workload/extra_apps.hpp"

namespace {

using namespace msim;

void evaluate_app(const std::string& label,
                  workload::AppModel (*build)(int),
                  const std::vector<int>& counts) {
  const auto& base = machine::find(machine::base_system_name());
  const auto base_probes = probes::run_probe_suite(base);
  const auto targets = machine::targets();
  std::vector<probes::ProbeSet> target_probes;
  for (const auto& machine : targets) {
    target_probes.push_back(probes::run_probe_suite(machine));
  }

  AsciiTable table({"CPUs", "comm frac", "|err| #7", "|err| #8",
                    "#8 gain"});
  for (std::size_t c = 0; c < 5; ++c) table.set_align(c, Align::Right);

  for (int nprocs : counts) {
    const auto app = build(nprocs);
    const auto signature = trace::trace_application(app, base.name);
    const double base_seconds = simulate::execute(app, base).wall_seconds;

    std::vector<double> err7, err8, comm_fractions;
    for (std::size_t m = 0; m < targets.size(); ++m) {
      const auto run = simulate::execute(app, targets[m]);
      comm_fractions.push_back(run.comm_fraction());
      const double actual = run.wall_seconds;
      err7.push_back(stats::absolute_percent_error(
          convolve::predict_time(signature, target_probes[m], base_probes,
                                 base_seconds,
                                 convolve::PredictiveMetric::M7_HplMaps),
          actual));
      err8.push_back(stats::absolute_percent_error(
          convolve::predict_time(signature, target_probes[m], base_probes,
                                 base_seconds,
                                 convolve::PredictiveMetric::M8_HplMapsNet),
          actual));
    }
    const double mean7 = stats::mean(err7);
    const double mean8 = stats::mean(err8);
    table.add_row({std::to_string(nprocs),
                   AsciiTable::num(stats::mean(comm_fractions) * 100, 0) +
                       "%",
                   AsciiTable::num(mean7, 1), AsciiTable::num(mean8, 1),
                   AsciiTable::num(mean7 - mean8, 1)});
  }
  std::printf("%s:\n%s\n", label.c_str(), table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "extension_comm_bound",
                "the paper's caveat: NETBENCH on communication-bound codes");

  evaluate_app("FFT3D (alltoall-dominated pseudo-spectral solver)",
               workload::make_fft3d, {64, 256, 1024});
  evaluate_app("KrylovLatency (allreduce-latency-bound implicit solver)",
               workload::make_krylov_latency, {64, 256, 1024});

  std::printf(
      "For the TI-05 suite the #7->#8 gain was ~0; here the network term\n"
      "is the difference between a usable and a useless prediction once\n"
      "the communication fraction dominates — the paper's caveat made\n"
      "quantitative.\n");
  return 0;
}
