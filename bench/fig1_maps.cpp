// E1 — reproduces paper Figure 1: unit-stride memory bandwidth versus
// working-set ("message") size. The paper plots three systems for
// readability (IBM Opteron, SGI Altix, IBM p655); pass --all to sweep every
// registry machine, or --random for the random-stride curves.
#include <cstdio>
#include <cstring>
#include <sstream>

#include "bench_common.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "report/gnuplot.hpp"
#include "report/report.hpp"

int main(int argc, char** argv) {
  using namespace msim;

  bool all_systems = false;
  bool random_stride = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all") == 0) all_systems = true;
    if (std::strcmp(argv[i], "--random") == 0) random_stride = true;
  }

  bench::banner(argc, argv, "fig1_maps",
                "Figure 1 (MAPS bandwidth vs working-set size)");

  std::vector<machine::MachineConfig> machines;
  if (all_systems) {
    machines = machine::targets();
  } else {
    machines = {machine::find("ARL_Opteron"), machine::find("ARL_Altix"),
                machine::find("NAVO_655")};
  }
  const auto sets = probes::run_probe_suites(machines);
  std::printf("%s\n",
              report::render_maps_table(sets, random_stride).c_str());

  std::printf(
      "Paper's Figure 1 shape check: the Opteron should win from main\n"
      "memory (right side), the Altix in the mid-cache region, and the\n"
      "p655 in L1 (left side).\n");

  std::ostringstream csv;
  report::write_maps_csv(csv, sets, random_stride);
  bench::save_artifact("fig1_maps.csv", csv.str());

  std::vector<std::string> names;
  for (const auto& set : sets) names.push_back(set.machine);
  std::ostringstream script;
  report::write_fig1_gnuplot(script, "fig1_maps.csv", names);
  bench::save_artifact("fig1_maps.gp", script.str());
  return 0;
}
