// Resident-serving traffic bench: latency and throughput of `msim serve`.
//
// Starts the Unix-socket front-end in-process on a background thread
// (study built once through the artifact cache — run it twice to compare
// a cold build against a warm mmap-served start), then drives it with
// closed-loop client threads issuing predict queries over every
// (application, count, target) configuration in the study. Every reply is
// byte-compared against answering the same request line directly, so the
// run doubles as a concurrency parity check: batching queries onto the
// scheduler must not change a single output byte.
//
// Output discipline: stdout carries only the banner, the traffic mix and
// the parity verdict — byte-identical across runs and across cold/warm
// caches, so CI can diff it directly. Latency percentiles, throughput and
// the daemon's stats reply depend on the host and go to stderr.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "pipeline/study_builder.hpp"
#include "serve/serve_protocol.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Blocking connect with retries while the server thread binds the socket.
int connect_with_retry(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 500; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_all(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one newline-terminated reply (leftover bytes stay in `buffer`).
bool read_reply(int fd, std::string& buffer, std::string& reply) {
  while (true) {
    const std::size_t end = buffer.find('\n');
    if (end != std::string::npos) {
      reply = buffer.substr(0, end + 1);
      buffer.erase(0, end + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t low = static_cast<std::size_t>(rank);
  const std::size_t high = std::min(low + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(low);
  return sorted[low] * (1.0 - frac) + sorted[high] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "serve_traffic",
                "resident serving latency/throughput + batch parity");

  std::size_t total_queries = 1200;
  unsigned clients = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::optional<std::string> {
      if (arg == flag && i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (const auto text = value("--queries")) {
      const auto parsed = parse_u64(*text);
      if (parsed && *parsed > 0) {
        total_queries = static_cast<std::size_t>(*parsed);
      }
    } else if (const auto text = value("--clients")) {
      const auto parsed = parse_unsigned(*text);
      if (parsed && *parsed > 0) clients = *parsed;
    }
  }

  // The resident service: study built once (cold = compute + fill the
  // cache, warm = mmap-served artifacts), served over a scratch socket.
  pipeline::StudyBuilder builder;
  builder.cache(true).cache_dir(bench::cache_dir());
  const serve::PredictionService service(builder.build());
  std::fprintf(stderr, "(%s)\n", builder.stats().summary().c_str());

  const std::string socket_path =
      "/tmp/msim-serve-" + std::to_string(::getpid()) + ".sock";
  std::thread server([&] {
    (void)serve::run_socket_server(socket_path, service);
  });

  // The traffic mix: every (application, count, target) configuration the
  // study holds, all metrics per query, ids assigned round-robin.
  std::vector<std::string> requests;
  {
    const auto& study = service.study();
    std::uint64_t id = 0;
    while (requests.size() < total_queries) {
      for (const auto& test_case : study.suite()) {
        for (const int nprocs : test_case.cpu_counts) {
          for (const auto& machine : study.target_names()) {
            if (requests.size() >= total_queries) break;
            serve::ServeRequest request;
            request.op = serve::ServeRequest::Op::Predict;
            request.id = ++id;
            request.app = test_case.name;
            request.nprocs = nprocs;
            request.machine = machine;
            requests.push_back(serve::request_line(request));
          }
        }
      }
    }
  }
  std::printf("traffic: %zu predict queries over %zu configurations, "
              "%u concurrent clients\n",
              requests.size(),
              service.study().suite().size() * 3 *
                  service.study().target_names().size(),
              clients);

  // Closed-loop clients: each thread owns one connection and round-trips
  // its share of the request list, checking every reply byte-for-byte
  // against the direct (unbatched, single-threaded) answer.
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> transport_errors{0};
  const auto traffic_start = Clock::now();
  std::vector<std::thread> pool;
  for (unsigned c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      const int fd = connect_with_retry(socket_path);
      if (fd < 0) {
        transport_errors.fetch_add(1);
        return;
      }
      std::string buffer;
      std::string reply;
      while (true) {
        const std::size_t index = next.fetch_add(1);
        if (index >= requests.size()) break;
        const auto start = Clock::now();
        if (!send_all(fd, requests[index]) ||
            !read_reply(fd, buffer, reply)) {
          transport_errors.fetch_add(1);
          break;
        }
        latencies[c].push_back(
            std::chrono::duration<double>(Clock::now() - start).count());
        if (reply != service.answer_line(requests[index]).line) {
          mismatches.fetch_add(1);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& client : pool) client.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - traffic_start).count();

  // Ask the daemon for its own counters, then stop it.
  {
    const int fd = connect_with_retry(socket_path);
    if (fd >= 0) {
      std::string buffer;
      std::string reply;
      if (send_all(fd, "{\"op\":\"stats\",\"id\":0}\n") &&
          read_reply(fd, buffer, reply)) {
        if (!reply.empty() && reply.back() == '\n') reply.pop_back();
        std::fprintf(stderr, "(daemon %s)\n", reply.c_str());
      }
      if (send_all(fd, "{\"op\":\"shutdown\",\"id\":0}\n") &&
          read_reply(fd, buffer, reply)) {
        // ack drained; the server loop is exiting
      }
      ::close(fd);
    }
  }
  server.join();

  // Host-dependent numbers on stderr; the diffable verdict on stdout.
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());
  AsciiTable table({"Measure", "Value"});
  table.set_align(1, Align::Right);
  table.add_row({"queries answered", std::to_string(all.size())});
  table.add_row({"p50 latency",
                 AsciiTable::num(percentile(all, 0.50) * 1e3, 3) + " ms"});
  table.add_row({"p99 latency",
                 AsciiTable::num(percentile(all, 0.99) * 1e3, 3) + " ms"});
  table.add_row({"throughput",
                 AsciiTable::num(static_cast<double>(all.size()) / elapsed,
                                 0) +
                     " queries/s"});
  std::fprintf(stderr, "serve_traffic latency (%u clients):\n%s", clients,
               table.render().c_str());

  const std::size_t answered = all.size();
  std::printf("parity: %zu/%zu replies byte-identical to the direct "
              "answer, %zu mismatches, %zu transport errors\n",
              answered - mismatches.load(), requests.size(),
              mismatches.load(), transport_errors.load());
  return (mismatches.load() == 0 && transport_errors.load() == 0 &&
          answered == requests.size())
             ? 0
             : 1;
}
