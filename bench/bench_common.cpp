#include "bench_common.hpp"

#include <cstdio>
#include <fstream>

#include "pipeline/study_builder.hpp"

namespace msim::bench {

const metrics::Study& paper_study() {
  // Built through the staged pipeline with the artifact cache on: the
  // first bench in a tree pays for the campaign/probes/traces once, every
  // later bench (or rerun) loads the cached artifacts instead.
  static const metrics::Study study = [] {
    pipeline::StudyBuilder builder;
    builder.cache(true);
    metrics::Study built = builder.build();
    std::printf("(%s)\n\n", builder.stats().summary().c_str());
    return built;
  }();
  return study;
}

void banner(const std::string& experiment, const std::string& paper_artifact) {
  std::printf("=========================================================\n");
  std::printf("msim reproduction | %s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_artifact.c_str());
  std::printf("Carrington et al., \"How Well Can Simple Metrics Represent\n");
  std::printf("the Performance of HPC Applications?\", SC 2005\n");
  std::printf("=========================================================\n\n");
}

void save_artifact(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::printf("(could not write %s)\n", path.c_str());
    return;
  }
  out << content;
  std::printf("(wrote %s)\n", path.c_str());
}

}  // namespace msim::bench
