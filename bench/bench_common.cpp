#include "bench_common.hpp"

#include <cstdio>
#include <fstream>

namespace msim::bench {

const metrics::Study& paper_study() {
  static const metrics::Study study = metrics::Study::build();
  return study;
}

void banner(const std::string& experiment, const std::string& paper_artifact) {
  std::printf("=========================================================\n");
  std::printf("msim reproduction | %s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_artifact.c_str());
  std::printf("Carrington et al., \"How Well Can Simple Metrics Represent\n");
  std::printf("the Performance of HPC Applications?\", SC 2005\n");
  std::printf("=========================================================\n\n");
}

void save_artifact(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::printf("(could not write %s)\n", path.c_str());
    return;
  }
  out << content;
  std::printf("(wrote %s)\n", path.c_str());
}

}  // namespace msim::bench
