#include "bench_common.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/parse.hpp"
#include "obs/run_record.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/study_builder.hpp"
#include "report/report.hpp"

namespace msim::bench {

namespace {

namespace fs = std::filesystem;

/// Cache root for this bench process. Now that cache v2 evicts under a
/// size cap, two benches sharing one directory could evict each other's
/// entries mid-run, so the default is a per-run scratch directory
/// (removed at exit). Setting MSIM_CACHE_DIR opts into a shared
/// directory — the cross-bench warm-reuse mode; safe because loads and
/// stores are atomic and checksummed, just no longer the default.
std::string resolve_cache_dir() {
  if (const std::string dir = env_string("MSIM_CACHE_DIR"); !dir.empty()) {
    return dir;  // opt-in shared directory
  }
  std::error_code ec;
  fs::path scratch = fs::temp_directory_path(ec) /
                     ("msim-bench-cache-" + std::to_string(::getpid()));
  if (ec) scratch = ".msim-cache-" + std::to_string(::getpid());
  static std::string cleanup_path;
  cleanup_path = scratch.string();
  std::atexit([] {
    std::error_code ignored;
    fs::remove_all(cleanup_path, ignored);
  });
  return cleanup_path;
}

}  // namespace

const std::string& cache_dir() {
  static const std::string dir = resolve_cache_dir();
  return dir;
}

const metrics::Study& paper_study() {
  // Built through the staged pipeline with the artifact cache on. With a
  // shared MSIM_CACHE_DIR the first bench in a tree pays for the
  // campaign/probes/traces once and every later bench (or rerun) loads
  // the cached artifacts; by default the cache is per-run scratch (see
  // cache_dir above), which still dedupes within one process.
  static const metrics::Study study = [] {
    pipeline::StudyBuilder builder;
    builder.cache(true).cache_dir(cache_dir());
    metrics::Study built = builder.build();
    // Stats are diagnostics (timings vary run to run): stderr, so stdout
    // stays a clean, diffable table stream.
    std::fprintf(stderr, "(%s)\n", builder.stats().summary().c_str());
    return built;
  }();
  return study;
}

void banner(const std::string& experiment,
            const std::string& paper_artifact) {
  banner(0, nullptr, experiment, paper_artifact);
}

// The "experiment" identity key consumed by msim-report is written here,
// not in run_record.cpp: benches are the only writers that name runs.
// msim-lint: proto(run.record, writer)
void banner(int argc, char** argv, const std::string& experiment,
            const std::string& paper_artifact) {
  obs::set_metrics_renderer(&report::render_metrics);
  obs::init_from_env();
  for (int i = 1; i < argc; ++i) {
    (void)obs::handle_telemetry_flag(argv[i]);
  }
  // The experiment name keys the run record's identity: records from
  // different benches never merge their samples. A no-op unless
  // MSIM_RUN_RECORD / --run-record enabled recording above, and all
  // record output lands in the file at exit, so stdout stays diffable.
  obs::record_run_info("experiment", experiment);
  obs::install_exit_writer();

  std::printf("=========================================================\n");
  std::printf("msim reproduction | %s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_artifact.c_str());
  std::printf("Carrington et al., \"How Well Can Simple Metrics Represent\n");
  std::printf("the Performance of HPC Applications?\", SC 2005\n");
  std::printf("=========================================================\n\n");
}

void save_artifact(const std::string& path, const std::string& content) {
  // Artifacts may target an output directory (e.g. figs/); create it.
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ignored;
    fs::create_directories(parent, ignored);
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "(could not write %s)\n", path.c_str());
    return;
  }
  out << content;
  std::fprintf(stderr, "(wrote %s)\n", path.c_str());
}

}  // namespace msim::bench
