#include "bench_common.hpp"

#include <cstdio>
#include <fstream>

#include "obs/telemetry.hpp"
#include "pipeline/study_builder.hpp"
#include "report/report.hpp"

namespace msim::bench {

const metrics::Study& paper_study() {
  // Built through the staged pipeline with the artifact cache on: the
  // first bench in a tree pays for the campaign/probes/traces once, every
  // later bench (or rerun) loads the cached artifacts instead.
  static const metrics::Study study = [] {
    pipeline::StudyBuilder builder;
    builder.cache(true);
    metrics::Study built = builder.build();
    // Stats are diagnostics (timings vary run to run): stderr, so stdout
    // stays a clean, diffable table stream.
    std::fprintf(stderr, "(%s)\n", builder.stats().summary().c_str());
    return built;
  }();
  return study;
}

void banner(const std::string& experiment,
            const std::string& paper_artifact) {
  banner(0, nullptr, experiment, paper_artifact);
}

void banner(int argc, char** argv, const std::string& experiment,
            const std::string& paper_artifact) {
  obs::set_metrics_renderer(&report::render_metrics);
  obs::init_from_env();
  for (int i = 1; i < argc; ++i) {
    (void)obs::handle_telemetry_flag(argv[i]);
  }
  obs::install_exit_writer();

  std::printf("=========================================================\n");
  std::printf("msim reproduction | %s\n", experiment.c_str());
  std::printf("reproduces: %s\n", paper_artifact.c_str());
  std::printf("Carrington et al., \"How Well Can Simple Metrics Represent\n");
  std::printf("the Performance of HPC Applications?\", SC 2005\n");
  std::printf("=========================================================\n\n");
}

void save_artifact(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "(could not write %s)\n", path.c_str());
    return;
  }
  out << content;
  std::fprintf(stderr, "(wrote %s)\n", path.c_str());
}

}  // namespace msim::bench
