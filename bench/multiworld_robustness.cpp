// Robustness bench: the paper's conclusions across many "worlds".
//
// msim's ground truth carries deterministic unmodeled variation keyed by a
// noise salt; the repository's reference world is one draw. This bench
// re-runs the entire study in 16 consecutive worlds and reports, for every
// metric, its error distribution — and for each of the paper's five
// qualitative claims, the fraction of worlds in which it holds. The claims
// should be properties of the *methodology*, not of one lucky seed.
#include <cstdio>
#include <optional>

#include "bench_common.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "metrics/multiworld.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  // First non-flag argument is the world count (flags such as --trace /
  // --metrics are consumed by banner()).
  std::size_t worlds = 16;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      const std::optional<unsigned> parsed = parse_unsigned(argv[i]);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr,
                     "multiworld_robustness: world count must be a "
                     "positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      worlds = *parsed;
      break;
    }
  }

  bench::banner(argc, argv, "multiworld_robustness",
                "conclusion stability across noise worlds (beyond the "
                "paper)");

  // Probes and traces do not depend on the noise salt: the worlds share
  // one stage graph, so every world past the first dedups onto the first
  // world's probe/trace nodes and only the ground-truth campaigns fan
  // out. The cache rides in the bench scratch directory (or the shared
  // MSIM_CACHE_DIR) like every other bench, instead of littering the
  // working directory.
  metrics::StudyOptions base_options;
  base_options.cache_artifacts = true;
  base_options.cache_dir = bench::cache_dir();
  const auto result = metrics::run_multiworld(
      worlds, 0, metrics::all_metrics(), base_options);

  AsciiTable table({"Metric", "Mean", "Stddev", "Min", "Max"});
  for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::Right);
  for (const auto& distribution : result.distributions) {
    table.add_row({metrics::row_label(distribution.metric) + " " +
                       metrics::description(distribution.metric),
                   AsciiTable::num(distribution.mean, 1),
                   AsciiTable::num(distribution.stddev, 1),
                   AsciiTable::num(distribution.min, 1),
                   AsciiTable::num(distribution.max, 1)});
  }
  std::printf("Overall |error| %% across %zu worlds:\n%s\n", worlds,
              table.render().c_str());

  AsciiTable claims({"Claim", "Holds in"});
  claims.set_align(1, Align::Right);
  for (const auto& claim : result.claims) {
    claims.add_row({claim.description,
                    std::to_string(claim.holds_in) + "/" +
                        std::to_string(claim.worlds)});
  }
  std::printf("%s\n", claims.render().c_str());
  return 0;
}
