// E4 — reproduces paper Figure 6: error assessment for OVERFLOW-2 Standard.
#include "fig_app_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_app(
      argc, argv, "fig6_overflow2", "Figure 6 (OVERFLOW2 Standard error assessment)",
      "OVERFLOW2_Standard");
}
