// E3 — reproduces paper Table 5: system-specific average absolute percent
// error for each of the nine metrics, with an OVERALL row, printed next to
// the paper's published matrix.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "table5_system_error",
                "Table 5 (per-system error per metric)");
  const auto& study = bench::paper_study();
  const auto predictions = study.evaluate(metrics::paper_metrics());
  std::printf("%s\n", report::render_table5(study, predictions).c_str());
  return 0;
}
