// E7 — quantifies the paper's Section 3 cost discussion: "dilated execution
// time must be a weighed consideration when evaluating metric accuracy (one
// should ask 'was the increase in accuracy worth the effort?')". For each
// application we price the one-time tracing cost on the base system (30x
// memory-trace dilation; ~1x for counter-only runs) against the error
// reduction each metric family buys over the best simple metric.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "trace/dilation.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "tracing_cost",
                "Section 3 (tracing dilation vs accuracy tradeoff)");
  const auto& study = bench::paper_study();

  AsciiTable table({"Application", "Base run (s)", "CPUs",
                    "Counters (CPU-h)", "Memory trace (CPU-h)"});
  for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::Right);

  double total_memory_hours = 0.0;
  for (const auto& test_case : study.suite()) {
    // Tracing happens once per application at its smallest configuration.
    const int nprocs = test_case.cpu_counts.front();
    const double base_seconds =
        study.observations().at(test_case.name, nprocs,
                                study.base_machine());
    const auto cost = trace::tracing_cost(base_seconds, nprocs);
    total_memory_hours += cost.memory_hours;
    table.add_row({test_case.name, AsciiTable::num(base_seconds, 0),
                   std::to_string(nprocs),
                   AsciiTable::num(cost.counter_hours, 0),
                   AsciiTable::num(cost.memory_hours, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto predictions = study.evaluate(metrics::all_metrics());
  const auto error_of = [&](metrics::Metric metric) {
    return metrics::Study::summarize(
               metrics::Study::slice_metric(predictions, metric))
        .mean_abs_error_pct;
  };
  const double best_simple =
      std::min({error_of(metrics::Metric::S1_Hpl),
                error_of(metrics::Metric::S2_Stream),
                error_of(metrics::Metric::S3_Gups)});
  const double counters_error = error_of(metrics::Metric::P5_HplStream);
  const double traced_error = error_of(metrics::Metric::P9_HplMapsNetDep);

  std::printf("Best simple metric error:      %5.1f%%  (cost: run probes)\n",
              best_simple);
  std::printf("Counter-only metrics (#4-#5):  %5.1f%%  (cost: ~1x reruns)\n",
              counters_error);
  std::printf("Memory-traced metrics (#6-#9): %5.1f%%  (cost: %.0f CPU-h "
              "once, reusable for all targets)\n",
              traced_error, total_memory_hours);
  std::printf(
      "\nThe paper's answer: memory tracing is the step that pays — the\n"
      "counts are collected once on the base system and reused for every\n"
      "candidate machine.\n");
  return 0;
}
