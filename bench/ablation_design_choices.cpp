// Ablation bench for the design choices DESIGN.md section 6 calls out:
//  * convolver overlap policy (paper: max) vs additive;
//  * stride-detector short-stride threshold (paper: 8 elements);
//  * static-analyzer quality (perfect vs default vs blind) — how much of
//    Metric #9's edge the binary analysis is responsible for.
// Each variant rebuilds the study with one knob changed and reports the
// overall error of the affected metrics.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace msim;

double metric_error(const metrics::Study& study, metrics::Metric metric) {
  const auto predictions = study.evaluate({metric});
  return metrics::Study::summarize(predictions).mean_abs_error_pct;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "ablation_design_choices",
                "DESIGN.md section 6 (ablations of modeling choices)");

  AsciiTable table({"Variant", "#6", "#7", "#9"});
  for (std::size_t c = 1; c < 4; ++c) table.set_align(c, Align::Right);

  auto add_row = [&](const std::string& name, const metrics::Study& study) {
    table.add_row({name,
                   AsciiTable::num(
                       metric_error(study,
                                    metrics::Metric::P6_HplStreamGups), 1),
                   AsciiTable::num(
                       metric_error(study, metrics::Metric::P7_HplMaps), 1),
                   AsciiTable::num(
                       metric_error(study,
                                    metrics::Metric::P9_HplMapsNetDep), 1)});
  };

  add_row("reference", bench::paper_study());

  {
    metrics::StudyOptions options;
    options.convolver.overlap = cpusim::OverlapPolicy::Sum;
    add_row("convolver overlap = sum", metrics::Study::build(options));
  }
  {
    metrics::StudyOptions options;
    options.tracer.short_stride_threshold = 2;
    add_row("short-stride threshold = 2", metrics::Study::build(options));
  }
  {
    metrics::StudyOptions options;
    options.tracer.short_stride_threshold = 64;
    add_row("short-stride threshold = 64", metrics::Study::build(options));
  }
  {
    metrics::StudyOptions options;
    options.tracer.analyzer = trace::StaticAnalyzer(0.0, 0.0);
    add_row("perfect static analyzer", metrics::Study::build(options));
  }
  {
    metrics::StudyOptions options;
    options.tracer.analyzer = trace::StaticAnalyzer(1.0, 0.0);
    add_row("blind static analyzer", metrics::Study::build(options));
  }
  {
    metrics::StudyOptions options;
    options.tracer.sample_refs = 1u << 12;
    add_row("tracer sample 4K refs", metrics::Study::build(options));
  }
  {
    metrics::StudyOptions options;
    options.convolver.short_mapping = convolve::ShortStrideMapping::AsUnit;
    add_row("short bin charged as unit", metrics::Study::build(options));
  }
  {
    metrics::StudyOptions options;
    options.convolver.short_mapping =
        convolve::ShortStrideMapping::AsRandom;
    add_row("short bin charged as random", metrics::Study::build(options));
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading guide: a blind analyzer should push #9 toward #7 (the\n"
      "dependency term is what separates them); a tiny tracer sample\n"
      "degrades every MAPS-based metric via working-set misestimation;\n"
      "overlap=sum biases all convolved predictions slow.\n");
  return 0;
}
