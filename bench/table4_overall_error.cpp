// E2 — reproduces paper Table 4 and Figure 2: average absolute error and
// standard deviation per metric over the full campaign (5 apps x 3 counts x
// 10 systems = 150 observations, 9 metrics = 1,350 predictions, plus the
// two balanced-rating composites).
//
// Flags: --overlap=sum  run the convolver with additive (no-overlap)
//                       combination instead of the paper's max() — the
//                       ablation called out in DESIGN.md section 6.
//        --ci           add bootstrap 95% confidence intervals for each
//                       metric's mean error (the paper reports bare means
//                       over 150 predictions).
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "report/gnuplot.hpp"
#include "report/report.hpp"
#include "stats/bootstrap.hpp"

int main(int argc, char** argv) {
  using namespace msim;

  bool overlap_sum = false;
  bool with_ci = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overlap=sum") == 0) overlap_sum = true;
    if (std::strcmp(argv[i], "--ci") == 0) with_ci = true;
  }

  bench::banner(argc, argv, "table4_overall_error",
                "Table 4 + Figure 2 (overall error per metric)");

  const metrics::Study* study = &bench::paper_study();
  std::optional<metrics::Study> alternate;
  if (overlap_sum) {
    // Convolver options are applied at predict() time, after every cached
    // stage — this build reuses the paper study's artifacts wholesale.
    metrics::StudyOptions options;
    options.convolver.overlap = cpusim::OverlapPolicy::Sum;
    options.cache_artifacts = true;
    alternate.emplace(metrics::Study::build(options));
    study = &*alternate;
    std::printf("(convolver overlap policy: Sum)\n\n");
  }

  const auto predictions = study->evaluate(metrics::all_metrics());
  std::printf("%s\n",
              report::render_table4(*study, predictions, true).c_str());

  // Base-system rows to subtract: one per (test case, processor count) —
  // counts per case vary, so sum them rather than assuming 3.
  std::size_t base_rows = 0;
  for (const auto& test_case : study->suite()) {
    base_rows += test_case.cpu_counts.size();
  }
  std::printf("Observations: %zu application runs, %zu predictions\n",
              study->observations().size() - base_rows,
              predictions.size());

  if (with_ci) {
    AsciiTable ci_table({"Metric", "Mean |Err| (%)", "95% CI"});
    ci_table.set_align(1, Align::Right);
    ci_table.set_align(2, Align::Right);
    for (metrics::Metric metric : metrics::all_metrics()) {
      const auto slice =
          metrics::Study::slice_metric(predictions, metric);
      std::vector<double> errors;
      for (const auto& prediction : slice) {
        errors.push_back(prediction.abs_error_pct());
      }
      const auto interval = stats::bootstrap_mean_ci(errors);
      ci_table.add_row(
          {metrics::row_label(metric) + " " +
               metrics::description(metric),
           AsciiTable::num(interval.point, 1),
           "[" + AsciiTable::num(interval.lower, 1) + ", " +
               AsciiTable::num(interval.upper, 1) + "]"});
    }
    std::printf("\nBootstrap CIs over the 150 predictions per metric:\n%s",
                ci_table.render().c_str());
  }

  // Generated figure inputs land in figs/ (gitignored), not the working
  // directory; the .gp script references its sibling csv, so
  // `cd figs && gnuplot fig2_error_per_metric.gp` reproduces Figure 2.
  std::ostringstream csv;
  report::write_table4_csv(csv, *study, predictions);
  bench::save_artifact("figs/fig2_error_per_metric.csv", csv.str());

  std::ostringstream script;
  report::write_fig2_gnuplot(script, "fig2_error_per_metric.csv");
  bench::save_artifact("figs/fig2_error_per_metric.gp", script.str());
  return 0;
}
