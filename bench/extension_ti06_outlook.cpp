// Extension bench: the TI-06 outlook.
//
// Convolve the TI-05 application signatures against the machine models on
// 2005's roadmaps — Cray XT3, BlueGene/L, dual-core Opteron/InfiniBand —
// plus the best incumbent per application, using Metric #9. This is the
// methodology doing the job it was built for: evaluating machines that
// cannot be benchmarked with the applications yet.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "convolve/convolver.hpp"
#include "machine/proposed.hpp"
#include "pipeline/study_graph.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "extension_ti06_outlook",
                "proposed-systems evaluation (the procurement use case)");

  const auto proposed = machine::proposed_systems();

  // The paper study and the proposed-system probes build as one stage
  // graph: the probe batch rides the study's pool and cache, and any
  // machine both sides probe resolves to a single node.
  pipeline::StudyGraph graph;
  graph.cache(true).cache_dir(bench::cache_dir());
  const std::size_t study_handle = graph.add_study(pipeline::paper_spec());
  const std::size_t batch_handle = graph.add_probes(proposed);
  graph.build_all();
  const auto study = graph.take_study(study_handle);
  const auto& base_probes = study.probe_set(study.base_machine());

  auto probe_map = graph.probe_sets(batch_handle);
  std::vector<probes::ProbeSet> proposed_probes;
  for (const auto& machine : proposed) {
    proposed_probes.push_back(std::move(probe_map.at(machine.name)));
  }
  // Diagnostics (cache/timing state varies run to run): stderr keeps
  // stdout a clean, diffable table stream.
  const pipeline::StageStats& probe_stats = graph.probe_stats(batch_handle);
  std::fprintf(stderr, "(%s: %zu/%zu cached)\n(%s)\n",
               "proposed-probes", probe_stats.cache_hits, probe_stats.items,
               graph.stats().summary().c_str());

  std::vector<std::string> headers = {"Application", "CPUs",
                                      "best incumbent"};
  for (const auto& machine : proposed) headers.push_back(machine.name);
  AsciiTable table(headers);
  for (std::size_t c = 1; c < headers.size(); ++c) {
    table.set_align(c, Align::Right);
  }

  for (const auto& test_case : study.suite()) {
    const int nprocs = test_case.cpu_counts[1];
    const auto& signature = study.signature(test_case.name, nprocs);
    const double base_seconds =
        study.observations().at(test_case.name, nprocs,
                                study.base_machine());

    // Best incumbent by Metric #9 prediction.
    double best_incumbent = 1e300;
    std::string incumbent_name;
    for (const auto& machine : study.target_names()) {
      const double predicted = convolve::predict_time(
          signature, study.probe_set(machine), base_probes, base_seconds,
          convolve::PredictiveMetric::M9_HplMapsNetDep);
      if (predicted < best_incumbent) {
        best_incumbent = predicted;
        incumbent_name = machine;
      }
    }

    std::vector<std::string> cells = {
        test_case.name, std::to_string(nprocs),
        AsciiTable::num(best_incumbent, 0) + " (" + incumbent_name + ")"};
    for (std::size_t m = 0; m < proposed.size(); ++m) {
      const double predicted = convolve::predict_time(
          signature, proposed_probes[m], base_probes, base_seconds,
          convolve::PredictiveMetric::M9_HplMapsNetDep);
      cells.push_back(AsciiTable::num(predicted, 0) + " (" +
                      AsciiTable::num(best_incumbent / predicted, 2) +
                      "x)");
    }
    table.add_row(std::move(cells));
  }
  std::printf("Metric #9 predicted times-to-solution (seconds; factor vs "
              "best incumbent):\n%s\n",
              table.render().c_str());
  std::printf(
      "Per-processor comparisons at the paper's middle counts. The XT3's\n"
      "dedicated memory controller and the dual-core IB system lead on\n"
      "memory-bound codes; BlueGene/L's slow cores need far more ranks to\n"
      "compete — exactly the 2005-06 procurement debate.\n");
  return 0;
}
