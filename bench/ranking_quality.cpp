// Ranking-quality bench (beyond the paper's tables, but its core claim):
// "If ... information about operation types specific to a target
// application is acquired, then a few simple metrics can be combined and
// weighted appropriately to predict performance and rank with about 80%
// accuracy." This bench scores the *rankings* directly: Spearman/Kendall
// correlation with the true machine ordering, plus two procurement views
// (how often each metric names the true fastest machine, and the cost of
// buying its pick).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "metrics/ranking.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "ranking_quality",
                "Section 7 conclusion (ranking accuracy of each metric)");

  const auto& study = bench::paper_study();
  const auto qualities =
      metrics::ranking_qualities(study, metrics::all_metrics());

  AsciiTable table({"Metric", "Spearman", "Kendall", "Top pick", "Regret"});
  for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::Right);
  for (const auto& quality : qualities) {
    table.add_row({metrics::row_label(quality.metric) + " " +
                       metrics::description(quality.metric),
                   AsciiTable::num(quality.mean_spearman, 2),
                   AsciiTable::num(quality.mean_kendall, 2),
                   AsciiTable::num(quality.top_pick_accuracy * 100, 0) + "%",
                   AsciiTable::num(quality.mean_pick_regret * 100, 1) +
                       "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Averaged over %zu (application, count) configurations of 10\n"
      "machines each. 'Top pick' = how often the metric names the truly\n"
      "fastest system; 'Regret' = extra run time of the machine it would\n"
      "have bought, relative to the true best.\n",
      qualities.front().configurations);
  return 0;
}
