// Distributed-campaign scaling bench: the TI-06 outlook workload run
// through the StudyGraph's distributed executor.
//
// Builds the full paper study plus the proposed-system probe batch — the
// procurement-scale campaign — with distribution configured purely from
// the environment (MSIM_DIST_WORKERS + MSIM_WORKER_CMD; unset = the
// in-process pool), so stdout is byte-identical across worker counts and
// the CI parity job can diff it directly. Scaling evidence (wall clock,
// per-worker peak RSS vs this process's own) goes to stderr.
#include <sys/resource.h>

#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "convolve/convolver.hpp"
#include "machine/proposed.hpp"
#include "pipeline/study_graph.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "dist_campaign",
                "campaign-scale distribution (workers from the env)");

  const auto proposed = machine::proposed_systems();

  pipeline::StudyGraph graph;
  graph.cache(true).cache_dir(bench::cache_dir());
  const std::size_t study_handle = graph.add_study(pipeline::paper_spec());
  const std::size_t batch_handle = graph.add_probes(proposed);
  graph.build_all();
  const auto study = graph.take_study(study_handle);
  const auto& base_probes = study.probe_set(study.base_machine());
  auto probe_map = graph.probe_sets(batch_handle);

  // Metric #9 outlook table — the same numbers whether zero, one or four
  // worker processes computed the artifacts.
  std::vector<std::string> headers = {"Application", "CPUs"};
  for (const auto& machine : proposed) headers.push_back(machine.name);
  AsciiTable table(headers);
  for (std::size_t c = 1; c < headers.size(); ++c) {
    table.set_align(c, Align::Right);
  }
  for (const auto& test_case : study.suite()) {
    const int nprocs = test_case.cpu_counts[1];
    const auto& signature = study.signature(test_case.name, nprocs);
    const double base_seconds = study.observations().at(
        test_case.name, nprocs, study.base_machine());
    std::vector<std::string> cells = {test_case.name,
                                      std::to_string(nprocs)};
    for (const auto& machine : proposed) {
      const double predicted = convolve::predict_time(
          signature, probe_map.at(machine.name), base_probes, base_seconds,
          convolve::PredictiveMetric::M9_HplMapsNetDep);
      cells.push_back(AsciiTable::num(predicted, 0));
    }
    table.add_row(std::move(cells));
  }
  std::printf("Metric #9 predicted times-to-solution on the proposed "
              "systems (seconds):\n%s\n",
              table.render().c_str());

  // Scaling diagnostics: coordinator wall/RSS vs the worker pool's. With
  // workers, the coordinator never runs stage work itself, so its peak
  // RSS should sit below a single process computing everything.
  const pipeline::GraphStats& stats = graph.stats();
  std::fprintf(stderr, "(%s)\n", stats.summary().c_str());
  if (stats.dist.workers > 0) {
    std::fprintf(stderr, "(%s)\n", stats.dist.summary().c_str());
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    std::fprintf(stderr, "(coordinator: peak rss %ld kb, wall %.2fs)\n",
                 usage.ru_maxrss, stats.wall_seconds);
  }
  return 0;
}
