// E5 — reproduces the paper's Section 4 balanced-rating analysis (the text
// between metrics #3 and #4): an IDC-style equal-weight composite of HPL,
// STREAM and all_reduce (paper: 35% error), and regression-optimized
// weights (paper: 5% / 50% / 45%, 33% error). The punchline — which this
// bench checks — is that no fixed weighting of simple metrics beats GUPS
// alone by much.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "data/paper_data.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "balanced_rating",
                "Section 4 text (IDC balanced rating, equal vs fitted)");
  const auto& study = bench::paper_study();

  const auto predictions = study.evaluate(
      {metrics::Metric::S3_Gups, metrics::Metric::BalancedEqual,
       metrics::Metric::BalancedFitted});

  const auto reference = data::balanced_reference();
  AsciiTable table({"Composite", "Avg |Err| (%)", "Stddev (%)", "Paper"});
  table.set_align(1, Align::Right);
  table.set_align(2, Align::Right);
  table.set_align(3, Align::Right);

  auto add = [&](metrics::Metric metric, double paper_value) {
    const auto summary = metrics::Study::summarize(
        metrics::Study::slice_metric(predictions, metric));
    table.add_row({metrics::description(metric),
                   AsciiTable::num(summary.mean_abs_error_pct, 0),
                   AsciiTable::num(summary.stddev_abs_error_pct, 0),
                   AsciiTable::num(paper_value, 0)});
  };
  add(metrics::Metric::BalancedEqual, reference.equal_mean_pct);
  add(metrics::Metric::BalancedFitted, reference.fitted_mean_pct);
  add(metrics::Metric::S3_Gups, 33);
  std::printf("%s\n", table.render().c_str());

  const auto& weights = study.balanced_fitted().weights();
  std::printf(
      "Fitted weights: HPL %.0f%%, STREAM %.0f%%, all_reduce %.0f%%\n",
      weights[0] * 100, weights[1] * 100, weights[2] * 100);
  std::printf("Paper's fitted weights: HPL %.0f%%, STREAM %.0f%%, "
              "all_reduce %.0f%%\n",
              reference.fitted_weights[0] * 100,
              reference.fitted_weights[1] * 100,
              reference.fitted_weights[2] * 100);
  std::printf(
      "\nShape check (paper's conclusion): neither composite should beat\n"
      "GUPS alone significantly — \"this seems to disprove the notion that\n"
      "a single balanced rating can significantly improve on a simple\n"
      "benchmark.\"\n");
  return 0;
}
