// E4 — reproduces paper Figure 7: error assessment for RF-CTH Standard.
#include "fig_app_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_app(
      argc, argv, "fig7_rfcth", "Figure 7 (RFCTH Standard error assessment)",
      "RFCTH_Standard");
}
