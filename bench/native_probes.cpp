// E9 — the probe kernels on real silicon (google-benchmark): STREAM triad,
// GUPS-style random update, strided reads at several working-set sizes
// (a native MAPS sweep), the dependent pointer chase and the branchy read
// that back ENHANCED MAPS. Bandwidths are reported as bytes/second.
#include <benchmark/benchmark.h>

#include "probes/native.hpp"

namespace {

using namespace msim::probes::native;

void BM_StreamTriad(benchmark::State& state) {
  const auto elements = static_cast<std::size_t>(state.range(0));
  double bytes = 0.0;
  for (auto _ : state) {
    const auto result = stream_triad(elements, 1);
    benchmark::DoNotOptimize(result.checksum);
    bytes += result.bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StreamTriad)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 21);

void BM_RandomUpdate(benchmark::State& state) {
  const int log2_elements = static_cast<int>(state.range(0));
  double bytes = 0.0;
  for (auto _ : state) {
    const auto result = random_update(log2_elements, 1 << 18);
    benchmark::DoNotOptimize(result.checksum);
    bytes += result.bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_RandomUpdate)->Arg(14)->Arg(18)->Arg(22);

void BM_StridedRead(benchmark::State& state) {
  const auto ws = static_cast<std::size_t>(state.range(0));
  const auto stride = static_cast<std::size_t>(state.range(1));
  double bytes = 0.0;
  for (auto _ : state) {
    const auto result = strided_read(ws, stride, 1);
    benchmark::DoNotOptimize(result.checksum);
    bytes += result.bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StridedRead)
    ->Args({16 << 10, 1})
    ->Args({16 << 10, 8})
    ->Args({4 << 20, 1})
    ->Args({4 << 20, 8})
    ->Args({64 << 20, 1});

void BM_PointerChase(benchmark::State& state) {
  const auto ws = static_cast<std::size_t>(state.range(0));
  double bytes = 0.0;
  for (auto _ : state) {
    const auto result = pointer_chase(ws, 1 << 18);
    benchmark::DoNotOptimize(result.checksum);
    bytes += result.bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PointerChase)->Arg(16 << 10)->Arg(1 << 20)->Arg(32 << 20);

void BM_BranchyRead(benchmark::State& state) {
  const auto ws = static_cast<std::size_t>(state.range(0));
  double bytes = 0.0;
  for (auto _ : state) {
    const auto result = branchy_read(ws, 1);
    benchmark::DoNotOptimize(result.checksum);
    bytes += result.bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BranchyRead)->Arg(16 << 10)->Arg(4 << 20);

}  // namespace

BENCHMARK_MAIN();
