// E4 — reproduces paper Figure 5: error assessment for HYCOM Standard.
#include "fig_app_common.hpp"

int main() {
  return msim::bench::run_figure_app(
      "fig5_hycom", "Figure 5 (HYCOM Standard error assessment)",
      "HYCOM_Standard");
}
