// E4 — reproduces paper Figure 5: error assessment for HYCOM Standard.
#include "fig_app_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_app(
      argc, argv, "fig5_hycom", "Figure 5 (HYCOM Standard error assessment)",
      "HYCOM_Standard");
}
