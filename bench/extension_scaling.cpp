// Extension bench: cross-count signature scaling.
//
// Trace each application at its two smaller processor counts, extrapolate
// the signature to the largest count, and predict all ten machines with
// Metric #9 — comparing against (a) predictions from a genuine trace at
// that count and (b) the "real" runs. If scaled signatures track real
// traces, the most expensive tracing runs can be skipped entirely.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "convolve/convolver.hpp"
#include "stats/summary.hpp"
#include "trace/scaling.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "extension_scaling",
                "cross-count signature extrapolation (beyond the paper)");

  const auto& study = bench::paper_study();
  constexpr auto kMetric = convolve::PredictiveMetric::M9_HplMapsNetDep;

  AsciiTable table({"Application", "Extrapolated to", "|err| scaled",
                    "|err| traced", "Scaled vs traced"});
  for (std::size_t c = 2; c < 5; ++c) table.set_align(c, Align::Right);

  for (const auto& test_case : study.suite()) {
    const int p0 = test_case.cpu_counts[0];
    const int p1 = test_case.cpu_counts[1];
    const int p2 = test_case.cpu_counts[2];

    const auto& traced = study.signature(test_case.name, p2);
    const auto scaled = trace::scale_signature(
        study.signature(test_case.name, p0),
        study.signature(test_case.name, p1), p2);

    const auto& base_probes = study.probe_set(study.base_machine());
    const double base_seconds =
        study.observations().at(test_case.name, p2, study.base_machine());

    std::vector<double> scaled_errors, traced_errors, divergences;
    for (const auto& machine : study.target_names()) {
      const auto& target_probes = study.probe_set(machine);
      const double actual =
          study.observations().at(test_case.name, p2, machine);
      const double from_scaled =
          convolve::predict_time(scaled, target_probes, base_probes,
                                 base_seconds, kMetric);
      const double from_traced =
          convolve::predict_time(traced, target_probes, base_probes,
                                 base_seconds, kMetric);
      scaled_errors.push_back(
          stats::absolute_percent_error(from_scaled, actual));
      traced_errors.push_back(
          stats::absolute_percent_error(from_traced, actual));
      divergences.push_back(
          stats::absolute_percent_error(from_scaled, from_traced));
    }
    table.add_row({test_case.name,
                   std::to_string(p0) + "+" + std::to_string(p1) + " -> " +
                       std::to_string(p2),
                   AsciiTable::num(stats::mean(scaled_errors), 1) + "%",
                   AsciiTable::num(stats::mean(traced_errors), 1) + "%",
                   AsciiTable::num(stats::mean(divergences), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "'|err| scaled' predicts the largest count from signatures\n"
      "extrapolated off the two smaller traces; '|err| traced' uses a\n"
      "real trace at that count. If the last column is small, the most\n"
      "expensive (largest-count) tracing runs are unnecessary.\n");
  return 0;
}
