// E6 — validates the machine and application models against the paper's
// Appendix Tables 6-10 (the observed times-to-solution): for every
// (application, CPU count) we print simulated vs published seconds and the
// Spearman rank correlation across machines. The simulation does not — and
// cannot — match absolute numbers cell by cell; what it must preserve is
// who beats whom.
#include <cstdio>

#include "bench_common.hpp"
#include "report/report.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "appendix_validation",
                "Appendix Tables 6-10 (observed times-to-solution)");
  const auto& study = bench::paper_study();
  std::printf("%s",
              report::render_appendix_comparison(study.observations())
                  .c_str());
  return 0;
}
