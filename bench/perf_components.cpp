// E8 — google-benchmark microbenchmarks of the library's hot components:
// the set-associative cache model, the stride detector, the address
// generators, the analytic bandwidth surface, block convolution, and a
// whole-application trace. These guard the simulator's own performance —
// the full 150-observation campaign must stay interactive.
//
// Before/after pairs gate the structure-of-arrays work: the per-block
// prediction sweep vs the batched column kernel, the unmemoized probe
// functions vs the suite runner, and a warm graph build with the batch
// cache prefetch off vs on. Alongside the console table the run writes
// figs/perf_components.csv (name, iterations, per-iteration times) so CI
// can compare stage timings against a recorded baseline mechanically.
#include <benchmark/benchmark.h>

#include <sstream>

#include "bench_common.hpp"
#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "memsim/bandwidth_model.hpp"
#include "memsim/cache.hpp"
#include "pipeline/study_graph.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "trace/stride_detector.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace {

using namespace msim;

void BM_CacheAccess(benchmark::State& state) {
  const auto& machine = machine::find("NAVO_655");
  memsim::Cache cache(machine.caches[0]);
  Rng rng(42);
  std::vector<std::uint64_t> addresses(4096);
  for (auto& a : addresses) a = rng.uniform_u64(1u << 22);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addresses[i & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyStream(benchmark::State& state) {
  const auto& machine = machine::find("ARL_Altix");
  memsim::CacheHierarchy hierarchy(machine);
  memsim::StreamSpec spec;
  spec.working_set_bytes = 1u << 20;
  spec.components = {{.stride_bytes = 8, .weight = 0.6},
                     {.stride_bytes = 0, .weight = 0.4}};
  memsim::AddressGenerator generator(spec, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.access(generator.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyStream);

void BM_StrideDetector(benchmark::State& state) {
  memsim::StreamSpec spec;
  spec.working_set_bytes = 8u << 20;
  spec.components = {{.stride_bytes = 8, .weight = 0.5},
                     {.stride_bytes = 32, .weight = 0.2},
                     {.stride_bytes = 0, .weight = 0.3}};
  memsim::AddressGenerator generator(spec, 11);
  trace::StrideDetector detector;
  for (auto _ : state) {
    const auto ref = generator.next_tagged();
    detector.observe({.pc = ref.stream_id, .address = ref.address});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StrideDetector);

void BM_BandwidthSurface(benchmark::State& state) {
  const auto& machine = machine::find("NAVO_655");
  std::uint64_t ws = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::sustained_bandwidth(
        machine, ws,
        {.stride = memsim::StrideClass::Unit,
         .dependency = memsim::DependencyClass::Independent,
         .branch_density = 0.0}));
    ws = ws >= (1u << 28) ? 4096 : ws * 2;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthSurface);

/// Shared inputs for the convolver benchmarks, built once per process.
struct SweepInputs {
  probes::ProbeSet probes;
  trace::ApplicationSignature signature;
};

const SweepInputs& sweep_inputs() {
  static const SweepInputs inputs{
      probes::run_probe_suite(machine::find("NAVO_655")),
      trace::trace_application(workload::make_avus_standard(64),
                               machine::base_system_name())};
  return inputs;
}

const std::vector<convolve::PredictiveMetric>& all_metrics() {
  static const std::vector<convolve::PredictiveMetric> metrics = {
      convolve::PredictiveMetric::M4_Hpl,
      convolve::PredictiveMetric::M5_HplStream,
      convolve::PredictiveMetric::M6_HplStreamGups,
      convolve::PredictiveMetric::M7_HplMaps,
      convolve::PredictiveMetric::M8_HplMapsNet,
      convolve::PredictiveMetric::M9_HplMapsNetDep,
  };
  return metrics;
}

void BM_ConvolveBlock(benchmark::State& state) {
  const SweepInputs& in = sweep_inputs();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(convolve::convolve_block(
        in.signature.blocks[i % in.signature.blocks.size()], in.probes,
        convolve::PredictiveMetric::M9_HplMapsNetDep));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConvolveBlock);

// Before: the full six-metric prediction sweep as six independent
// per-block convolution loops (what convolved_time replaced).
void BM_ConvolveSweepPerBlock(benchmark::State& state) {
  const SweepInputs& in = sweep_inputs();
  for (auto _ : state) {
    double total = 0.0;
    for (convolve::PredictiveMetric metric : all_metrics()) {
      for (const trace::BlockView block : in.signature.blocks) {
        total += convolve::convolve_block(block, in.probes, metric);
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * all_metrics().size() *
                          in.signature.blocks.size());
}
BENCHMARK(BM_ConvolveSweepPerBlock);

// After: the same sweep through the batched structure-of-arrays kernel
// (bitwise-identical results; the parity suite pins that down).
void BM_ConvolveSweepKernel(benchmark::State& state) {
  const SweepInputs& in = sweep_inputs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        convolve::convolved_times(in.signature, in.probes, all_metrics()));
  }
  state.SetItemsProcessed(state.iterations() * all_metrics().size() *
                          in.signature.blocks.size());
}
BENCHMARK(BM_ConvolveSweepKernel);

void BM_TraceApplication(benchmark::State& state) {
  const auto app = workload::make_rfcth_standard(32);
  trace::TracerOptions options;
  options.sample_refs = 1u << 14;  // small sample: this measures overheads
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::trace_application(app, machine::base_system_name(), options));
  }
}
BENCHMARK(BM_TraceApplication)->Unit(benchmark::kMillisecond);

void BM_GroundTruthRun(benchmark::State& state) {
  const auto app = workload::make_hycom_standard(96);
  const auto& machine = machine::find("ARL_Opteron");
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate::execute(app, machine));
  }
}
BENCHMARK(BM_GroundTruthRun)->Unit(benchmark::kMicrosecond);

// After: the suite runner — contention folded once, repeated bandwidth
// points (STREAM/GUPS vs the MAPS sweeps) measured once.
void BM_ProbeSuite(benchmark::State& state) {
  const auto& machine = machine::find("ASC_SC45");
  for (auto _ : state) {
    benchmark::DoNotOptimize(probes::run_probe_suite(machine));
  }
}
BENCHMARK(BM_ProbeSuite)->Unit(benchmark::kMillisecond);

// Before: the same ProbeSet assembled from the standalone probe
// functions, each re-deriving contention and re-measuring shared points.
void BM_ProbeSuiteUnmemoized(benchmark::State& state) {
  const auto& machine = machine::find("ASC_SC45");
  const auto sizes = probes::default_maps_sizes();
  using memsim::StrideClass;
  for (auto _ : state) {
    probes::ProbeSet set;
    set.machine = machine.name;
    set.hpl_rmax = probes::hpl_probe(machine);
    set.stream_bw = probes::stream_probe(machine);
    set.gups_bw = probes::gups_probe(machine);
    set.maps_unit = probes::maps_probe(machine, StrideClass::Unit, false,
                                       sizes);
    set.maps_random = probes::maps_probe(machine, StrideClass::Random, false,
                                         sizes);
    set.maps_unit_dep = probes::maps_probe(machine, StrideClass::Unit, true,
                                           sizes);
    set.maps_random_dep = probes::maps_probe(machine, StrideClass::Random,
                                             true, sizes);
    set.net = probes::netbench_probe(machine);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_ProbeSuiteUnmemoized)->Unit(benchmark::kMillisecond);

/// A small study spec for the warm-build pair: three targets plus the
/// base system over two suite cases — enough probe/trace nodes for the
/// batch loader to matter, small enough for a microbench binary.
pipeline::StudySpec small_spec() {
  pipeline::StudySpec spec;
  spec.targets = {machine::find("ASC_SC45"), machine::find("ARL_Opteron"),
                  machine::find("NAVO_655")};
  spec.base = machine::find(machine::base_system_name());
  auto suite = workload::ti05_suite();
  suite.resize(2);
  spec.suite = std::move(suite);
  return spec;
}

void BM_GraphWarmBuild(benchmark::State& state, bool prefetch_on) {
  const std::string dir = bench::cache_dir() + "/perf-graph";
  {
    // Populate the cache once; the timed builds below are fully warm.
    pipeline::StudyGraph warm;
    warm.threads(2).cache(true).cache_dir(dir);
    warm.add_study(small_spec());
    warm.build_all();
  }
  for (auto _ : state) {
    pipeline::StudyGraph graph;
    graph.threads(2).cache(true).cache_dir(dir).prefetch(prefetch_on);
    const std::size_t handle = graph.add_study(small_spec());
    graph.build_all();
    benchmark::DoNotOptimize(graph.take_study(handle));
  }
}
BENCHMARK_CAPTURE(BM_GraphWarmBuild, prefetch, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GraphWarmBuild, no_prefetch, false)
    ->Unit(benchmark::kMillisecond);

/// Console reporter that also accumulates one CSV row per run, so the
/// human table and the machine-readable artifact come from one pass.
class CsvTeeReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    rows_ << "name,iterations,real_ns_per_iter,cpu_ns_per_iter\n";
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || !run.error_message.empty()) {
        continue;
      }
      const double iters = static_cast<double>(run.iterations);
      rows_ << run.benchmark_name() << ',' << run.iterations << ','
            << run.real_accumulated_time / iters * 1e9 << ','
            << run.cpu_accumulated_time / iters * 1e9 << '\n';
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] std::string csv() const { return rows_.str(); }

 private:
  std::ostringstream rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CsvTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  msim::bench::save_artifact("figs/perf_components.csv", reporter.csv());
  benchmark::Shutdown();
  return 0;
}
