// E8 — google-benchmark microbenchmarks of the library's hot components:
// the set-associative cache model, the stride detector, the address
// generators, the analytic bandwidth surface, block convolution, and a
// whole-application trace. These guard the simulator's own performance —
// the full 150-observation campaign must stay interactive.
#include <benchmark/benchmark.h>

#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "memsim/bandwidth_model.hpp"
#include "memsim/cache.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "trace/stride_detector.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace {

using namespace msim;

void BM_CacheAccess(benchmark::State& state) {
  const auto& machine = machine::find("NAVO_655");
  memsim::Cache cache(machine.caches[0]);
  Rng rng(42);
  std::vector<std::uint64_t> addresses(4096);
  for (auto& a : addresses) a = rng.uniform_u64(1u << 22);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addresses[i & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyStream(benchmark::State& state) {
  const auto& machine = machine::find("ARL_Altix");
  memsim::CacheHierarchy hierarchy(machine);
  memsim::StreamSpec spec;
  spec.working_set_bytes = 1u << 20;
  spec.components = {{.stride_bytes = 8, .weight = 0.6},
                     {.stride_bytes = 0, .weight = 0.4}};
  memsim::AddressGenerator generator(spec, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.access(generator.next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyStream);

void BM_StrideDetector(benchmark::State& state) {
  memsim::StreamSpec spec;
  spec.working_set_bytes = 8u << 20;
  spec.components = {{.stride_bytes = 8, .weight = 0.5},
                     {.stride_bytes = 32, .weight = 0.2},
                     {.stride_bytes = 0, .weight = 0.3}};
  memsim::AddressGenerator generator(spec, 11);
  trace::StrideDetector detector;
  for (auto _ : state) {
    const auto ref = generator.next_tagged();
    detector.observe({.pc = ref.stream_id, .address = ref.address});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StrideDetector);

void BM_BandwidthSurface(benchmark::State& state) {
  const auto& machine = machine::find("NAVO_655");
  std::uint64_t ws = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memsim::sustained_bandwidth(
        machine, ws,
        {.stride = memsim::StrideClass::Unit,
         .dependency = memsim::DependencyClass::Independent,
         .branch_density = 0.0}));
    ws = ws >= (1u << 28) ? 4096 : ws * 2;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandwidthSurface);

void BM_ConvolveBlock(benchmark::State& state) {
  const auto probes_set = probes::run_probe_suite(machine::find("NAVO_655"));
  const auto app = workload::make_avus_standard(64);
  const auto signature =
      trace::trace_application(app, machine::base_system_name());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(convolve::convolve_block(
        signature.blocks[i % signature.blocks.size()], probes_set,
        convolve::PredictiveMetric::M9_HplMapsNetDep));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConvolveBlock);

void BM_TraceApplication(benchmark::State& state) {
  const auto app = workload::make_rfcth_standard(32);
  trace::TracerOptions options;
  options.sample_refs = 1u << 14;  // small sample: this measures overheads
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::trace_application(app, machine::base_system_name(), options));
  }
}
BENCHMARK(BM_TraceApplication)->Unit(benchmark::kMillisecond);

void BM_GroundTruthRun(benchmark::State& state) {
  const auto app = workload::make_hycom_standard(96);
  const auto& machine = machine::find("ARL_Opteron");
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate::execute(app, machine));
  }
}
BENCHMARK(BM_GroundTruthRun)->Unit(benchmark::kMicrosecond);

void BM_ProbeSuite(benchmark::State& state) {
  const auto& machine = machine::find("ASC_SC45");
  for (auto _ : state) {
    benchmark::DoNotOptimize(probes::run_probe_suite(machine));
  }
}
BENCHMARK(BM_ProbeSuite)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
