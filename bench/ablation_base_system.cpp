// Ablation: sensitivity of the study to the base-system choice.
//
// Every prediction in the methodology is anchored to one measured run on
// the base system (the paper traced on "the NAVO p690"). How much does the
// answer depend on that choice? This bench re-runs the full study with
// each registry machine as the base (targets = the other ten) and reports
// the overall error of the headline metrics — an experiment the paper did
// not run but whose outcome its ratio-based Equation 1 silently depends
// on.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "machine/registry.hpp"
#include "pipeline/study_graph.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "ablation_base_system",
                "base-system sensitivity (beyond the paper)");

  AsciiTable table({"Base system", "1-S HPL", "3-S GUPS", "6-P", "9-P"});
  for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::Right);

  std::vector<std::string> bases = machine::target_system_names();
  bases.push_back(machine::base_system_name());

  // Eleven full studies as one stage graph on one pool: every study probes
  // the same eleven machines, so the graph holds one probe node per
  // machine (the other ten studies dedup onto it) and overlaps the eleven
  // ground-truth campaigns instead of serializing whole builds.
  pipeline::StudyGraph graph;
  graph.cache(true).cache_dir(bench::cache_dir());
  std::vector<std::size_t> handles;
  for (const auto& base_name : bases) {
    std::vector<machine::MachineConfig> targets;
    for (const auto& machine : machine::all()) {
      if (machine.name != base_name) targets.push_back(machine);
    }
    handles.push_back(graph.add_study(
        pipeline::StudySpec{.targets = std::move(targets),
                            .base = machine::find(base_name),
                            .suite = workload::ti05_suite()}));
  }
  graph.build_all();
  std::fprintf(stderr, "[ablation_base_system] %s\n",
               graph.stats().summary().c_str());

  for (std::size_t b = 0; b < bases.size(); ++b) {
    const auto& base_name = bases[b];
    const auto study = graph.take_study(handles[b]);
    const auto predictions = study.evaluate(
        {metrics::Metric::S1_Hpl, metrics::Metric::S3_Gups,
         metrics::Metric::P6_HplStreamGups,
         metrics::Metric::P9_HplMapsNetDep});

    auto error_of = [&](metrics::Metric metric) {
      return metrics::Study::summarize(
                 metrics::Study::slice_metric(predictions, metric))
          .mean_abs_error_pct;
    };
    table.add_row({base_name,
                   AsciiTable::num(error_of(metrics::Metric::S1_Hpl), 0),
                   AsciiTable::num(error_of(metrics::Metric::S3_Gups), 0),
                   AsciiTable::num(
                       error_of(metrics::Metric::P6_HplStreamGups), 0),
                   AsciiTable::num(
                       error_of(metrics::Metric::P9_HplMapsNetDep), 0)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading guide: trace-convolution metrics should be robust to the\n"
      "base choice (the transfer function re-normalizes); HPL's error\n"
      "swings wildly with it, because Equation 1 inherits whatever bias\n"
      "the base system's flop/memory balance has.\n");
  return 0;
}
