// Ablation: sensitivity of the study to the base-system choice.
//
// Every prediction in the methodology is anchored to one measured run on
// the base system (the paper traced on "the NAVO p690"). How much does the
// answer depend on that choice? This bench re-runs the full study with
// each registry machine as the base (targets = the other ten) and reports
// the overall error of the headline metrics — an experiment the paper did
// not run but whose outcome its ratio-based Equation 1 silently depends
// on.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "machine/registry.hpp"
#include "pipeline/study_builder.hpp"

int main(int argc, char** argv) {
  using namespace msim;
  bench::banner(argc, argv, "ablation_base_system",
                "base-system sensitivity (beyond the paper)");

  AsciiTable table({"Base system", "1-S HPL", "3-S GUPS", "6-P", "9-P"});
  for (std::size_t c = 1; c < 5; ++c) table.set_align(c, Align::Right);

  std::vector<std::string> bases = machine::target_system_names();
  bases.push_back(machine::base_system_name());

  for (const auto& base_name : bases) {
    std::vector<machine::MachineConfig> targets;
    for (const auto& machine : machine::all()) {
      if (machine.name != base_name) targets.push_back(machine);
    }
    // Eleven full studies; the per-machine probe artifacts are identical
    // across all of them, so with the cache on only the first study pays
    // for probing (and reruns of this bench pay for nothing).
    pipeline::StudyBuilder builder;
    builder.targets(std::move(targets))
        .base(machine::find(base_name))
        .suite(workload::ti05_suite())
        .cache(true)
        .cache_dir(bench::cache_dir());
    const auto study = builder.build();
    const auto predictions = study.evaluate(
        {metrics::Metric::S1_Hpl, metrics::Metric::S3_Gups,
         metrics::Metric::P6_HplStreamGups,
         metrics::Metric::P9_HplMapsNetDep});

    auto error_of = [&](metrics::Metric metric) {
      return metrics::Study::summarize(
                 metrics::Study::slice_metric(predictions, metric))
          .mean_abs_error_pct;
    };
    table.add_row({base_name,
                   AsciiTable::num(error_of(metrics::Metric::S1_Hpl), 0),
                   AsciiTable::num(error_of(metrics::Metric::S3_Gups), 0),
                   AsciiTable::num(
                       error_of(metrics::Metric::P6_HplStreamGups), 0),
                   AsciiTable::num(
                       error_of(metrics::Metric::P9_HplMapsNetDep), 0)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading guide: trace-convolution metrics should be robust to the\n"
      "base choice (the transfer function re-normalizes); HPL's error\n"
      "swings wildly with it, because Equation 1 inherits whatever bias\n"
      "the base system's flop/memory balance has.\n");
  return 0;
}
