// Shared driver for the per-application error figures (paper Figures 3-7).
#pragma once

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "report/report.hpp"

namespace msim::bench {

inline int run_figure_app(int argc, char** argv,
                          const std::string& experiment,
                          const std::string& artifact,
                          const std::string& app) {
  banner(argc, argv, experiment, artifact);
  const auto& study = paper_study();
  const auto predictions = study.evaluate(metrics::paper_metrics());
  std::printf("%s\n",
              report::render_figure_app(study, predictions, app).c_str());
  return 0;
}

}  // namespace msim::bench
