// Shared plumbing for the experiment benches: a cached full-paper Study, a
// standard header banner, and CSV-to-file helpers. Every bench is
// deterministic; running one twice produces identical output.
//
// Output discipline: stdout carries only the banner and the diffable
// result tables; diagnostics (pipeline/cache stats, save_artifact logging,
// telemetry summaries) go to stderr so stdout can be compared byte for
// byte across runs.
#pragma once

#include <string>

#include "metrics/study.hpp"

namespace msim::bench {

/// The full paper study built once per process (10 targets + base, TI-05
/// suite, reference executor options).
[[nodiscard]] const metrics::Study& paper_study();

/// The cache directory benches build in: `MSIM_CACHE_DIR` when set (the
/// opt-in shared directory, what CI uses for warm cross-bench runs), else
/// a per-run scratch directory removed at process exit — with cache v2's
/// LRU eviction, concurrent benches sharing a directory by accident could
/// evict each other's working set mid-run.
[[nodiscard]] const std::string& cache_dir();

/// Print the standard experiment banner (stdout) and activate telemetry
/// from the environment (MSIM_TRACE / MSIM_METRICS).
void banner(const std::string& experiment, const std::string& paper_artifact);

/// As above, and additionally honor --trace[=<path>] / --metrics flags
/// anywhere in argv. Benches ignore the telemetry tokens for their own
/// flag parsing; this overload is the preferred entry point.
void banner(int argc, char** argv, const std::string& experiment,
            const std::string& paper_artifact);

/// Write `content` to `path` and log where it went on stderr (best effort:
/// failures to open the file are reported, not fatal).
void save_artifact(const std::string& path, const std::string& content);

}  // namespace msim::bench
