// Shared plumbing for the experiment benches: a cached full-paper Study, a
// standard header banner, and CSV-to-file helpers. Every bench is
// deterministic; running one twice produces identical output.
#pragma once

#include <string>

#include "metrics/study.hpp"

namespace msim::bench {

/// The full paper study built once per process (10 targets + base, TI-05
/// suite, reference executor options).
[[nodiscard]] const metrics::Study& paper_study();

/// Print the standard experiment banner.
void banner(const std::string& experiment, const std::string& paper_artifact);

/// Write `content` to `path` and log where it went (best effort: failures
/// to open the file are reported, not fatal).
void save_artifact(const std::string& path, const std::string& content);

}  // namespace msim::bench
