// E4 — reproduces paper Figure 4: error assessment for AVUS Large.
#include "fig_app_common.hpp"

int main(int argc, char** argv) {
  return msim::bench::run_figure_app(
      argc, argv, "fig4_avus_large", "Figure 4 (AVUS Large error assessment)",
      "AVUS_Large");
}
