// E4 — reproduces paper Figure 4: error assessment for AVUS Large.
#include "fig_app_common.hpp"

int main() {
  return msim::bench::run_figure_app(
      "fig4_avus_large", "Figure 4 (AVUS Large error assessment)",
      "AVUS_Large");
}
