# Reproduces paper Figure 2: average absolute error per metric.
# Run: gnuplot <this file>
set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig2_error_per_metric.png'
set style data histogram
set style histogram errorbars gap 1 lw 1
set style fill solid 0.6 border -1
set ylabel 'average absolute error (%)'
set xtics rotate by -35
set yrange [0:*]
set grid ytics
plot 'fig2_error_per_metric.csv' every ::1 using 3:4:xtic(1) title 'msim reproduction'
