// Report renderers: paper-layout tables and CSV series.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "report/gnuplot.hpp"
#include "report/report.hpp"
#include "test_support.hpp"

namespace msim::report {
namespace {

const std::vector<metrics::Prediction>& shared_predictions() {
  static const auto predictions =
      msim::testing::shared_study().evaluate(metrics::all_metrics());
  return predictions;
}

TEST(Report, Table4HasAllRowsAndPaperColumns) {
  const auto& study = msim::testing::shared_study();
  const std::string out = render_table4(study, shared_predictions());
  for (const char* label : {"1-S", "2-S", "3-S", "4-P", "5-P", "6-P", "7-P",
                            "8-P", "9-P", "B-E", "B-F"}) {
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
  EXPECT_NE(out.find("Paper Avg"), std::string::npos);
  EXPECT_NE(out.find("HPL+MAPS+NET+DEP"), std::string::npos);
}

TEST(Report, Table4CanExcludeComposites) {
  const auto& study = msim::testing::shared_study();
  const std::string out =
      render_table4(study, shared_predictions(), false);
  EXPECT_EQ(out.find("B-E"), std::string::npos);
}

TEST(Report, Table5ListsEverySystemAndOverall) {
  const auto& study = msim::testing::shared_study();
  const std::string out = render_table5(study, shared_predictions());
  for (const auto& machine : study.target_names()) {
    EXPECT_NE(out.find(machine), std::string::npos) << machine;
  }
  EXPECT_NE(out.find("OVERALL"), std::string::npos);
  EXPECT_NE(out.find("Paper (Table 5)"), std::string::npos);
}

TEST(Report, FigureAppHasCountColumns) {
  const auto& study = msim::testing::shared_study();
  const std::string out =
      render_figure_app(study, shared_predictions(), "HYCOM_Standard");
  EXPECT_NE(out.find("59 CPUs"), std::string::npos);
  EXPECT_NE(out.find("96 CPUs"), std::string::npos);
  EXPECT_NE(out.find("124 CPUs"), std::string::npos);
  EXPECT_THROW(
      (void)render_figure_app(study, shared_predictions(), "NOPE"),
      precondition_error);
}

TEST(Report, MapsTableRendersBandwidths) {
  const auto& study = msim::testing::shared_study();
  const std::vector<probes::ProbeSet> sets = {
      study.probe_set("ARL_Opteron"), study.probe_set("NAVO_655")};
  const std::string out = render_maps_table(sets);
  EXPECT_NE(out.find("ARL_Opteron"), std::string::npos);
  EXPECT_NE(out.find("2 KiB"), std::string::npos);
  EXPECT_NE(out.find("256 MiB"), std::string::npos);
}

TEST(Report, AppendixComparisonIncludesCorrelations) {
  const auto& study = msim::testing::shared_study();
  const std::string out =
      render_appendix_comparison(study.observations());
  EXPECT_NE(out.find("AVUS_Standard"), std::string::npos);
  EXPECT_NE(out.find("Spearman"), std::string::npos);
  // The paper's blanks render as dashes.
  EXPECT_NE(out.find(" - "), std::string::npos);
}

TEST(Report, Table4CsvParses) {
  const auto& study = msim::testing::shared_study();
  std::ostringstream out;
  write_table4_csv(out, study, shared_predictions());
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "metric,description,mean_abs_error_pct,"
                  "stddev_abs_error_pct");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3);
  }
  EXPECT_EQ(rows, 11u);
}

TEST(Report, MapsCsvHasOneColumnPerSystem) {
  const auto& study = msim::testing::shared_study();
  const std::vector<probes::ProbeSet> sets = {
      study.probe_set("ARL_Altix"), study.probe_set("ARL_Xeon"),
      study.probe_set("ASC_SC45")};
  std::ostringstream out;
  write_maps_csv(out, sets);
  std::istringstream in(out.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "working_set_bytes,ARL_Altix,ARL_Xeon,ASC_SC45");
}

TEST(Gnuplot, Fig1ScriptReferencesEverySystem) {
  std::ostringstream out;
  write_fig1_gnuplot(out, "data.csv", {"A", "B", "C"});
  const std::string script = out.str();
  EXPECT_NE(script.find("logscale x 2"), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:4"), std::string::npos);
  EXPECT_NE(script.find("title 'C'"), std::string::npos);
  EXPECT_THROW(write_fig1_gnuplot(out, "x.csv", {}), precondition_error);
}

TEST(Gnuplot, Fig2ScriptIsAHistogram) {
  std::ostringstream out;
  write_fig2_gnuplot(out, "errors.csv");
  const std::string script = out.str();
  EXPECT_NE(script.find("histogram"), std::string::npos);
  EXPECT_NE(script.find("errors.csv"), std::string::npos);
}

}  // namespace
}  // namespace msim::report
