// The obs telemetry layer: registry exactness under contention, span
// buffering, Chrome trace-event export, activation plumbing — and the
// invariant the whole subsystem is built around: results are byte-identical
// with telemetry on or off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "machine/registry.hpp"
#include "metrics/study.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/study_builder.hpp"
#include "report/report.hpp"
#include "workload/apps.hpp"

namespace msim::obs {
namespace {

namespace fs = std::filesystem;

/// Every obs test starts from a clean slate: outputs off, values zeroed,
/// span buffers dropped.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_for_testing(); }
  void TearDown() override { reset_for_testing(); }
};

fs::path scratch_file(const std::string& name) {
  return fs::temp_directory_path() / ("msim-obs-" + name);
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Structural JSON check without a parser dependency: quote-aware
/// brace/bracket balance, ending at depth zero exactly at EOF.
bool json_is_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool saw_root = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        saw_root = true;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
    if (saw_root && depth == 0) {
      // Only whitespace may follow the root value.
      saw_root = false;
    }
  }
  return depth == 0 && !in_string;
}

TEST_F(ObsTest, CounterExactUnderContention) {
  Counter& counter = Registry::instance().counter("test.obs.concurrency");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, RegistryHandlesAreStableAcrossReset) {
  Counter& first = Registry::instance().counter("test.obs.stable");
  first.add(7);
  Registry::instance().reset_values();
  EXPECT_EQ(first.value(), 0u);
  // Same name resolves to the same object; the old handle still works.
  Counter& second = Registry::instance().counter("test.obs.stable");
  EXPECT_EQ(&first, &second);
  first.add(3);
  EXPECT_EQ(second.value(), 3u);
}

TEST_F(ObsTest, HistogramRecordsExtremesAndQuantiles) {
  Histogram& histogram =
      Registry::instance().histogram("test.obs.histogram");
  histogram.record(0.001);
  histogram.record(0.002);
  histogram.record(8.0);
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.min, 0.001);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  EXPECT_NEAR(snap.sum, 8.003, 1e-12);
  // The p100 upper bound must cover the largest sample.
  EXPECT_GE(snap.quantile(1.0), 8.0);
  EXPECT_GT(snap.quantile(0.5), 0.0);

  // Bucket geometry: monotone index, upper bound covers the value.
  const int small = Histogram::bucket_index(1e-9);
  const int large = Histogram::bucket_index(1e6);
  EXPECT_LT(small, large);
  EXPECT_GE(Histogram::bucket_upper(Histogram::bucket_index(0.5)), 0.5);
}

TEST_F(ObsTest, EmptyHistogramSnapshotIsAllZero) {
  Histogram& histogram = Registry::instance().histogram("test.obs.empty");
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  (void)Registry::instance().counter("test.obs.zzz");
  (void)Registry::instance().counter("test.obs.aaa");
  const Snapshot snap = Registry::instance().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST_F(ObsTest, SpansAreFreeWhenTracingOff) {
  ASSERT_FALSE(tracing_enabled());
  {
    Span span("noop", "test");
    span.arg("key", std::string("value"));
    EXPECT_FALSE(span.recording());
  }
  EXPECT_EQ(buffered_event_count(), 0u);
}

TEST_F(ObsTest, TraceFileIsLoadableChromeJson) {
  const fs::path path = scratch_file("trace.json");
  enable_tracing(path.string());
  ASSERT_TRUE(tracing_enabled());

  {
    Span outer("outer", "test");
    outer.arg("label", std::string("a\"b\\c"));  // exercises escaping
    Span inner("inner", "test");
    inner.arg("index", std::int64_t{42});
  }
  std::thread([] { Span span("worker-span", "test"); }).join();
  Registry::instance().counter("test.obs.trace-counter").add(5);

  EXPECT_EQ(buffered_event_count(), 3u);
  ASSERT_TRUE(write_trace());

  const std::string json = slurp(path);
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Complete events for all three spans, on two distinct lanes.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3u);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-span\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(json.find("\"index\":42"), std::string::npos);
  // Counter events carry the final registry values.
  EXPECT_GE(count_occurrences(json, "\"ph\":\"C\""), 1u);
  EXPECT_NE(json.find("test.obs.trace-counter"), std::string::npos);
  // Thread metadata names both lanes.
  EXPECT_GE(count_occurrences(json, "\"thread_name\""), 2u);

  fs::remove(path);
}

TEST_F(ObsTest, TelemetryFlagParsing) {
  EXPECT_FALSE(handle_telemetry_flag("--verbose"));
  EXPECT_FALSE(handle_telemetry_flag("trace"));
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(tracing_enabled());

  EXPECT_TRUE(handle_telemetry_flag("--metrics"));
  EXPECT_TRUE(metrics_enabled());
  EXPECT_TRUE(collecting());

  EXPECT_TRUE(handle_telemetry_flag("--trace=custom.json"));
  EXPECT_TRUE(tracing_enabled());
  EXPECT_EQ(trace_path(), "custom.json");

  reset_for_testing();
  EXPECT_TRUE(handle_telemetry_flag("--trace"));
  EXPECT_EQ(trace_path(), "trace.json");  // bare flag default
}

TEST_F(ObsTest, InitFromEnvActivatesOutputs) {
  ::setenv("MSIM_TRACE", "/tmp/msim-env-trace.json", 1);
  ::setenv("MSIM_METRICS", "1", 1);
  init_from_env();
  EXPECT_TRUE(tracing_enabled());
  EXPECT_EQ(trace_path(), "/tmp/msim-env-trace.json");
  EXPECT_TRUE(metrics_enabled());

  reset_for_testing();
  ::unsetenv("MSIM_TRACE");
  ::setenv("MSIM_METRICS", "0", 1);  // explicit off
  init_from_env();
  EXPECT_FALSE(tracing_enabled());
  EXPECT_FALSE(metrics_enabled());
  ::unsetenv("MSIM_METRICS");
}

TEST_F(ObsTest, RenderMetricsListsEveryMetric) {
  Registry::instance().counter("test.obs.render.counter").add(12);
  Registry::instance().gauge("test.obs.render.gauge").set(0.5);
  Registry::instance().histogram("test.obs.render.hist").record(2.5);
  const std::string table =
      report::render_metrics(Registry::instance().snapshot());
  EXPECT_NE(table.find("test.obs.render.counter"), std::string::npos);
  EXPECT_NE(table.find("test.obs.render.gauge"), std::string::npos);
  EXPECT_NE(table.find("test.obs.render.hist"), std::string::npos);
  EXPECT_NE(table.find("12"), std::string::npos);
}

/// The acceptance test for the whole layer: a full (reduced) study built
/// with tracing + metrics active produces bit-identical results and tables
/// to one built with telemetry off — and the trace records every pipeline
/// stage, per-run campaign spans, and the cache counters with miss reasons.
TEST_F(ObsTest, StudyResultsAreByteIdenticalWithTelemetryOn) {
  auto make_builder = [] {
    pipeline::StudyBuilder builder;
    builder
        .targets(
            {machine::find("ARL_Xeon"), machine::find("ARL_Opteron")})
        .base(machine::find(machine::base_system_name()))
        .suite({workload::find_test_case("RFCTH_Standard")});
    return builder;
  };
  const fs::path cache_dir = fs::temp_directory_path() / "msim-obs-study";
  fs::remove_all(cache_dir);
  const fs::path trace_cold = scratch_file("study-cold.json");
  const fs::path trace_warm = scratch_file("study-warm.json");

  // Telemetry off: the baseline.
  auto off_builder = make_builder();
  const metrics::Study off_study = off_builder.build();
  const auto off_predictions = off_study.evaluate(metrics::all_metrics());
  const std::string off_table =
      report::render_table4(off_study, off_predictions, true);

  // Telemetry on, cold cache.
  reset_for_testing();
  enable_tracing(trace_cold.string());
  enable_metrics();
  auto cold_builder = make_builder();
  cold_builder.cache(true).cache_dir(cache_dir.string());
  const metrics::Study cold_study = cold_builder.build();
  const auto cold_predictions =
      cold_study.evaluate(metrics::all_metrics());
  ASSERT_TRUE(write_trace());
  const Snapshot cold_snapshot = Registry::instance().snapshot();

  // Bitwise identity: telemetry must not perturb a single result.
  ASSERT_EQ(cold_predictions.size(), off_predictions.size());
  for (std::size_t i = 0; i < off_predictions.size(); ++i) {
    EXPECT_EQ(cold_predictions[i].predicted_seconds,
              off_predictions[i].predicted_seconds);
    EXPECT_EQ(cold_predictions[i].actual_seconds,
              off_predictions[i].actual_seconds);
  }
  EXPECT_EQ(report::render_table4(cold_study, cold_predictions, true),
            off_table);

  // The trace covers all four stages and the campaign runs.
  const std::string cold_json = slurp(trace_cold);
  EXPECT_TRUE(json_is_balanced(cold_json));
  for (const char* stage :
       {"stage:ground-truth", "stage:probes", "stage:traces",
        "stage:assemble"}) {
    EXPECT_NE(cold_json.find(stage), std::string::npos) << stage;
  }
  EXPECT_GE(count_occurrences(cold_json, "\"name\":\"run\""), 6u)
      << "expected one campaign span per (app, machine, nprocs)";
  EXPECT_NE(cold_json.find("\"name\":\"probe-suite\""), std::string::npos);
  EXPECT_NE(cold_json.find("\"name\":\"predict\""), std::string::npos);

  // Cold cache: every lookup is a miss with reason "absent".
  auto counter_value = [](const Snapshot& snap, const std::string& name) {
    for (const auto& row : snap.counters) {
      if (row.name == name) return row.value;
    }
    return std::uint64_t{0};
  };
  EXPECT_GT(counter_value(cold_snapshot, "cache.miss.absent"), 0u);
  EXPECT_EQ(counter_value(cold_snapshot, "cache.hit"), 0u);
  EXPECT_GT(counter_value(cold_snapshot, "cache.store.count"), 0u);
  EXPECT_NE(cold_json.find("cache.miss.absent"), std::string::npos);

  // Warm rebuild: hits, no new stores.
  reset_for_testing();
  enable_tracing(trace_warm.string());
  auto warm_builder = make_builder();
  warm_builder.cache(true).cache_dir(cache_dir.string());
  const metrics::Study warm_study = warm_builder.build();
  ASSERT_TRUE(write_trace());
  const Snapshot warm_snapshot = Registry::instance().snapshot();
  EXPECT_GT(counter_value(warm_snapshot, "cache.hit"), 0u);
  EXPECT_EQ(counter_value(warm_snapshot, "cache.miss.absent"), 0u);
  EXPECT_EQ(counter_value(warm_snapshot, "cache.store.count"), 0u);

  // Warm results also identical to the baseline.
  const auto warm_predictions =
      warm_study.evaluate(metrics::all_metrics());
  ASSERT_EQ(warm_predictions.size(), off_predictions.size());
  for (std::size_t i = 0; i < off_predictions.size(); ++i) {
    EXPECT_EQ(warm_predictions[i].predicted_seconds,
              off_predictions[i].predicted_seconds);
  }

  fs::remove(trace_cold);
  fs::remove(trace_warm);
  fs::remove_all(cache_dir);
}

}  // namespace
}  // namespace msim::obs
