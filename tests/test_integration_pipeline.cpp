// End-to-end reproduction checks: the paper's qualitative conclusions,
// asserted against the full 150-observation study.
//
// These are the tests that would fail if the reproduction stopped telling
// the paper's story (see DESIGN.md section 4's success criterion).
#include <gtest/gtest.h>

#include <map>

#include "data/paper_data.hpp"
#include "stats/correlation.hpp"
#include "test_support.hpp"

namespace msim {
namespace {

using metrics::Metric;
using metrics::Study;

double overall_error(Metric metric) {
  static std::map<Metric, double> cache;
  const auto it = cache.find(metric);
  if (it != cache.end()) return it->second;
  const auto predictions = msim::testing::shared_study().evaluate({metric});
  const double error = Study::summarize(predictions).mean_abs_error_pct;
  cache.emplace(metric, error);
  return error;
}

TEST(Reproduction, HplIsByFarTheWorstPredictor) {
  // Paper: 63% +- 68%, worst of all metrics, "not a good predictor of
  // absolute or even relative performance".
  const double hpl = overall_error(Metric::S1_Hpl);
  EXPECT_GT(hpl, 55.0);
  for (Metric other : {Metric::S2_Stream, Metric::S3_Gups,
                       Metric::P6_HplStreamGups, Metric::P9_HplMapsNetDep,
                       Metric::BalancedEqual}) {
    EXPECT_GT(hpl, 1.5 * overall_error(other))
        << metrics::description(other);
  }
}

TEST(Reproduction, MemoryMetricsBeatHplAndGupsBeatsStream) {
  // Paper: STREAM 43% < HPL 63%; GUPS 33% < STREAM.
  EXPECT_LT(overall_error(Metric::S2_Stream),
            overall_error(Metric::S1_Hpl));
  EXPECT_LT(overall_error(Metric::S3_Gups),
            overall_error(Metric::S2_Stream));
}

TEST(Reproduction, Metric4IsASanityTestEqualToMetric1) {
  EXPECT_NEAR(overall_error(Metric::P4_Hpl), overall_error(Metric::S1_Hpl),
              0.01);
}

TEST(Reproduction, TraceConvolutionBeatsEverySimpleMetric) {
  // Paper: metrics #6-#9 land at 18-24% while the best simple metric
  // (GUPS) is 33% — "simple synthetics may indeed be able to account for
  // approximately 80% of relative performance ... when viewed through an
  // application-specific framework".
  const double best_simple = overall_error(Metric::S3_Gups);
  for (Metric traced :
       {Metric::P6_HplStreamGups, Metric::P7_HplMaps, Metric::P8_HplMapsNet,
        Metric::P9_HplMapsNetDep}) {
    EXPECT_LT(overall_error(traced), best_simple)
        << metrics::description(traced);
  }
}

TEST(Reproduction, MapsAloneIsNotBetterThanStreamPlusGups) {
  // Paper: #7 (24%) was "marginally worse" than #6 (22%) — cache-level
  // granularity without the dependency term adds error.
  EXPECT_GE(overall_error(Metric::P7_HplMaps),
            overall_error(Metric::P6_HplStreamGups) - 0.5);
}

TEST(Reproduction, NetworkTermIsMarginalForTheseApps) {
  // Paper: #8 improved on #7 "although not significantly because these
  // application cases are not communication bound".
  EXPECT_NEAR(overall_error(Metric::P8_HplMapsNet),
              overall_error(Metric::P7_HplMaps), 2.0);
}

TEST(Reproduction, DependencyTermMakesMetric9Best) {
  // Paper: #9 (18%) is the best of all nine metrics.
  const double m9 = overall_error(Metric::P9_HplMapsNetDep);
  for (Metric other :
       {Metric::S1_Hpl, Metric::S2_Stream, Metric::S3_Gups,
        Metric::P5_HplStream, Metric::P6_HplStreamGups, Metric::P7_HplMaps,
        Metric::P8_HplMapsNet, Metric::BalancedEqual,
        Metric::BalancedFitted}) {
    EXPECT_LE(m9, overall_error(other) + 0.01)
        << metrics::description(other);
  }
}

TEST(Reproduction, BalancedRatingsDoNotRescueSimpleMetrics) {
  // Paper: equal weights 35%, fitted 33% — neither significantly better
  // than GUPS alone (33%), "disproving the notion that a single balanced
  // rating can significantly improve on a simple benchmark".
  const double gups = overall_error(Metric::S3_Gups);
  EXPECT_GT(overall_error(Metric::BalancedEqual), gups);
  EXPECT_GT(overall_error(Metric::BalancedFitted), gups * 0.8);
  // The fitted weights do improve on naive equal weighting.
  EXPECT_LE(overall_error(Metric::BalancedFitted),
            overall_error(Metric::BalancedEqual));
}

TEST(Reproduction, PredictiveMetricsReachEightyPercentAccuracy) {
  // The headline: "a few simple metrics can be combined and weighted
  // appropriately to predict performance ... with about 80% accuracy".
  EXPECT_LT(overall_error(Metric::P9_HplMapsNetDep), 25.0);
  EXPECT_GT(overall_error(Metric::P9_HplMapsNetDep), 5.0);  // not a tautology
}

TEST(Reproduction, StudyDimensionsMatchThePaper) {
  // "five application test cases were executed at three processor counts
  // each on 10 different systems, resulting in a total of 150 observed
  // application executions ... 9 metrics were applied ... for a total of
  // 1,350 predictions."
  const auto& study = msim::testing::shared_study();
  const auto predictions = study.evaluate(metrics::paper_metrics());
  EXPECT_EQ(predictions.size(), 1350u);
  EXPECT_EQ(study.target_names().size(), 10u);
  std::size_t target_observations = 0;
  for (const auto& observation : study.observations().all()) {
    if (observation.machine != study.base_machine()) ++target_observations;
  }
  EXPECT_EQ(target_observations, 150u);
}

TEST(Reproduction, SimulatedGroundTruthRanksSystemsLikeThePaper) {
  // For each (app, count) with at least 6 published cells, the simulated
  // times should rank machines positively against the paper's appendix
  // (Spearman > 0), and strongly on average.
  const auto& study = msim::testing::shared_study();
  std::vector<double> correlations;
  for (const auto& table : data::observed_tables()) {
    for (int nprocs : table.cpu_counts) {
      std::vector<double> simulated, published;
      for (const auto& machine : study.target_names()) {
        const auto paper_value =
            data::observed_seconds(table.app, nprocs, machine);
        if (!paper_value) continue;
        simulated.push_back(
            study.observations().at(table.app, nprocs, machine));
        published.push_back(*paper_value);
      }
      if (simulated.size() < 6) continue;
      correlations.push_back(stats::spearman(simulated, published));
    }
  }
  ASSERT_GE(correlations.size(), 10u);
  double positive = 0;
  double sum = 0.0;
  for (double rho : correlations) {
    if (rho > 0.0) ++positive;
    sum += rho;
  }
  EXPECT_GE(positive / correlations.size(), 0.9)
      << "almost every configuration should rank positively";
  EXPECT_GT(sum / correlations.size(), 0.5)
      << "average rank correlation with the paper's appendix";
}

TEST(Reproduction, EverythingIsDeterministic) {
  // Two independently built studies produce identical predictions.
  const auto a = Study::build().evaluate({Metric::P9_HplMapsNetDep});
  const auto b = Study::build().evaluate({Metric::P9_HplMapsNetDep});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].predicted_seconds, b[i].predicted_seconds);
    EXPECT_DOUBLE_EQ(a[i].actual_seconds, b[i].actual_seconds);
  }
}

}  // namespace
}  // namespace msim
