// Edge-case sweep across modules: boundary inputs, rarely-taken branches,
// and formatting corners not covered by the behavioural suites.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "metrics/study.hpp"
#include "netsim/cost_model.hpp"
#include "probes/synthetic.hpp"
#include "trace/tracer.hpp"

namespace msim {
namespace {

TEST(EdgeTable, RuleAtStartAndEnd) {
  AsciiTable table({"x"});
  table.add_rule();  // before any row: coincides with the header rule
  table.add_row({"a"});
  table.add_rule();  // after the last row: coincides with the bottom rule
  EXPECT_NO_THROW((void)table.render());
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(EdgeTable, StreamInsertion) {
  AsciiTable table({"k", "v"});
  table.add_row({"a", "1"});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.render());
}

TEST(EdgeUnits, ExtremeValues) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(1023), "1023 B");
  // Beyond GiB the suffix saturates at GiB.
  EXPECT_EQ(format_bytes(2048ull * GiB), "2048 GiB");
  // Rates saturate at the G prefix.
  EXPECT_EQ(format_rate(5e12, "B"), "5000.00 GB/s");
}

TEST(EdgeNetsim, TwoRankCollectives) {
  const auto& net = machine::find("ARL_Altix").net;
  // log2(2) = 1 round for every tree algorithm.
  const double alpha = net.latency_s + net.per_message_overhead_s;
  EXPECT_NEAR(netsim::collective_time(net, netsim::CommType::Barrier, 0, 2),
              alpha, 1e-12);
  EXPECT_NEAR(
      netsim::collective_time(net, netsim::CommType::AllToAll, 100, 2),
      alpha + 100.0 / net.bandwidth, 1e-12);
}

TEST(EdgeNetsim, LargeBroadcastUsesScatterAllgather) {
  const auto& net = machine::find("MHPCC_P3").net;
  const std::uint64_t big = net.eager_threshold_bytes * 8;
  const double tree_cost =
      std::ceil(std::log2(64.0)) *
      (net.latency_s + net.per_message_overhead_s +
       static_cast<double>(big) / net.bandwidth);
  // The long-message algorithm must beat the naive tree for large payloads.
  EXPECT_LT(
      netsim::collective_time(net, netsim::CommType::Broadcast, big, 64),
      tree_cost);
}

TEST(EdgeMetrics, EveryMetricHasDistinctLabelAndDescription) {
  std::set<std::string> labels;
  for (metrics::Metric metric : metrics::all_metrics()) {
    EXPECT_TRUE(labels.insert(metrics::row_label(metric)).second);
    EXPECT_FALSE(metrics::description(metric).empty());
  }
  EXPECT_EQ(labels.size(), 11u);
}

TEST(EdgeConvolver, ShortMappingOptionsAreOrdered) {
  // unit rate >= geometric mean >= random rate, so the three mappings
  // order the short bin's time accordingly.
  const auto probes_set =
      probes::run_probe_suite(machine::find("NAVO_655"));
  trace::BlockSignature block;
  block.name = "short-only";
  block.refs = 1u << 24;
  block.element_bytes = 8;
  block.short_fraction = 1.0;
  block.working_set_estimate = 1 * GiB;

  auto time_with = [&](convolve::ShortStrideMapping mapping) {
    convolve::ConvolverOptions options;
    options.short_mapping = mapping;
    return convolve::convolve_block(
        block, probes_set, convolve::PredictiveMetric::M6_HplStreamGups,
        options);
  };
  const double as_unit = time_with(convolve::ShortStrideMapping::AsUnit);
  const double geometric =
      time_with(convolve::ShortStrideMapping::GeometricMean);
  const double as_random =
      time_with(convolve::ShortStrideMapping::AsRandom);
  EXPECT_LT(as_unit, geometric);
  EXPECT_LT(geometric, as_random);
}

TEST(EdgeTracer, BlockWithOnlyFlops) {
  workload::BasicBlock block{
      .name = "flops-only",
      .flops_per_iteration = 100,
      .refs_per_iteration = 1,  // tracer needs at least one ref stream
      .element_bytes = 8,
      .iterations = 1000,
      .mix = {.unit = 1.0, .short_ = 0.0, .random = 0.0,
              .short_stride_elements = 2},
      .working_set_bytes = 4 * KiB,
      .ilp_efficiency = 0.9};
  const auto signature = trace::trace_block(block, "p");
  EXPECT_EQ(signature.flops, 100000u);
  EXPECT_EQ(signature.refs, 1000u);
  EXPECT_NEAR(signature.unit_fraction, 1.0, 0.01);
}

TEST(EdgeProbes, MapsWithCustomSizes) {
  const auto& machine = machine::find("ARL_Xeon");
  const std::vector<std::uint64_t> sizes = {4 * KiB, 4 * MiB};
  const auto curve =
      probes::maps_probe(machine, memsim::StrideClass::Unit, false, sizes);
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_GT(curve.points[0].bandwidth, curve.points[1].bandwidth);
  EXPECT_THROW((void)probes::maps_probe(machine,
                                        memsim::StrideClass::Unit, false,
                                        {}),
               precondition_error);
}

TEST(EdgeProbes, ShortStrideProbeExists) {
  // The Short stride class is probeable even though the suite only
  // archives unit and random curves.
  const auto& machine = machine::find("NAVO_655");
  const auto curve = probes::maps_probe(
      machine, memsim::StrideClass::Short, false, {64 * KiB});
  EXPECT_GT(curve.points[0].bandwidth, 0.0);
}

TEST(EdgeStudy, PredictUnknownConfigurationThrows) {
  const auto study = metrics::Study::build(
      {machine::find("ARL_Xeon")},
      machine::find(machine::base_system_name()),
      {workload::find_test_case("RFCTH_Standard")});
  EXPECT_THROW((void)study.predict(metrics::Metric::S1_Hpl,
                                   "RFCTH_Standard", 16, "NAVO_655"),
               precondition_error);
  EXPECT_THROW((void)study.predict(metrics::Metric::S1_Hpl, "AVUS_Standard",
                                   32, "ARL_Xeon"),
               precondition_error);
}

}  // namespace
}  // namespace msim
