// Set-associative cache model and multi-level hierarchy.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"
#include "machine/registry.hpp"
#include "memsim/address_stream.hpp"
#include "memsim/cache.hpp"
#include "test_support.hpp"

namespace msim::memsim {
namespace {

machine::CacheLevel small_cache(std::uint64_t size = 1024,
                                std::uint32_t line = 64,
                                std::uint32_t ways = 2) {
  return machine::CacheLevel{.name = "T",
                             .size_bytes = size,
                             .line_bytes = line,
                             .associativity = ways,
                             .unit_stride_bw = 1e9,
                             .random_bw = 1e8,
                             .latency_s = 1e-9};
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(small_cache());
  EXPECT_FALSE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x13f));  // same 64-byte line
  EXPECT_FALSE(cache.access(0x140));  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // 1024 B / 64 B line / 2-way = 8 sets. Three lines mapping to set 0:
  // line addresses differing by sets*line = 512 bytes.
  Cache cache(small_cache());
  EXPECT_EQ(cache.num_sets(), 8u);
  EXPECT_FALSE(cache.access(0x0000));   // A
  EXPECT_FALSE(cache.access(0x0200));   // B
  EXPECT_TRUE(cache.access(0x0000));    // A again (now MRU)
  EXPECT_FALSE(cache.access(0x0400));   // C evicts B (LRU)
  EXPECT_TRUE(cache.access(0x0000));    // A survives
  EXPECT_FALSE(cache.access(0x0200));   // B was evicted
}

TEST(Cache, ResetClearsEverything) {
  Cache cache(small_cache());
  (void)cache.access(0x0);
  (void)cache.access(0x0);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.access(0x0));  // cold again
}

TEST(Cache, FullyUsedWithinCapacity) {
  // Touch exactly the capacity repeatedly: after warmup everything hits.
  Cache cache(small_cache(4096, 64, 4));
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t address = 0; address < 4096; address += 64) {
      (void)cache.access(address);
    }
  }
  // 64 lines, first pass all miss, subsequent passes all hit.
  EXPECT_EQ(cache.stats().misses(), 64u);
  EXPECT_EQ(cache.stats().hits, 128u);
}

TEST(Cache, CyclicSweepBeyondCapacityThrashesLru) {
  // Classic LRU pathology: sweep 2x capacity cyclically -> ~0 hits.
  Cache cache(small_cache(1024, 64, 2));
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t address = 0; address < 2048; address += 64) {
      (void)cache.access(address);
    }
  }
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Cache, HitRateHelper) {
  Cache cache(small_cache());
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
  (void)cache.access(0);
  (void)cache.access(0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

/// Parameterized over machines: the hierarchy serves a small working set
/// from L1 and a huge random one mostly from memory.
class HierarchyProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(HierarchyProperty, SmallWorkingSetLivesInL1) {
  const auto& machine = machine::find(GetParam());
  CacheHierarchy hierarchy(machine);
  StreamSpec spec;
  spec.working_set_bytes = machine.caches[0].size_bytes / 4;
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 8, .weight = 1.0}};
  AddressGenerator generator(spec, 3);

  // Warm up one sweep, then measure.
  const std::size_t sweep = spec.working_set_bytes / 8;
  for (std::size_t i = 0; i < sweep; ++i) (void)hierarchy.access(
      generator.next());
  const auto stats = hierarchy.run(generator.generate(4 * sweep));
  EXPECT_GT(stats.fraction_at(0), 0.95) << "expected L1 residency";
}

TEST_P(HierarchyProperty, HugeRandomWorkingSetFallsToMemory) {
  const auto& machine = machine::find(GetParam());
  CacheHierarchy hierarchy(machine);
  StreamSpec spec;
  spec.working_set_bytes = machine.total_cache_bytes() * 64;
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 0, .weight = 1.0}};
  AddressGenerator generator(spec, 5);
  const auto stats = hierarchy.run(generator.generate(50000));
  EXPECT_GT(stats.fraction_at(machine.caches.size()), 0.90)
      << "expected main-memory service";
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, HierarchyProperty,
    ::testing::ValuesIn(msim::testing::all_machine_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(Hierarchy, StatsSumToTotal) {
  const auto& machine = machine::find("NAVO_655");
  CacheHierarchy hierarchy(machine);
  StreamSpec spec;
  spec.working_set_bytes = 4 * MiB;
  spec.components = {{.stride_bytes = 8, .weight = 1.0},
                     {.stride_bytes = 0, .weight = 1.0}};
  AddressGenerator generator(spec, 7);
  const auto stats = hierarchy.run(generator.generate(20000));
  std::uint64_t sum = 0;
  for (std::uint64_t hits : stats.hits_per_level) sum += hits;
  EXPECT_EQ(sum, stats.total);
  EXPECT_EQ(stats.total, 20000u);
}

TEST(Hierarchy, FractionOutOfRangeThrows) {
  HierarchyStats stats;
  stats.hits_per_level = {1, 2};
  stats.total = 3;
  EXPECT_THROW((void)stats.fraction_at(2), precondition_error);
}

TEST(Hierarchy, LevelAccessors) {
  const auto& machine = machine::find("ARL_Altix");
  CacheHierarchy hierarchy(machine);
  EXPECT_EQ(hierarchy.depth(), machine.caches.size());
  EXPECT_EQ(hierarchy.level(0).line_bytes(), machine.caches[0].line_bytes);
  EXPECT_THROW((void)hierarchy.level(9), precondition_error);
}

}  // namespace
}  // namespace msim::memsim
