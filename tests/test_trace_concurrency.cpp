// Graph execution timelines under concurrency: two StudyGraph builds
// running on separate threads with tracing enabled must produce a single
// well-formed Chrome trace containing per-node stage spans (tagged with
// kind, content key, worker slot, cache outcome) and the pool occupancy
// counter track — and the traced results must equal the untraced ones.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "machine/registry.hpp"
#include "metrics/metric_set.hpp"
#include "metrics/study.hpp"
#include "obs/run_record.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "pipeline/study_graph.hpp"
#include "simulate/observation_io.hpp"
#include "workload/apps.hpp"

namespace msim::pipeline {
namespace {

namespace fs = std::filesystem;

class TraceConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset_for_testing(); }
  void TearDown() override { obs::reset_for_testing(); }
};

fs::path scratch_file(const std::string& name) {
  const fs::path path = fs::temp_directory_path() / ("msim-tc-" + name);
  fs::remove(path);
  return path;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

StudySpec small_spec(const std::string& base_name) {
  StudySpec spec;
  for (const auto& name :
       {std::string("ARL_Xeon"), std::string("ARL_Opteron")}) {
    if (name != base_name) spec.targets.push_back(machine::find(name));
  }
  spec.base = machine::find(base_name);
  spec.suite = {workload::find_test_case("RFCTH_Standard")};
  return spec;
}

std::string observations_text(const StudySpec& spec) {
  StudyGraph graph;
  const std::size_t handle = graph.add_study(spec);
  graph.build_all();
  return simulate::to_text(graph.take_study(handle).observations());
}

TEST_F(TraceConcurrencyTest, ConcurrentGraphBuildsShareOneTrace) {
  // Reference results with telemetry off.
  const std::string expect_a = observations_text(small_spec("ARL_Xeon"));
  const std::string expect_b = observations_text(small_spec("ARL_Opteron"));

  const fs::path path = scratch_file("concurrent-trace.json");
  obs::enable_tracing(path.string());

  std::string got_a;
  std::string got_b;
  std::thread builder_a(
      [&] { got_a = observations_text(small_spec("ARL_Xeon")); });
  std::thread builder_b(
      [&] { got_b = observations_text(small_spec("ARL_Opteron")); });
  builder_a.join();
  builder_b.join();
  ASSERT_TRUE(obs::write_trace());

  EXPECT_EQ(got_a, expect_a);
  EXPECT_EQ(got_b, expect_b);

  const std::string trace = slurp(path);
  // The whole file must parse as one JSON document even though spans were
  // recorded from two graph executors' worker pools at once.
  const json::Value doc = json::parse(trace);
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->items().size(), 0u);

  // Every DAG node emits one tagged span; both graphs ran the full
  // pipeline, so each stage kind appears at least twice.
  for (const char* span : {"\"name\":\"stage:traces\"",
                           "\"name\":\"stage:probes\"",
                           "\"name\":\"stage:ground-truth\"",
                           "\"name\":\"stage:assemble\""}) {
    EXPECT_GE(count_occurrences(trace, span), 2u) << span;
  }
  EXPECT_GE(count_occurrences(trace, "\"kind\":"), 8u);
  EXPECT_GE(count_occurrences(trace, "\"worker\":"), 8u);
  EXPECT_GE(count_occurrences(trace, "\"cache\":\"miss\""), 1u);

  // Pool occupancy is exported as a Chrome counter track: 'C' phase
  // events, all on one synthetic track (tid 0) so Perfetto merges them.
  EXPECT_GE(count_occurrences(trace, "\"ph\":\"C\""), 2u);
  std::size_t occupancy_events = 0;
  for (const json::Value& event : events->items()) {
    if (event.string_or("name", "") != "graph.pool.occupancy") continue;
    ++occupancy_events;
    EXPECT_EQ(event.number_or("tid", -1.0), 0.0);
    EXPECT_EQ(event.string_or("ph", ""), "C");
    const json::Value* args = event.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_GE(args->number_or("value", -1.0), 0.0);
  }
  EXPECT_GE(occupancy_events, 2u);
  fs::remove(path);
}

TEST_F(TraceConcurrencyTest, StageSpansCarryContentKeysAndCacheTags) {
  const fs::path path = scratch_file("tagged-trace.json");
  obs::enable_tracing(path.string());
  (void)observations_text(small_spec("ARL_Xeon"));
  ASSERT_TRUE(obs::write_trace());

  const json::Value doc = json::parse(slurp(path));
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::size_t tagged = 0;
  std::size_t keyed = 0;
  for (const json::Value& event : events->items()) {
    const std::string name = event.string_or("name", "");
    if (name.rfind("stage:", 0) != 0) continue;
    const json::Value* args = event.find("args");
    ASSERT_NE(args, nullptr) << name;
    EXPECT_NE(args->string_or("kind", ""), "") << name;
    EXPECT_GE(args->number_or("worker", -1.0), 0.0) << name;
    const std::string cache = args->string_or("cache", "");
    EXPECT_TRUE(cache == "hit" || cache == "miss") << name << " " << cache;
    // Content-addressed nodes (probes, traces, ground-truth collect)
    // carry the first 8 hex digits of their dedup key; assemble and
    // per-item nodes are not content-addressed and have none.
    const std::string key = args->string_or("key", "");
    if (!key.empty()) {
      EXPECT_EQ(key.size(), 8u) << name;
      EXPECT_EQ(key.find_first_not_of("0123456789abcdef"),
                std::string::npos)
          << name << " " << key;
      ++keyed;
    }
    ++tagged;
  }
  EXPECT_GE(tagged, 4u);
  EXPECT_GE(keyed, 3u);  // probes for two machines + at least one trace
  fs::remove(path);
}

TEST_F(TraceConcurrencyTest, RunRecordAndTraceCoexist) {
  // Both sinks active at once: one build feeds a trace file and a run
  // record without perturbing either output's structure.
  const fs::path trace_path = scratch_file("both-trace.json");
  const fs::path record_path = scratch_file("both-record.json");
  obs::enable_tracing(trace_path.string());
  obs::enable_run_record(record_path.string());
  (void)observations_text(small_spec("ARL_Xeon"));
  obs::flush_telemetry();

  const json::Value trace = json::parse(slurp(trace_path));
  EXPECT_NE(trace.find("traceEvents"), nullptr);
  const json::Value record = json::parse(slurp(record_path));
  const json::Value* samples = record.find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->items().size(), 1u);
  const json::Value* stages = samples->items()[0].find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_NE(stages->find("assemble"), nullptr);
  fs::remove(trace_path);
  fs::remove(record_path);
}

}  // namespace
}  // namespace msim::pipeline
