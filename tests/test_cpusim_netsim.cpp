// Flop model, overlap policies, and the interconnect cost model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"
#include "cpusim/flop_model.hpp"
#include "cpusim/overlap.hpp"
#include "machine/registry.hpp"
#include "netsim/cost_model.hpp"

namespace msim {
namespace {

TEST(FlopModel, AchievedRateScalesWithIlp) {
  const auto& machine = machine::find("NAVO_655");
  const cpusim::FlopWork half{.flops = 100, .ilp_efficiency = 0.5};
  const cpusim::FlopWork quarter{.flops = 100, .ilp_efficiency = 0.25};
  EXPECT_NEAR(cpusim::achieved_flop_rate(machine, half),
              machine.peak_flops() * 0.5, 1.0);
  EXPECT_NEAR(cpusim::achieved_flop_rate(machine, quarter) * 2.0,
              cpusim::achieved_flop_rate(machine, half), 1.0);
}

TEST(FlopModel, SerialChainsAreSlower) {
  const auto& machine = machine::find("ARL_Altix");
  const cpusim::FlopWork free{.flops = 100, .ilp_efficiency = 0.5,
                              .serial_dependent = false};
  const cpusim::FlopWork serial{.flops = 100, .ilp_efficiency = 0.5,
                                .serial_dependent = true};
  EXPECT_GT(cpusim::achieved_flop_rate(machine, free),
            cpusim::achieved_flop_rate(machine, serial));
}

TEST(FlopModel, TimeOfZeroFlopsIsZero) {
  const auto& machine = machine::find("NAVO_655");
  EXPECT_DOUBLE_EQ(
      cpusim::flop_time(machine, {.flops = 0, .ilp_efficiency = 0.5}), 0.0);
}

TEST(FlopModel, RejectsBadIlp) {
  const auto& machine = machine::find("NAVO_655");
  EXPECT_THROW((void)cpusim::achieved_flop_rate(
                   machine, {.flops = 1, .ilp_efficiency = 0.0}),
               precondition_error);
  EXPECT_THROW((void)cpusim::achieved_flop_rate(
                   machine, {.flops = 1, .ilp_efficiency = 1.5}),
               precondition_error);
}

TEST(Overlap, PolicyOrdering) {
  // max <= partial <= sum for any inputs and hiding level.
  for (double flop : {0.0, 1.0, 3.0}) {
    for (double mem : {0.0, 2.0, 5.0}) {
      for (double hiding : {0.0, 0.5, 1.0}) {
        const double maxed = cpusim::combine_overlap(
            flop, mem, cpusim::OverlapPolicy::Max, hiding);
        const double partial = cpusim::combine_overlap(
            flop, mem, cpusim::OverlapPolicy::Partial, hiding);
        const double summed = cpusim::combine_overlap(
            flop, mem, cpusim::OverlapPolicy::Sum, hiding);
        EXPECT_LE(maxed, partial + 1e-12);
        EXPECT_LE(partial, summed + 1e-12);
      }
    }
  }
}

TEST(Overlap, PartialLimits) {
  // hiding=1 -> Max; hiding=0 -> Sum.
  EXPECT_DOUBLE_EQ(
      cpusim::combine_overlap(2.0, 3.0, cpusim::OverlapPolicy::Partial, 1.0),
      3.0);
  EXPECT_DOUBLE_EQ(
      cpusim::combine_overlap(2.0, 3.0, cpusim::OverlapPolicy::Partial, 0.0),
      5.0);
}

TEST(Overlap, RejectsBadInput) {
  EXPECT_THROW((void)cpusim::combine_overlap(
                   -1.0, 0.0, cpusim::OverlapPolicy::Max, 0.5),
               precondition_error);
  EXPECT_THROW((void)cpusim::combine_overlap(
                   1.0, 1.0, cpusim::OverlapPolicy::Max, 2.0),
               precondition_error);
}

machine::Network test_net() {
  return machine::Network{.latency_s = 5e-6,
                          .bandwidth = 0.5 * GB,
                          .eager_threshold_bytes = 16 * KiB,
                          .per_message_overhead_s = 1e-6,
                          .procs_per_node = 4};
}

TEST(Netsim, PtToPtEagerVersusRendezvous) {
  const auto net = test_net();
  const double eager = netsim::pt2pt_time(net, 16 * KiB);
  const double rendezvous = netsim::pt2pt_time(net, 16 * KiB + 1);
  // Rendezvous adds a round trip: two extra latencies (minus one byte).
  EXPECT_NEAR(rendezvous - eager, 2.0 * net.latency_s, 1e-8);
}

TEST(Netsim, PtToPtMonotoneInSize) {
  const auto net = test_net();
  double previous = 0.0;
  for (std::uint64_t bytes = 0; bytes <= 4 * MiB; bytes += 128 * KiB) {
    const double t = netsim::pt2pt_time(net, bytes);
    EXPECT_GE(t, previous);
    previous = t;
  }
}

TEST(Netsim, ZeroByteLatency) {
  const auto net = test_net();
  EXPECT_DOUBLE_EQ(netsim::pt2pt_time(net, 0),
                   net.per_message_overhead_s + net.latency_s);
}

TEST(Netsim, SingleProcessCollectivesAreFree) {
  const auto net = test_net();
  for (auto type : {netsim::CommType::AllReduce, netsim::CommType::Broadcast,
                    netsim::CommType::AllToAll, netsim::CommType::Barrier}) {
    EXPECT_DOUBLE_EQ(netsim::collective_time(net, type, 1024, 1), 0.0);
  }
}

TEST(Netsim, CollectivesGrowWithProcessCount) {
  const auto net = test_net();
  for (auto type : {netsim::CommType::AllReduce, netsim::CommType::Broadcast,
                    netsim::CommType::AllToAll,
                    netsim::CommType::Barrier}) {
    const double small = netsim::collective_time(net, type, 1024, 8);
    const double large = netsim::collective_time(net, type, 1024, 256);
    EXPECT_GT(large, small) << netsim::to_string(type);
  }
}

TEST(Netsim, BarrierIsLogP) {
  const auto net = test_net();
  const double alpha = net.latency_s + net.per_message_overhead_s;
  EXPECT_NEAR(
      netsim::collective_time(net, netsim::CommType::Barrier, 0, 64),
      6.0 * alpha, 1e-12);
  EXPECT_NEAR(
      netsim::collective_time(net, netsim::CommType::Barrier, 0, 65),
      7.0 * alpha, 1e-12);
}

TEST(Netsim, AllToAllIsPairwise) {
  const auto net = test_net();
  const double alpha = net.latency_s + net.per_message_overhead_s;
  const double expected = 3.0 * (alpha + 1000.0 / net.bandwidth);
  EXPECT_NEAR(
      netsim::collective_time(net, netsim::CommType::AllToAll, 1000, 4),
      expected, 1e-12);
}

TEST(Netsim, EventTimeScalesWithCount) {
  const auto net = test_net();
  const netsim::CommEvent once{.type = netsim::CommType::AllReduce,
                               .bytes = 64,
                               .count = 1};
  const netsim::CommEvent many{.type = netsim::CommType::AllReduce,
                               .bytes = 64,
                               .count = 50};
  EXPECT_NEAR(netsim::event_time(net, many, 32),
              50.0 * netsim::event_time(net, once, 32), 1e-12);
}

TEST(Netsim, SharedBandwidthDividesByNodeSharing) {
  const auto net = test_net();
  EXPECT_DOUBLE_EQ(netsim::shared_bandwidth(net, 2.0), net.bandwidth / 2.0);
  EXPECT_THROW((void)netsim::shared_bandwidth(net, 0.5), precondition_error);
  const double shared = netsim::pt2pt_time(net, 1 * MiB, 4.0);
  const double alone = netsim::pt2pt_time(net, 1 * MiB, 1.0);
  EXPECT_GT(shared, alone);
}

TEST(Netsim, CommTypeNames) {
  EXPECT_EQ(netsim::to_string(netsim::CommType::AllReduce), "allreduce");
  EXPECT_EQ(netsim::to_string(netsim::CommType::PointToPoint), "p2p");
}

}  // namespace
}  // namespace msim
