// Shared fixtures for the test suite: the full paper study is expensive
// enough (~2 s) that tests share one instance, and several parameterized
// suites sweep the machine registry or the TI-05 suite.
#pragma once

#include <string>
#include <vector>

#include "machine/registry.hpp"
#include "metrics/study.hpp"
#include "workload/apps.hpp"

namespace msim::testing {

/// The full paper study, built once per test binary.
inline const metrics::Study& shared_study() {
  static const metrics::Study study = metrics::Study::build();
  return study;
}

/// Names of every registry machine (targets + base) for parameterized
/// machine sweeps.
inline std::vector<std::string> all_machine_names() {
  std::vector<std::string> names = machine::target_system_names();
  names.push_back(machine::base_system_name());
  return names;
}

/// (app, nprocs) pairs covering the whole TI-05 suite.
struct AppInstance {
  std::string app;
  int nprocs;
};

inline std::vector<AppInstance> all_app_instances() {
  std::vector<AppInstance> instances;
  for (const auto& test_case : workload::ti05_suite()) {
    for (int nprocs : test_case.cpu_counts) {
      instances.push_back({test_case.name, nprocs});
    }
  }
  return instances;
}

}  // namespace msim::testing
