#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace msim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(7);
  const std::uint64_t first = rng();
  (void)rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformRangeRejectsInverted) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), precondition_error);
}

TEST(Rng, UniformU64StaysBelowBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_u64(bound), bound);
    }
  }
}

TEST(Rng, UniformU64BoundOneIsAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_u64(1), 0u);
  }
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(13);
  EXPECT_THROW((void)rng.uniform_u64(0), precondition_error);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(17);
  std::array<int, 8> histogram{};
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    ++histogram[rng.uniform_u64(8)];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, draws / 8, draws / 80);  // within 10%
  }
}

TEST(Rng, NormalHasApproximateMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, PickWeightedFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> histogram{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++histogram[rng.pick_weighted(weights)];
  }
  EXPECT_EQ(histogram[2], 0);  // zero weight never drawn
  EXPECT_NEAR(histogram[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(histogram[1] / static_cast<double>(draws), 0.3, 0.01);
  EXPECT_NEAR(histogram[3] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(Rng, PickWeightedRejectsBadInput) {
  Rng rng(37);
  EXPECT_THROW((void)rng.pick_weighted({}), precondition_error);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW((void)rng.pick_weighted(negative), precondition_error);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW((void)rng.pick_weighted(zeros), precondition_error);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(43);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(draws), 0.25, 0.01);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), mix64(0, 1));
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace msim
