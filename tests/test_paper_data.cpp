// The embedded paper data: appendix tables, Table 4/5 reference values.
#include <gtest/gtest.h>

#include "data/paper_data.hpp"

namespace msim::data {
namespace {

TEST(Appendix, FiveTablesWithTenMachinesEach) {
  const auto& tables = observed_tables();
  ASSERT_EQ(tables.size(), 5u);
  for (const auto& table : tables) {
    EXPECT_EQ(table.cpu_counts.size(), 3u);
    EXPECT_EQ(table.cells.size(), 30u) << table.app;
  }
}

TEST(Appendix, KnownValuesMatchThePaper) {
  // Table 6 (AVUS Standard).
  EXPECT_DOUBLE_EQ(*observed_seconds("AVUS_Standard", 32, "ERDC_O3800"),
                   12737.0);
  EXPECT_DOUBLE_EQ(*observed_seconds("AVUS_Standard", 128, "ARL_Opteron"),
                   1401.0);
  // Table 8 (HYCOM).
  EXPECT_DOUBLE_EQ(*observed_seconds("HYCOM_Standard", 59, "ARL_Altix"),
                   2263.0);
  EXPECT_DOUBLE_EQ(*observed_seconds("HYCOM_Standard", 124, "NAVO_655"),
                   990.0);
  // Table 10 (RFCTH) includes the anomalous ARL_690 cell the paper prints.
  EXPECT_DOUBLE_EQ(*observed_seconds("RFCTH_Standard", 64, "ARL_690_1.7"),
                   5156.0);
}

TEST(Appendix, BlanksMatchThePaper) {
  EXPECT_FALSE(observed_seconds("AVUS_Standard", 128, "ARL_Altix"));
  EXPECT_FALSE(observed_seconds("AVUS_Large", 128, "ARL_Altix"));
  EXPECT_FALSE(observed_seconds("OVERFLOW2_Standard", 48, "ASC_SC45"));
  EXPECT_FALSE(observed_seconds("OVERFLOW2_Standard", 32, "ARL_Xeon"));
  EXPECT_FALSE(observed_seconds("RFCTH_Standard", 16, "ARL_Altix"));
  // Unknown configurations are also empty, not errors.
  EXPECT_FALSE(observed_seconds("AVUS_Standard", 999, "ERDC_O3800"));
  EXPECT_FALSE(observed_seconds("NOT_AN_APP", 32, "ERDC_O3800"));
}

TEST(Appendix, BlankCountMatchesThePaper) {
  std::size_t blanks = 0;
  for (const auto& table : observed_tables()) {
    for (const auto& cell : table.cells) {
      if (!cell.seconds.has_value()) ++blanks;
    }
  }
  // Tables 6-10 show 1 + 7 + 0 + 13 + 1 = 22 empty cells.
  EXPECT_EQ(blanks, 22u);
}

TEST(Table4, NineRowsInPaperOrder) {
  const auto& rows = table4();
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_EQ(rows[0].label, "1-S");
  EXPECT_DOUBLE_EQ(rows[0].mean_abs_error_pct, 63.0);
  EXPECT_DOUBLE_EQ(rows[2].mean_abs_error_pct, 33.0);   // GUPS
  EXPECT_DOUBLE_EQ(rows[5].mean_abs_error_pct, 22.0);   // #6
  EXPECT_DOUBLE_EQ(rows[8].mean_abs_error_pct, 18.0);   // #9
  EXPECT_EQ(rows[8].description, "HPL+MAPS+NET+DEP");
}

TEST(Table5, OverallRowMatchesTable4) {
  const auto& rows = table5();
  ASSERT_EQ(rows.size(), 11u);
  EXPECT_EQ(rows.back().machine, "OVERALL");
  const auto& overall = rows.back().error_pct;
  const auto& t4 = table4();
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(overall[i], t4[i].mean_abs_error_pct) << "metric " << i;
  }
}

TEST(Table5, FamousCells) {
  // The Altix STREAM error of 281% and SC45 HPL error of 167%.
  const auto& rows = table5();
  EXPECT_DOUBLE_EQ(rows[7].error_pct[1], 281.0);
  EXPECT_DOUBLE_EQ(rows[3].error_pct[0], 167.0);
}

TEST(Balanced, ReferenceValues) {
  const auto reference = balanced_reference();
  EXPECT_DOUBLE_EQ(reference.equal_mean_pct, 35.0);
  EXPECT_DOUBLE_EQ(reference.fitted_mean_pct, 33.0);
  EXPECT_DOUBLE_EQ(reference.fitted_weights[0], 0.05);
  EXPECT_DOUBLE_EQ(reference.fitted_weights[1], 0.50);
  EXPECT_DOUBLE_EQ(reference.fitted_weights[2], 0.45);
}

}  // namespace
}  // namespace msim::data
