// The staged pipeline engine: scheduler determinism, artifact-cache
// round-trips, cache-key sensitivity, and concurrent evaluation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "machine/registry.hpp"
#include "pipeline/artifact_cache.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_io.hpp"
#include "simulate/observation_io.hpp"
#include "trace/signature_io.hpp"
#include "workload/apps.hpp"

namespace msim::pipeline {
namespace {

namespace fs = std::filesystem;

/// A reduced configuration (2 targets, 1 test case) cheap enough to build
/// several times per test.
StudyBuilder small_builder() {
  StudyBuilder builder;
  builder.targets({machine::find("ARL_Xeon"), machine::find("ARL_Opteron")})
      .base(machine::find(machine::base_system_name()))
      .suite({workload::find_test_case("RFCTH_Standard")});
  return builder;
}

/// Fresh scratch cache directory, unique per test.
fs::path scratch_cache(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("msim-test-" + tag);
  fs::remove_all(dir);
  return dir;
}

TEST(Scheduler, EffectiveThreadsClampsToItems) {
  EXPECT_EQ(effective_threads(4, 2), 2u);
  EXPECT_EQ(effective_threads(1, 100), 1u);
  EXPECT_EQ(effective_threads(8, 0), 1u);
  EXPECT_GE(effective_threads(0, 100), 1u);  // 0 = hardware concurrency
}

TEST(Scheduler, MsimThreadsEnvOverridesDefault) {
  ::setenv("MSIM_THREADS", "3", 1);
  EXPECT_EQ(env_threads(), 3u);
  EXPECT_EQ(effective_threads(0, 100), 3u);
  // An explicit thread count always beats the environment.
  EXPECT_EQ(effective_threads(5, 100), 5u);
  // Still clamped to the number of items.
  EXPECT_EQ(effective_threads(0, 2), 2u);

  // Malformed or out-of-range values are ignored (fall back to hardware
  // concurrency).
  ::setenv("MSIM_THREADS", "banana", 1);
  EXPECT_EQ(env_threads(), 0u);
  ::setenv("MSIM_THREADS", "3banana", 1);
  EXPECT_EQ(env_threads(), 0u);
  ::setenv("MSIM_THREADS", "0", 1);
  EXPECT_EQ(env_threads(), 0u);
  // Absurd values are capped, not honored.
  ::setenv("MSIM_THREADS", "99999999", 1);
  EXPECT_EQ(env_threads(), 1024u);

  ::unsetenv("MSIM_THREADS");
  EXPECT_EQ(env_threads(), 0u);
  EXPECT_GE(effective_threads(0, 100), 1u);
}

TEST(Scheduler, RunIndexedCoversEveryItemOnce) {
  std::vector<int> hits(97, 0);
  run_indexed(hits.size(), 4,
              [&hits](std::size_t index) { ++hits[index]; });
  for (int hit : hits) EXPECT_EQ(hit, 1);
}

TEST(Scheduler, RunIndexedPropagatesFirstException) {
  EXPECT_THROW(run_indexed(16, 4,
                           [](std::size_t index) {
                             if (index == 7) {
                               throw std::runtime_error("boom");
                             }
                           }),
               std::runtime_error);
}

TEST(Scheduler, SerialExceptionStopsImmediately) {
  // With one thread the items run in order and an exception propagates
  // before any later item starts.
  std::vector<int> hits(8, 0);
  try {
    run_indexed(hits.size(), 1, [&hits](std::size_t index) {
      ++hits[index];
      if (index == 3) throw std::runtime_error("stop at three");
    });
    FAIL() << "expected run_indexed to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "stop at three");
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i <= 3 ? 1 : 0) << "index " << i;
  }
}

TEST(Scheduler, NestedRunIndexedDegradesToInline) {
  // A fan-out issued from inside a pool worker must run on the calling
  // worker thread (no second pool): N outer workers each asking for M
  // inner threads used to oversubscribe to N x M.
  reset_peak_workers();
  std::vector<int> inner_hits(4 * 8, 0);
  run_indexed(4, 4, [&](std::size_t outer) {
    EXPECT_TRUE(inside_scheduler_worker());
    const std::thread::id caller = std::this_thread::get_id();
    run_indexed(8, 8, [&, outer, caller](std::size_t inner) {
      EXPECT_EQ(std::this_thread::get_id(), caller)
          << "nested fan-out left the calling worker thread";
      ++inner_hits[outer * 8 + inner];
    });
  });
  for (int hit : inner_hits) EXPECT_EQ(hit, 1);
  EXPECT_LE(peak_workers(), 4u) << "nested fan-out spawned a second pool";
  EXPECT_FALSE(inside_scheduler_worker());
}

TEST(ObservationIo, RoundTripIsBitwise) {
  simulate::ObservationSet set;
  set.add({"RFCTH_Standard", 32, "ARL_Xeon", 1234.5678901234567});
  set.add({"HYCOM_Standard", 59, "NAVO_655", 0.0000123456789012345});
  set.add({"OOCORE_Large", 64, "MHPCC_Dell", 9.87e6});

  const auto parsed =
      simulate::observation_set_from_text(simulate::to_text(set));
  ASSERT_EQ(parsed.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(parsed.all()[i].app, set.all()[i].app);
    EXPECT_EQ(parsed.all()[i].nprocs, set.all()[i].nprocs);
    EXPECT_EQ(parsed.all()[i].machine, set.all()[i].machine);
    EXPECT_EQ(parsed.all()[i].seconds, set.all()[i].seconds);  // bitwise
  }
}

TEST(ObservationIo, MalformedTextThrows) {
  EXPECT_ANY_THROW((void)simulate::observation_set_from_text("not a set"));
}

TEST(Pipeline, ParallelBuildMatchesSerialBitwise) {
  auto serial_builder = small_builder();
  serial_builder.threads(1).cache(false);
  const auto serial = serial_builder.build();

  auto parallel_builder = small_builder();
  parallel_builder.threads(4).cache(false);
  const auto parallel = parallel_builder.build();

  // Ground truth: same observations, same order, bit-for-bit.
  ASSERT_EQ(parallel.observations().size(), serial.observations().size());
  for (std::size_t i = 0; i < serial.observations().size(); ++i) {
    const auto& a = serial.observations().all()[i];
    const auto& b = parallel.observations().all()[i];
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.nprocs, b.nprocs);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.seconds, b.seconds);
  }

  // Probes and traces: identical canonical text.
  for (const auto& name : serial.target_names()) {
    EXPECT_EQ(probes::to_text(serial.probe_set(name)),
              probes::to_text(parallel.probe_set(name)));
  }
  for (const auto& test_case : serial.suite()) {
    for (int nprocs : test_case.cpu_counts) {
      EXPECT_EQ(
          trace::to_text(serial.signature(test_case.name, nprocs)),
          trace::to_text(parallel.signature(test_case.name, nprocs)));
    }
  }
}

TEST(Pipeline, CacheRoundTripReturnsIdenticalStudy) {
  const fs::path dir = scratch_cache("cache-roundtrip");

  auto cold_builder = small_builder();
  cold_builder.cache(true).cache_dir(dir.string());
  const auto cold = cold_builder.build();
  EXPECT_EQ(cold_builder.stats().ground_truth.cache_hits, 0u);
  EXPECT_EQ(cold_builder.stats().probes.cache_hits, 0u);
  EXPECT_EQ(cold_builder.stats().traces.cache_hits, 0u);

  auto warm_builder = small_builder();
  warm_builder.cache(true).cache_dir(dir.string());
  const auto warm = warm_builder.build();
  EXPECT_TRUE(warm_builder.stats().ground_truth.all_cached());
  EXPECT_TRUE(warm_builder.stats().probes.all_cached());
  EXPECT_TRUE(warm_builder.stats().traces.all_cached());

  // Every prediction must survive the text round-trip bit-for-bit.
  const auto metric_list = metrics::all_metrics();
  const auto cold_predictions = cold.evaluate(metric_list);
  const auto warm_predictions = warm.evaluate(metric_list);
  ASSERT_EQ(cold_predictions.size(), warm_predictions.size());
  for (std::size_t i = 0; i < cold_predictions.size(); ++i) {
    EXPECT_EQ(cold_predictions[i].predicted_seconds,
              warm_predictions[i].predicted_seconds);
    EXPECT_EQ(cold_predictions[i].actual_seconds,
              warm_predictions[i].actual_seconds);
  }

  fs::remove_all(dir);
}

TEST(Pipeline, CorruptArtifactsAreTreatedAsMisses) {
  const fs::path dir = scratch_cache("cache-corrupt");

  auto cold_builder = small_builder();
  cold_builder.cache(true).cache_dir(dir.string());
  const auto cold = cold_builder.build();

  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "not a valid artifact\n";
  }

  auto rebuilt_builder = small_builder();
  rebuilt_builder.cache(true).cache_dir(dir.string());
  const auto rebuilt = rebuilt_builder.build();
  EXPECT_EQ(rebuilt_builder.stats().ground_truth.cache_hits, 0u);
  EXPECT_EQ(rebuilt_builder.stats().probes.cache_hits, 0u);
  EXPECT_EQ(rebuilt_builder.stats().traces.cache_hits, 0u);
  EXPECT_EQ(rebuilt.observations().all()[0].seconds,
            cold.observations().all()[0].seconds);

  fs::remove_all(dir);
}

TEST(Pipeline, StageKeysAreSensitiveToContent) {
  auto builder = small_builder();
  const StageKeys base = builder.stage_keys();

  // Executor options feed only the ground-truth campaign.
  {
    auto changed = small_builder();
    metrics::StudyOptions options;
    options.executor.noise_salt = 42;
    changed.options(options);
    const StageKeys keys = changed.stage_keys();
    EXPECT_NE(keys.ground_truth, base.ground_truth);
    EXPECT_EQ(keys.probes, base.probes);
    EXPECT_EQ(keys.traces, base.traces);
  }

  // Tracer options feed only the trace stage.
  {
    auto changed = small_builder();
    metrics::StudyOptions options;
    options.tracer.sample_refs = 1u << 12;
    changed.options(options);
    const StageKeys keys = changed.stage_keys();
    EXPECT_EQ(keys.ground_truth, base.ground_truth);
    EXPECT_EQ(keys.probes, base.probes);
    EXPECT_NE(keys.traces, base.traces);
  }

  // A target machine's hardware feeds its probes and the campaign, but
  // not the base-system traces.
  {
    auto xeon = machine::find("ARL_Xeon");
    xeon.memory_contention += 0.125;
    StudyBuilder changed;
    changed.targets({xeon, machine::find("ARL_Opteron")})
        .base(machine::find(machine::base_system_name()))
        .suite({workload::find_test_case("RFCTH_Standard")});
    const StageKeys keys = changed.stage_keys();
    EXPECT_NE(keys.ground_truth, base.ground_truth);
    EXPECT_NE(keys.probes, base.probes);
    EXPECT_EQ(keys.traces, base.traces);
  }

  // Convolver options apply at predict() time, after every cached stage,
  // so they are deliberately excluded from every key.
  {
    auto changed = small_builder();
    metrics::StudyOptions options;
    options.convolver.overlap = cpusim::OverlapPolicy::Sum;
    changed.options(options);
    const StageKeys keys = changed.stage_keys();
    EXPECT_EQ(keys.ground_truth, base.ground_truth);
    EXPECT_EQ(keys.probes, base.probes);
    EXPECT_EQ(keys.traces, base.traces);
  }

  // The suite feeds the campaign and the traces, not the probes.
  {
    StudyBuilder changed;
    changed.targets(
        {machine::find("ARL_Xeon"), machine::find("ARL_Opteron")})
        .base(machine::find(machine::base_system_name()))
        .suite({workload::find_test_case("HYCOM_Standard")});
    const StageKeys keys = changed.stage_keys();
    EXPECT_NE(keys.ground_truth, base.ground_truth);
    EXPECT_EQ(keys.probes, base.probes);
    EXPECT_NE(keys.traces, base.traces);
  }
}

TEST(Pipeline, ConcurrentEvaluateIsThreadSafe) {
  auto builder = small_builder();
  builder.cache(false);
  const auto study = builder.build();

  // The balanced composites are built lazily on first use; hammer them
  // from several threads and require every thread to see the same values.
  const auto metric_list = metrics::all_metrics();
  const auto expected = study.evaluate(metric_list);
  std::vector<std::thread> workers;
  std::vector<bool> matches(4, false);
  for (std::size_t t = 0; t < matches.size(); ++t) {
    workers.emplace_back([&study, &metric_list, &expected, &matches, t] {
      const auto predictions = study.evaluate(metric_list);
      bool same = predictions.size() == expected.size();
      for (std::size_t i = 0; same && i < predictions.size(); ++i) {
        same = predictions[i].predicted_seconds ==
               expected[i].predicted_seconds;
      }
      matches[t] = same;
    });
  }
  for (auto& worker : workers) worker.join();
  for (bool match : matches) EXPECT_TRUE(match);
}

TEST(ArtifactCache, DisabledCacheNeverStores) {
  const ArtifactCache cache;
  EXPECT_FALSE(cache.enabled());
  cache.store("anything.txt", "content");
  EXPECT_FALSE(cache.load("anything.txt").has_value());
}

TEST(ArtifactCache, StoreThenLoadRoundTrips) {
  const fs::path dir = scratch_cache("artifact-io");
  const ArtifactCache cache(dir.string());
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.load("a.txt").has_value());
  cache.store("a.txt", "payload\n");
  const auto loaded = cache.load("a.txt");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload\n");
  fs::remove_all(dir);
}

TEST(ArtifactCache, StatsCountEntriesAndBytes) {
  const ArtifactCache disabled;
  EXPECT_EQ(disabled.stats().entries, 0u);
  EXPECT_EQ(disabled.stats().bytes, 0u);

  const fs::path dir = scratch_cache("artifact-stats");
  const ArtifactCache cache(dir.string());
  EXPECT_EQ(cache.stats().entries, 0u);

  cache.store("a.txt", "12345");
  cache.store("b.txt", "1234567890");
  cache.store("c.txt", "");
  const ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.bytes, 15u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msim::pipeline
