// Fixture: wall-clock read in library code (determinism.wall-clock).
long stamp() {
  return time(nullptr);  // line 3: banned
}
