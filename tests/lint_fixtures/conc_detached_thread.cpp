// Fixture: a detached thread — unjoinable, outlives its spawner's
// invariants.
#include <thread>

void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}
