// Fixture: library code writing to stdout (stdout.in-library).
#include <cstdio>

void announce(int value) {
  std::printf("value is %d\n", value);  // line 5: library must not print
}
