// Fixture: a mutable file-scope static with no guarded-by annotation.
#include <string>

namespace fixture {
std::string g_last_error;
}
