// Fixture: iteration over a hash-ordered container
// (determinism.unordered-iteration).
#include <unordered_map>

struct Tally {
  std::unordered_map<int, double> weights_;

  double sum() const {
    double total = 0.0;
    for (const auto& entry : weights_) {  // line 10: hash-ordered walk
      total += entry.second;
    }
    return total;
  }
};
