// Fixture: diagnostic printed to stdout in a bench (stdout.diagnostic).
#include <cstdio>

void fail(const char* what) {
  std::printf("error: %s\n", what);  // line 5: diagnostics go to stderr
}

void table() {
  std::printf("Metric error:  1.5%%\n");  // fine: table line, not a prefix
}
