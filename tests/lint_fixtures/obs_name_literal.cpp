// Fixture: telemetry name computed at runtime (obs.name-literal).
#include <string>

struct Registry {
  int& counter(const std::string& name);
  static Registry& instance();
};

void bump(const std::string& stage) {
  Registry::instance().counter(stage + ".tasks") += 1;  // line 10
}
