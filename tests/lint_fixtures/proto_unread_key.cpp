// Fixture: the writer emits "extra" but no reader region consumes it.
#include <string>

struct Doc {
  double number_or(const char* key, double fallback) const;
};

// msim-lint: proto(fixture.rpc, writer)
std::string encode(int id, int extra) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"extra\":";
  out += std::to_string(extra);
  out += '}';
  return out;
}

// msim-lint: proto(fixture.rpc, reader)
int decode(const Doc& doc) {
  return static_cast<int>(doc.number_or("id", 0.0));
}
