// Fixture: raw getenv() bypassing the checked env_* helpers in
// common/parse.hpp.
#include <cstdlib>

const char* fixture_dir() {
  return std::getenv("MSIM_FIXTURE_DIR");
}
