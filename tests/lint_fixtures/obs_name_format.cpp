// Fixture: telemetry name that is not dotted.lowercase (obs.name-format).
#include <string>

struct Registry {
  int& counter(const std::string& name);
  static Registry& instance();
};

void bump() {
  Registry::instance().counter("CacheHits") += 1;  // line 10: bad name
}
