// Fixture: flock acquire with no LOCK_UN in the same function and no
// RAII holder documenting the pairing.
#include <sys/file.h>

int acquire(int fd) {
  return ::flock(fd, LOCK_EX);
}
