// Fixture: idiomatic library code; must produce zero findings.
//
// Mentions of banned names inside comments (rand(), strtok, std::cout)
// and strings must not trip the tokenizer-based rules.
#include <map>
#include <string>
#include <vector>

namespace demo {

// "time(nullptr)" in a string literal is data, not a call:
const char* kDoc = "never call time(nullptr) or sprintf in src/";

struct Sample {
  std::string name;
  double value = 0.0;
};

double total(const std::map<std::string, double>& ordered) {
  double sum = 0.0;
  for (const auto& [name, value] : ordered) {
    (void)name;
    sum += value;
  }
  return sum;
}

}  // namespace demo
