// Fixture: the reader consumes "ghost" but no writer region emits it.
#include <string>

struct Doc {
  double number_or(const char* key, double fallback) const;
};

// msim-lint: proto(fixture.rpc, writer)
std::string encode(int id) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += '}';
  return out;
}

// msim-lint: proto(fixture.rpc, reader)
double decode(const Doc& doc) {
  return doc.number_or("id", 0.0) + doc.number_or("ghost", 0.0);
}
