// Fixture: banned unsafe C API (unsafe.banned-function).
#include <cstring>

char* first_word(char* text) {
  return strtok(text, " ");  // line 5: not reentrant
}
