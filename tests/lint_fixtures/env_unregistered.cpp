// Fixture: an env_* helper read of a knob that is not listed in
// tools/msim_lint/env_registry.txt.
unsigned env_unsigned(const char* name, unsigned fallback);

unsigned canary_threads() {
  return env_unsigned("MSIM_CANARY_KNOB", 1u);
}
