// Fixture: the writer serializes "name" as a JSON string, the reader
// parses it as a number.
#include <string>

struct Doc {
  double number_or(const char* key, double fallback) const;
};

// msim-lint: proto(fixture.rpc, writer)
std::string encode(const std::string& name) {
  std::string out = "{\"name\":\"";
  out += name;
  out += "\"}";
  return out;
}

// msim-lint: proto(fixture.rpc, reader)
double decode(const Doc& doc) {
  return doc.number_or("name", 0.0);
}
