// Fixture: one telemetry name registered as two instrument kinds
// (obs.name-collision).
#include <string>

struct Registry {
  int& counter(const std::string& name);
  double& histogram(const std::string& name);
  static Registry& instance();
};

void record() {
  Registry::instance().counter("cache.latency") += 1;
  Registry::instance().histogram("cache.latency") = 0.5;  // line 13: clash
}
