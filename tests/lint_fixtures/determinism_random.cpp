// Fixture: ambient randomness in library code (determinism.random).
int draw() {
  return rand() % 6;  // line 3: banned
}
