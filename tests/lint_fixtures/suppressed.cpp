// Fixture: every violation here carries an inline allow directive, so
// the file must lint clean (with two suppressions counted).
int draw() {
  return rand() % 6;  // msim-lint: allow(determinism.random)
}

// msim-lint: allow(determinism.wall-clock)
long stamp() { return time(nullptr); }
