// Fixture: a bare unlock on the mutex itself — no RAII guard declared
// for it in this file.
#include <mutex>

void leak(std::mutex& m) {
  m.unlock();
}
