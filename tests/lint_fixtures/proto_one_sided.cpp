// Fixture: a protocol annotated on one side only — no reader region
// anywhere in the corpus, so key drift is uncheckable.
#include <string>

// msim-lint: proto(fixture.wire, writer)
std::string encode(int id) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += '}';
  return out;
}
