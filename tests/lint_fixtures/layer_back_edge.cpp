// Fixture: an include that points up the layer DAG (lower-ranked module
// including a higher-ranked one).
#include "serve/server.hpp"

int fixture_value() { return 1; }
