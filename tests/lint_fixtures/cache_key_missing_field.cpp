// Fixture: key-for() annotated hash function that forgets a field
// (cache-key.missing-field).
struct Hasher {
  void update_bool(bool value);
  void update_double(double value);
  void update_int(int value);
};

namespace demo {

struct SpecOptions {
  bool alpha = true;
  double beta = 0.5;
  int gamma = 3;  // never hashed below
};

// msim-lint: key-for(demo::SpecOptions)
void hash_spec(Hasher& hash, const SpecOptions& spec) {
  hash.update_bool(spec.alpha);
  hash.update_double(spec.beta);
}

}  // namespace demo
