// Fixture: std::cout in a bench (stdout.cout).
#include <iostream>

void emit() {
  std::cout << "hello\n";  // line 5: benches print via std::printf
}
