// Fixture: a brand-new spec struct whose hash function exists but
// carries no key-for() annotation anywhere in the corpus
// (cache-key.uncovered-struct). The rule discovers the struct from the
// key function's shape — no curated list names PrefetchOptions.
struct Fnv1a {
  Fnv1a& update_bool(bool value);
  Fnv1a& update_u64(unsigned long long value);
  unsigned long long digest() const;
};

namespace demo {

struct PrefetchOptions {
  bool enabled = true;
  unsigned long long batch_bytes = 1u << 20;
};

unsigned long long prefetch_key(const PrefetchOptions& options) {
  Fnv1a hash;
  hash.update_bool(options.enabled);
  hash.update_u64(options.batch_bytes);
  return hash.digest();
}

}  // namespace demo
