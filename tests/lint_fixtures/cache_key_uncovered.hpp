// Fixture: a required spec struct defined with no key-for() annotation
// anywhere in the corpus (cache-key.uncovered-struct).
namespace simulate {

struct ExecutorOptions {
  bool apply_tlb = true;
  double noise_amplitude = 0.08;
};

}  // namespace simulate
