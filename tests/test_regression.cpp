// Dense linear algebra: SPD solves, least squares, simplex projection, and
// the constrained weight fit behind the balanced-rating experiment.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "stats/regression.hpp"

namespace msim::stats {
namespace {

TEST(Matrix, BasicsAndBounds) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW((void)m.at(2, 0), precondition_error);
  EXPECT_THROW(Matrix(0, 1), precondition_error);
}

TEST(Matrix, GramAndProducts) {
  Matrix a(3, 2);
  // a = [[1,0],[1,1],[0,2]]
  a.at(0, 0) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 1;
  a.at(2, 1) = 2;
  const Matrix g = a.gram();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 5.0);

  const std::vector<double> v = {1.0, 2.0, 3.0};
  const auto atv = a.transpose_times(v);
  EXPECT_DOUBLE_EQ(atv[0], 3.0);
  EXPECT_DOUBLE_EQ(atv[1], 8.0);

  const std::vector<double> x = {2.0, -1.0};
  const auto ax = a.times(x);
  EXPECT_DOUBLE_EQ(ax[0], 2.0);
  EXPECT_DOUBLE_EQ(ax[1], 1.0);
  EXPECT_DOUBLE_EQ(ax[2], -2.0);
}

TEST(SolveSpd, SolvesKnownSystem) {
  Matrix s(2, 2);
  s.at(0, 0) = 4;
  s.at(0, 1) = 1;
  s.at(1, 0) = 1;
  s.at(1, 1) = 3;
  const std::vector<double> b = {1.0, 2.0};
  const auto x = solve_spd(s, b);
  EXPECT_NEAR(4 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(SolveSpd, RejectsIndefinite) {
  Matrix s(2, 2);
  s.at(0, 0) = 1;
  s.at(0, 1) = 2;
  s.at(1, 0) = 2;
  s.at(1, 1) = 1;  // eigenvalues 3, -1
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW((void)solve_spd(s, b), invariant_error);
}

/// Property: least squares recovers planted coefficients from noiseless
/// data at several problem sizes.
class LeastSquaresProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LeastSquaresProperty, RecoversPlantedCoefficients) {
  const auto [rows, cols] = GetParam();
  Rng rng(300 + rows * 31 + cols);
  Matrix a(rows, cols);
  std::vector<double> truth(cols);
  for (int c = 0; c < cols; ++c) truth[c] = rng.uniform(-2.0, 2.0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) a.at(r, c) = rng.uniform(-1.0, 1.0);
  }
  const auto b = a.times(truth);
  const auto fit = least_squares(a, b);
  for (int c = 0; c < cols; ++c) {
    EXPECT_NEAR(fit[c], truth[c], 1e-8) << "coefficient " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LeastSquaresProperty,
    ::testing::Values(std::pair{3, 2}, std::pair{10, 3}, std::pair{50, 5},
                      std::pair{200, 8}));

TEST(LeastSquares, RidgeShrinksSolution) {
  Rng rng(55);
  Matrix a(20, 3);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = rng.uniform();
  }
  const std::vector<double> b(20, 1.0);
  const auto plain = least_squares(a, b);
  const auto ridged = least_squares(a, b, 100.0);
  double plain_norm = 0.0, ridged_norm = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    plain_norm += plain[c] * plain[c];
    ridged_norm += ridged[c] * ridged[c];
  }
  EXPECT_LT(ridged_norm, plain_norm);
}

TEST(SimplexProjection, FixedPointsAndBasics) {
  // Already on the simplex: unchanged.
  const std::vector<double> on = {0.2, 0.3, 0.5};
  const auto projected = project_to_simplex(on);
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_NEAR(projected[i], on[i], 1e-12);
  }
  // Dominant coordinate collapses to a vertex.
  const auto vertex = project_to_simplex(std::vector<double>{10.0, 0.0, 0.0});
  EXPECT_NEAR(vertex[0], 1.0, 1e-12);
  EXPECT_NEAR(vertex[1], 0.0, 1e-12);
}

/// Property: for random vectors the projection is on the simplex and is
/// the nearest point (checked against a dense random sample).
class SimplexProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProjectionProperty, ProjectsOntoSimplex) {
  Rng rng(700 + GetParam());
  std::vector<double> v(GetParam());
  for (auto& value : v) value = rng.uniform(-2.0, 2.0);
  const auto w = project_to_simplex(v);

  double total = 0.0;
  for (double value : w) {
    EXPECT_GE(value, 0.0);
    total += value;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  // No random simplex point is closer to v than the projection.
  auto distance_sq = [&](const std::vector<double>& p) {
    double sum = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      sum += (p[i] - v[i]) * (p[i] - v[i]);
    }
    return sum;
  };
  const double best = distance_sq(w);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> p(v.size());
    double norm = 0.0;
    for (auto& value : p) {
      value = -std::log(1.0 - rng.uniform());  // Exp(1): Dirichlet sample
      norm += value;
    }
    for (auto& value : p) value /= norm;
    EXPECT_GE(distance_sq(p) + 1e-9, best);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexProjectionProperty,
                         ::testing::Values(1, 2, 3, 5, 10));

TEST(SimplexFit, RecoversPlantedWeights) {
  Rng rng(99);
  const std::vector<double> truth = {0.1, 0.6, 0.3};
  Matrix a(60, 3);
  std::vector<double> b(60);
  for (std::size_t r = 0; r < 60; ++r) {
    double dot = 0.0;
    for (std::size_t c = 0; c < 3; ++c) {
      a.at(r, c) = rng.uniform();
      dot += a.at(r, c) * truth[c];
    }
    b[r] = dot;
  }
  const auto fit = least_squares_simplex(a, b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(fit.weights[c], truth[c], 1e-3) << "weight " << c;
  }
  EXPECT_LT(fit.objective, 1e-6);
}

TEST(SimplexFit, WeightsAlwaysFeasible) {
  Rng rng(123);
  Matrix a(10, 4);
  std::vector<double> b(10);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a.at(r, c) = rng.uniform(-1, 1);
    b[r] = rng.uniform(-1, 1);
  }
  const auto fit = least_squares_simplex(a, b);
  double total = 0.0;
  for (double w : fit.weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace msim::stats
