// The extension workloads (FFT3D, KrylovLatency) and their intended
// communication character.
#include <gtest/gtest.h>

#include "machine/registry.hpp"
#include "report/breakdown.hpp"
#include "simulate/executor.hpp"
#include "workload/extra_apps.hpp"

namespace msim::workload {
namespace {

TEST(ExtraApps, ValidateAcrossCounts) {
  for (int nprocs : {16, 64, 256, 1024}) {
    EXPECT_NO_THROW(validate(make_fft3d(nprocs)));
    EXPECT_NO_THROW(validate(make_krylov_latency(nprocs)));
  }
}

TEST(ExtraApps, Fft3dMovesTheWholeSlabThroughAlltoall) {
  const auto app = make_fft3d(256);
  ASSERT_EQ(app.phases.size(), 1u);
  const auto& events = app.phases[0].comm;
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, netsim::CommType::AllToAll);
  // Per-pair payload x (p-1) pairs ~ the local slab size.
  const double slab = 1024.0 * 1024.0 * 1024.0 / 256 * 16;
  EXPECT_NEAR(static_cast<double>(events[0].bytes) * 255, slab,
              slab * 0.05);
}

TEST(ExtraApps, KrylovBecomesCommBoundAtScale) {
  const auto& machine = machine::find("MHPCC_P3");  // high-latency Colony
  const double small = simulate::execute(make_krylov_latency(64), machine)
                           .comm_fraction();
  const double large =
      simulate::execute(make_krylov_latency(1024), machine)
          .comm_fraction();
  EXPECT_LT(small, 0.2);
  EXPECT_GT(large, 0.3);
  EXPECT_GT(large, small * 2);
}

TEST(ExtraApps, CommFractionTracksInterconnectQuality) {
  // The same Krylov run is much less comm-bound on the low-latency Altix
  // than on the Colony-switched P3.
  const auto app = make_krylov_latency(256);
  const double on_p3 =
      simulate::execute(app, machine::find("MHPCC_P3")).comm_fraction();
  const double on_altix =
      simulate::execute(app, machine::find("ARL_Altix")).comm_fraction();
  EXPECT_GT(on_p3, on_altix);
}

TEST(ExtraApps, BreakdownSeesTheCommShare) {
  const auto run = simulate::execute(make_krylov_latency(1024),
                                     machine::find("MHPCC_P3"));
  const auto shares = report::time_shares(run);
  EXPECT_GT(shares.comm, 0.3);
  EXPECT_NEAR(shares.flop + shares.memory + shares.tlb + shares.comm +
                  shares.other,
              1.0, 1e-9);
}

}  // namespace
}  // namespace msim::workload
