// The convolver: metric rate selection, overlap, the network term, and the
// ratio normalization that makes Metric #4 coincide with simple HPL.
#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"
#include "common/units.hpp"
#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "test_support.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace msim::convolve {
namespace {

const probes::ProbeSet& suite_for(const std::string& machine) {
  static std::map<std::string, probes::ProbeSet> cache;
  auto it = cache.find(machine);
  if (it == cache.end()) {
    it = cache.emplace(machine, probes::run_probe_suite(
                                    machine::find(machine))).first;
  }
  return it->second;
}

trace::BlockSignature flop_block() {
  trace::BlockSignature block;
  block.name = "flops";
  block.phase = "p";
  block.flops = 1u << 30;
  block.refs = 1;
  block.unit_fraction = 1.0;
  block.working_set_estimate = 4 * KiB;
  return block;
}

trace::BlockSignature memory_block(double unit, double short_, double random,
                                   std::uint64_t ws) {
  trace::BlockSignature block;
  block.name = "memory";
  block.phase = "p";
  block.flops = 0;
  block.refs = 1u << 27;
  block.element_bytes = 8;
  block.unit_fraction = unit;
  block.short_fraction = short_;
  block.random_fraction = random;
  block.working_set_estimate = ws;
  return block;
}

TEST(Convolver, Metric4IsFlopsOverRmax) {
  const auto& probes_set = suite_for("NAVO_655");
  const auto block = flop_block();
  EXPECT_NEAR(
      convolve_block(block, probes_set, PredictiveMetric::M4_Hpl),
      static_cast<double>(block.flops) / probes_set.hpl_rmax, 1e-9);
}

TEST(Convolver, Metric5UsesStreamForAllMemory) {
  const auto& probes_set = suite_for("NAVO_655");
  const auto block = memory_block(0.3, 0.3, 0.4, 1 * GiB);
  const double expected =
      static_cast<double>(block.bytes()) / probes_set.stream_bw;
  EXPECT_NEAR(convolve_block(block, probes_set,
                             PredictiveMetric::M5_HplStream),
              expected, expected * 1e-9);
}

TEST(Convolver, Metric6SplitsStreamAndGups) {
  const auto& probes_set = suite_for("NAVO_655");
  const auto all_unit = memory_block(1.0, 0.0, 0.0, 1 * GiB);
  const auto all_random = memory_block(0.0, 0.0, 1.0, 1 * GiB);
  const double unit_time = convolve_block(
      all_unit, probes_set, PredictiveMetric::M6_HplStreamGups);
  const double random_time = convolve_block(
      all_random, probes_set, PredictiveMetric::M6_HplStreamGups);
  EXPECT_NEAR(unit_time,
              static_cast<double>(all_unit.bytes()) / probes_set.stream_bw,
              unit_time * 1e-9);
  EXPECT_NEAR(random_time,
              static_cast<double>(all_random.bytes()) / probes_set.gups_bw,
              random_time * 1e-9);
  EXPECT_GT(random_time, unit_time);
}

TEST(Convolver, Metric7ReadsMapsAtWorkingSet) {
  const auto& probes_set = suite_for("ARL_Altix");
  // A cache-resident block is much faster under #7 than under #6 (which
  // charges main-memory rates regardless of locality).
  const auto cached = memory_block(1.0, 0.0, 0.0, 128 * KiB);
  const double m6 = convolve_block(cached, probes_set,
                                   PredictiveMetric::M6_HplStreamGups);
  const double m7 =
      convolve_block(cached, probes_set, PredictiveMetric::M7_HplMaps);
  EXPECT_LT(m7, m6 * 0.5);
}

TEST(Convolver, Metric9AppliesEnhancedCurvesToFlaggedBlocks) {
  const auto& probes_set = suite_for("ARL_Altix");
  auto block = memory_block(1.0, 0.0, 0.0, 128 * KiB);
  const double unflagged =
      convolve_block(block, probes_set, PredictiveMetric::M9_HplMapsNetDep);
  block.dependency_limited = true;
  const double flagged =
      convolve_block(block, probes_set, PredictiveMetric::M9_HplMapsNetDep);
  EXPECT_GT(flagged, unflagged);  // dependency-limited loops are slower
  // #7 ignores the flag entirely.
  EXPECT_NEAR(convolve_block(block, probes_set,
                             PredictiveMetric::M7_HplMaps),
              unflagged, unflagged * 1e-9);
}

TEST(Convolver, MaxOverlapTakesTheLongerSide) {
  const auto& probes_set = suite_for("NAVO_655");
  auto block = memory_block(1.0, 0.0, 0.0, 1 * GiB);
  block.flops = 1;  // negligible flops: time = memory
  const double mem_dominated =
      convolve_block(block, probes_set, PredictiveMetric::M5_HplStream);
  block.flops = 1ull << 40;  // overwhelming flops: time = flops
  const double flop_dominated =
      convolve_block(block, probes_set, PredictiveMetric::M5_HplStream);
  EXPECT_NEAR(flop_dominated,
              static_cast<double>(block.flops) / probes_set.hpl_rmax,
              flop_dominated * 1e-6);
  EXPECT_GT(flop_dominated, mem_dominated);
}

TEST(Convolver, SumOverlapAdds) {
  const auto& probes_set = suite_for("NAVO_655");
  auto block = memory_block(1.0, 0.0, 0.0, 1 * GiB);
  block.flops = 1u << 30;
  ConvolverOptions sum_options;
  sum_options.overlap = cpusim::OverlapPolicy::Sum;
  const double summed = convolve_block(
      block, probes_set, PredictiveMetric::M5_HplStream, sum_options);
  const double maxed =
      convolve_block(block, probes_set, PredictiveMetric::M5_HplStream);
  EXPECT_GT(summed, maxed);
  EXPECT_NEAR(summed,
              static_cast<double>(block.flops) / probes_set.hpl_rmax +
                  static_cast<double>(block.bytes()) / probes_set.stream_bw,
              summed * 1e-9);
}

trace::ApplicationSignature tiny_signature(int nprocs = 16) {
  trace::ApplicationSignature signature;
  signature.app = "tiny";
  signature.nprocs = nprocs;
  signature.timesteps = 10;
  signature.traced_on = "base";
  auto block = memory_block(0.5, 0.2, 0.3, 8 * MiB);
  block.flops = 1u << 24;  // some FP work so flop-only metrics are nonzero
  signature.blocks = {std::move(block)};
  signature.comm = {trace::PhaseComm{
      .phase = "p",
      .events = {netsim::CommEvent{.type = netsim::CommType::AllReduce,
                                   .bytes = 64,
                                   .count = 20}}}};
  return signature;
}

TEST(Convolver, NetworkTermOnlyForMetrics8And9) {
  const auto& probes_set = suite_for("MHPCC_P3");
  const auto signature = tiny_signature();
  EXPECT_DOUBLE_EQ(
      convolve_comm(signature, probes_set, PredictiveMetric::M7_HplMaps),
      0.0);
  EXPECT_GT(convolve_comm(signature, probes_set,
                          PredictiveMetric::M8_HplMapsNet),
            0.0);
  EXPECT_GT(convolve_comm(signature, probes_set,
                          PredictiveMetric::M9_HplMapsNetDep),
            0.0);
}

TEST(Convolver, CommTimeGrowsWithProcessCount) {
  const auto& probes_set = suite_for("MHPCC_P3");
  EXPECT_GT(convolve_comm(tiny_signature(256), probes_set,
                          PredictiveMetric::M8_HplMapsNet),
            convolve_comm(tiny_signature(16), probes_set,
                          PredictiveMetric::M8_HplMapsNet));
}

TEST(Convolver, ConvolvedTimeScalesWithTimesteps) {
  const auto& probes_set = suite_for("NAVO_655");
  auto signature = tiny_signature();
  const double ten = convolved_time(signature, probes_set,
                                    PredictiveMetric::M6_HplStreamGups);
  signature.timesteps = 20;
  EXPECT_NEAR(convolved_time(signature, probes_set,
                             PredictiveMetric::M6_HplStreamGups),
              2.0 * ten, ten * 1e-9);
}

TEST(Convolver, RatioNormalizationMakesMetric4EqualSimpleHpl) {
  // The paper calls Metric #4 "a sanity test for the predictive method":
  // with flop-only counts the convolver must reproduce the pencil-and-
  // paper Rmax ratio exactly — for any signature.
  const auto& base_probes = suite_for(machine::base_system_name());
  const auto app = workload::make_rfcth_standard(32);
  const auto signature =
      trace::trace_application(app, machine::base_system_name());
  const double base_seconds = 1234.5;
  for (const auto& target : {"ERDC_O3800", "ASC_SC45", "ARL_Opteron"}) {
    const auto& target_probes = suite_for(target);
    const double convolver_prediction =
        predict_time(signature, target_probes, base_probes, base_seconds,
                     PredictiveMetric::M4_Hpl);
    const double eq1_prediction =
        base_seconds * base_probes.hpl_rmax / target_probes.hpl_rmax;
    EXPECT_NEAR(convolver_prediction, eq1_prediction,
                eq1_prediction * 1e-9)
        << target;
  }
}

TEST(Convolver, PredictionOnBaseIsExact) {
  // Predicting the base system from itself returns the measured time.
  const auto& base_probes = suite_for(machine::base_system_name());
  const auto signature = tiny_signature();
  for (auto metric :
       {PredictiveMetric::M4_Hpl, PredictiveMetric::M6_HplStreamGups,
        PredictiveMetric::M9_HplMapsNetDep}) {
    EXPECT_NEAR(predict_time(signature, base_probes, base_probes, 777.0,
                             metric),
                777.0, 1e-6);
  }
}

TEST(Convolver, MetricPredicates) {
  EXPECT_FALSE(uses_maps(PredictiveMetric::M6_HplStreamGups));
  EXPECT_TRUE(uses_maps(PredictiveMetric::M7_HplMaps));
  EXPECT_TRUE(uses_maps(PredictiveMetric::M9_HplMapsNetDep));
  EXPECT_FALSE(uses_network(PredictiveMetric::M7_HplMaps));
  EXPECT_TRUE(uses_network(PredictiveMetric::M8_HplMapsNet));
  EXPECT_EQ(to_string(PredictiveMetric::M8_HplMapsNet), "HPL+MAPS+NET");
}

TEST(Convolver, EmptySignatureRejected) {
  const auto& probes_set = suite_for("NAVO_655");
  trace::ApplicationSignature empty;
  empty.timesteps = 1;
  EXPECT_THROW((void)convolved_time(empty, probes_set,
                                    PredictiveMetric::M6_HplStreamGups),
               precondition_error);
}

}  // namespace
}  // namespace msim::convolve
