// Rank-level event simulation versus the analytic collective cost model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"
#include "machine/registry.hpp"
#include "netsim/cost_model.hpp"
#include "netsim/event_sim.hpp"
#include "report/breakdown.hpp"
#include "workload/apps.hpp"

namespace msim::netsim {
namespace {

machine::Network test_net() {
  return machine::Network{.latency_s = 5e-6,
                          .bandwidth = 0.5 * GB,
                          .eager_threshold_bytes = 16 * KiB,
                          .per_message_overhead_s = 1e-6,
                          .procs_per_node = 4};
}

TEST(EventSim, SingleRankIsFree) {
  const auto net = test_net();
  for (auto type : {CommType::AllReduce, CommType::Broadcast,
                    CommType::AllToAll, CommType::Barrier}) {
    EXPECT_DOUBLE_EQ(simulate_collective(net, type, 1024, 1), 0.0);
  }
  EXPECT_DOUBLE_EQ(simulate_halo_exchange(net, 1024, 4, 1), 0.0);
}

TEST(EventSim, ZeroSkewAllreduceMatchesAnalyticExactly) {
  // For power-of-two communicators and small messages, the analytic model
  // *is* recursive doubling: log2(p) rounds of (alpha + b/bw).
  const auto net = test_net();
  for (int nprocs : {2, 8, 64, 256}) {
    const double simulated =
        simulate_collective(net, CommType::AllReduce, 1024, nprocs);
    const double analytic =
        collective_time(net, CommType::AllReduce, 1024, nprocs);
    EXPECT_NEAR(simulated, analytic, analytic * 1e-9) << nprocs;
  }
}

TEST(EventSim, ZeroSkewBarrierMatchesAnalytic) {
  const auto net = test_net();
  for (int nprocs : {2, 16, 128}) {
    EXPECT_NEAR(simulate_collective(net, CommType::Barrier, 0, nprocs),
                collective_time(net, CommType::Barrier, 0, nprocs),
                1e-12)
        << nprocs;
  }
}

TEST(EventSim, NonPowerOfTwoTakesTheCeilingRound) {
  // 65 ranks need 7 rounds, same as 128 (idle peers notwithstanding).
  const auto net = test_net();
  const double p65 = simulate_collective(net, CommType::Barrier, 0, 65);
  const double p64 = simulate_collective(net, CommType::Barrier, 0, 64);
  EXPECT_GT(p65, p64);
  EXPECT_NEAR(p65, collective_time(net, CommType::Barrier, 0, 65), 1e-12);
}

TEST(EventSim, BroadcastMatchesBinomialTree) {
  const auto net = test_net();
  const double simulated =
      simulate_collective(net, CommType::Broadcast, 4096, 32);
  const double analytic =
      collective_time(net, CommType::Broadcast, 4096, 32);
  EXPECT_NEAR(simulated, analytic, analytic * 1e-9);
}

TEST(EventSim, AlltoallScalesLinearlyInRanks) {
  const auto net = test_net();
  const double p8 = simulate_collective(net, CommType::AllToAll, 2048, 8);
  const double p16 = simulate_collective(net, CommType::AllToAll, 2048, 16);
  // p-1 rounds: 15/7 ratio.
  EXPECT_NEAR(p16 / p8, 15.0 / 7.0, 0.05);
}

TEST(EventSim, SkewOnlyAddsTime) {
  const auto net = test_net();
  const double crisp =
      simulate_collective(net, CommType::AllReduce, 512, 64);
  for (double skew : {1e-6, 1e-4, 1e-2}) {
    EventSimOptions options;
    options.skew_stddev_s = skew;
    const double skewed =
        simulate_collective(net, CommType::AllReduce, 512, 64, options);
    EXPECT_GE(skewed, crisp);
  }
  // Large skew dominates the collective itself.
  EventSimOptions huge;
  huge.skew_stddev_s = 1.0;
  EXPECT_GT(simulate_collective(net, CommType::AllReduce, 512, 64, huge),
            100 * crisp);
}

TEST(EventSim, SkewIsDeterministicPerSeed) {
  const auto net = test_net();
  EventSimOptions a, b;
  a.skew_stddev_s = b.skew_stddev_s = 1e-4;
  EXPECT_DOUBLE_EQ(
      simulate_collective(net, CommType::AllReduce, 512, 32, a),
      simulate_collective(net, CommType::AllReduce, 512, 32, b));
  b.seed = a.seed + 1;
  EXPECT_NE(simulate_collective(net, CommType::AllReduce, 512, 32, a),
            simulate_collective(net, CommType::AllReduce, 512, 32, b));
}

TEST(EventSim, HaloExchangeSerializesNeighbors) {
  const auto net = test_net();
  const double two = simulate_halo_exchange(net, 64 * KiB, 2, 64);
  const double six = simulate_halo_exchange(net, 64 * KiB, 6, 64);
  EXPECT_NEAR(six / two, 3.0, 0.2);
  // And matches p2p cost per neighbor at zero skew.
  EXPECT_NEAR(two, 2.0 * pt2pt_time(net, 64 * KiB), two * 0.05);
}

TEST(EventSim, NodeSharingSlowsLargeMessages) {
  const auto net = test_net();
  EventSimOptions shared;
  shared.node_sharing = 4.0;
  EXPECT_GT(simulate_collective(net, CommType::AllToAll, 1 * MiB, 16,
                                shared),
            simulate_collective(net, CommType::AllToAll, 1 * MiB, 16));
}

TEST(TimeShares, SumToOneAndMatchIntuition) {
  const auto app = workload::make_rfcth_standard(32);
  const auto run = simulate::execute(app, machine::find("ARL_Xeon"));
  const auto shares = report::time_shares(run);
  EXPECT_NEAR(shares.flop + shares.memory + shares.tlb + shares.comm +
                  shares.other,
              1.0, 1e-9);
  EXPECT_GT(shares.memory, shares.flop);  // RFCTH is memory/TLB-bound
  EXPECT_GE(shares.other, 0.0);
}

TEST(Breakdown, RendersEveryBlock) {
  const auto app = workload::make_hycom_standard(59);
  const std::string out =
      report::render_breakdown(app, machine::find("NAVO_655"));
  EXPECT_NE(out.find("HYCOM/barotropic_solve"), std::string::npos);
  EXPECT_NE(out.find("Shares:"), std::string::npos);
  const std::string summary = report::render_bottleneck_summary(
      app, {machine::find("NAVO_655"), machine::find("ARL_Xeon")});
  EXPECT_NE(summary.find("ARL_Xeon"), std::string::npos);
}

}  // namespace
}  // namespace msim::netsim
