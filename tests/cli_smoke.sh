#!/bin/sh
# End-to-end smoke test of the msim CLI: every command exercised once,
# including the archive formats. Fails on any non-zero exit or missing
# output marker.
set -e
MSIM="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$MSIM" help | grep -q "predict-custom"
"$MSIM" machines | grep -q "ARL_Opteron"
"$MSIM" show-machine ASC_SC45 | grep -q "cpu.clock_ghz = 1"
"$MSIM" probe ARL_Xeon --out "$WORK/xeon.probe" | grep -q "STREAM"
grep -q "maps_unit.points" "$WORK/xeon.probe"
"$MSIM" trace RFCTH_Standard 16 --out "$WORK/rfcth.sig" | grep -q "eos_lookup"
grep -q "block.0.name" "$WORK/rfcth.sig"
"$MSIM" predict RFCTH_Standard 16 NAVO_655 --metric 9-P | grep -q "HPL+MAPS+NET+DEP"
"$MSIM" rank HYCOM_Standard 96 | grep -q "ranked by"
"$MSIM" export-app AVUS_Standard 32 --out "$WORK/avus.app"
grep -q "phase.0.block.0.name" "$WORK/avus.app"
"$MSIM" predict-custom "$WORK/avus.app" ARL_Altix | grep -q "predicted on"
# Error paths return non-zero.
if "$MSIM" unknown-command >/dev/null 2>&1; then exit 1; fi
if "$MSIM" show-machine NO_SUCH >/dev/null 2>&1; then exit 1; fi
echo "CLI smoke test passed"
