// Run records and the msim-report engine: the JSON reader round-trips
// what the writer emits, records append re-run samples only under a
// matching identity fingerprint, and diff/trajectory verdicts respect the
// noise-aware thresholds at their edges.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "msim_report/report_tool.hpp"
#include "obs/registry.hpp"
#include "obs/run_record.hpp"
#include "obs/telemetry.hpp"

namespace msim {
namespace {

namespace fs = std::filesystem;

class RunRecordTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset_for_testing(); }
  void TearDown() override { obs::reset_for_testing(); }
};

fs::path scratch_file(const std::string& name) {
  const fs::path path = fs::temp_directory_path() / ("msim-rr-" + name);
  fs::remove(path);
  return path;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- the JSON reader --------------------------------------------------

TEST(Json, ParsesScalarsArraysAndObjects) {
  const json::Value doc = json::parse(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": "text"}, "e": -2e3})");
  EXPECT_EQ(doc.number_or("a", 0.0), 1.5);
  EXPECT_EQ(doc.number_or("e", 0.0), -2000.0);
  const json::Value* array = doc.find("b");
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->items().size(), 3u);
  EXPECT_TRUE(array->items()[0].as_bool());
  EXPECT_TRUE(array->items()[2].is_null());
  const json::Value* nested = doc.find("c");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->string_or("d", ""), "text");
}

TEST(Json, DecodesEscapesIncludingSurrogatePairs) {
  const json::Value doc =
      json::parse(R"({"s": "a\"b\\c\nd\u0041\u00e9\ud83d\ude00"})");
  const std::string text = doc.string_or("s", "");
  EXPECT_EQ(text.substr(0, 8), "a\"b\\c\nd" "A");
  EXPECT_NE(text.find("\xC3\xA9"), std::string::npos);       // é
  EXPECT_NE(text.find("\xF0\x9F\x98\x80"), std::string::npos);  // 😀
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse("{"), precondition_error);
  EXPECT_THROW((void)json::parse("{} trailing"), precondition_error);
  EXPECT_THROW((void)json::parse("{\"a\": 01}"), precondition_error);
  EXPECT_THROW((void)json::parse("[1,]"), precondition_error);
  EXPECT_THROW((void)json::parse("\"\\ud800\""), precondition_error);
  EXPECT_THROW((void)json::parse("tru"), precondition_error);
}

TEST(Json, TypedAccessorsEnforceTypes) {
  const json::Value doc = json::parse("{\"n\": 3}");
  const json::Value* n = doc.find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_THROW((void)n->as_string(), precondition_error);
  EXPECT_EQ(n->as_number(), 3.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.number_or("missing", 7.0), 7.0);
}

// --- run record schema round-trip -------------------------------------

TEST_F(RunRecordTest, WritesSchemaValidRecord) {
  const fs::path path = scratch_file("roundtrip.json");
  obs::enable_run_record(path.string());
  obs::record_run_info("experiment", "unit-test");
  obs::Registry::instance().counter("graph.nodes").add(42);
  obs::Registry::instance()
      .histogram("scheduler.unitstage.task.seconds")
      .record(0.25);
  obs::record_error_summaries({obs::ErrorSummaryRecord{
      .metric = "1-S",
      .count = 150,
      .mean_abs_pct = 97.0,
      .median_abs_pct = 52.4,
      .max_abs_pct = 425.7}});
  ASSERT_TRUE(obs::write_run_record());

  const json::Value record = json::parse(slurp(path));
  EXPECT_EQ(record.number_or("schema", 0),
            double(obs::kRunRecordSchemaVersion));
  const json::Value* identity = record.find("identity");
  ASSERT_NE(identity, nullptr);
  EXPECT_EQ(identity->string_or("fingerprint", ""),
            obs::run_record_fingerprint());
  EXPECT_NE(identity->string_or("compiler", ""), "");
  const json::Value* info = identity->find("info");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->string_or("experiment", ""), "unit-test");

  const json::Value* samples = record.find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->items().size(), 1u);
  const json::Value& sample = samples->items()[0];
  EXPECT_GT(sample.number_or("created_unix", 0.0), 0.0);
  EXPECT_GE(sample.number_or("peak_rss_bytes", -1.0), 0.0);
  const json::Value* counters = sample.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("graph.nodes", 0.0), 42.0);
  const json::Value* stages = sample.find("stages");
  ASSERT_NE(stages, nullptr);
  const json::Value* stage = stages->find("unitstage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->number_or("seconds", 0.0), 0.25);
  const json::Value* errors = sample.find("errors");
  ASSERT_NE(errors, nullptr);
  ASSERT_EQ(errors->items().size(), 1u);
  EXPECT_EQ(errors->items()[0].string_or("metric", ""), "1-S");
  EXPECT_EQ(errors->items()[0].number_or("median_abs_pct", 0.0), 52.4);
  fs::remove(path);
}

TEST_F(RunRecordTest, AppendsSamplesUnderMatchingFingerprint) {
  const fs::path path = scratch_file("append.json");
  obs::enable_run_record(path.string());
  obs::record_run_info("experiment", "append-test");
  ASSERT_TRUE(obs::write_run_record());
  ASSERT_TRUE(obs::write_run_record());
  ASSERT_TRUE(obs::write_run_record());

  json::Value record = json::parse(slurp(path));
  ASSERT_EQ(record.find("samples")->items().size(), 3u);

  // A different identity must start the file over, not mix samples.
  obs::record_run_info("experiment", "other-test");
  ASSERT_TRUE(obs::write_run_record());
  record = json::parse(slurp(path));
  EXPECT_EQ(record.find("samples")->items().size(), 1u);
  fs::remove(path);
}

TEST_F(RunRecordTest, OverwritesMalformedExistingFile) {
  const fs::path path = scratch_file("malformed.json");
  {
    std::ofstream out(path);
    out << "this is not json";
  }
  obs::enable_run_record(path.string());
  ASSERT_TRUE(obs::write_run_record());
  const json::Value record = json::parse(slurp(path));
  EXPECT_EQ(record.find("samples")->items().size(), 1u);
  fs::remove(path);
}

TEST_F(RunRecordTest, EnvAndFlagActivation) {
  EXPECT_FALSE(obs::run_record_enabled());
  EXPECT_TRUE(obs::handle_telemetry_flag("--run-record=/tmp/x.json"));
  EXPECT_TRUE(obs::run_record_enabled());
  EXPECT_EQ(obs::run_record_path(), "/tmp/x.json");
  EXPECT_TRUE(obs::collecting());
  EXPECT_FALSE(obs::metrics_enabled());
}

TEST_F(RunRecordTest, MetricsPathFlagWritesTableFile) {
  const fs::path path = scratch_file("metrics.txt");
  EXPECT_TRUE(obs::handle_telemetry_flag("--metrics=" + path.string()));
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_EQ(obs::metrics_path(), path.string());
  obs::Registry::instance().counter("test.metrics.file").add(7);
  obs::flush_telemetry();
  const std::string table = slurp(path);
  EXPECT_NE(table.find("test.metrics.file"), std::string::npos);
  fs::remove(path);
}

// --- msim-report engine -----------------------------------------------

report_tool::RecordSummary fake_summary(const std::string& experiment,
                                        std::vector<double> wall) {
  report_tool::RecordSummary summary;
  summary.experiment = experiment;
  summary.fingerprint = "fp-" + experiment;
  summary.git = "test";
  summary.samples = wall.size();
  for (std::size_t i = 0; i < wall.size(); ++i) {
    summary.created_unix.push_back(static_cast<double>(i));
  }
  summary.wall_seconds.values = std::move(wall);
  return summary;
}

TEST(MsimReport, ThresholdTakesTheWidestBand) {
  const report_tool::Thresholds t{.sigmas = 3.0,
                                  .rel_floor = 0.10,
                                  .abs_floor = 0.05};
  // Tight series: both floors above 3 sigma; absolute floor wins for a
  // small base, relative floor for a large one.
  EXPECT_DOUBLE_EQ(report_tool::regression_threshold(0.1, 0.0, 0.0, t),
                   0.05);
  EXPECT_DOUBLE_EQ(report_tool::regression_threshold(10.0, 0.0, 0.0, t),
                   1.0);
  // Noisy series: the sigma term dominates; stddevs combine in
  // quadrature (3 * sqrt(3^2 + 4^2) = 15).
  EXPECT_DOUBLE_EQ(report_tool::regression_threshold(1.0, 3.0, 4.0, t),
                   15.0);
}

TEST(MsimReport, DiffFlagsOnlyBeyondThreshold) {
  const report_tool::Thresholds t;
  const auto base = fake_summary("exp", {1.00, 1.02, 0.98});
  // Within the 10% relative floor: no regression.
  auto same = fake_summary("exp", {1.05});
  auto report = report_tool::diff_records(base, same, t);
  EXPECT_FALSE(report.regression);
  // Far beyond every band: flagged.
  auto slow = fake_summary("exp", {1.50});
  report = report_tool::diff_records(base, slow, t);
  EXPECT_TRUE(report.regression);
  // Faster is never a regression.
  auto fast = fake_summary("exp", {0.50});
  report = report_tool::diff_records(base, fast, t);
  EXPECT_FALSE(report.regression);
}

TEST(MsimReport, DiffExactlyAtThresholdIsNotARegression) {
  // Binary-exact values so delta == threshold with no rounding noise:
  // the band is inclusive, only strictly-beyond flags.
  const report_tool::Thresholds t{.sigmas = 3.0,
                                  .rel_floor = 0.25,
                                  .abs_floor = 0.125};
  auto base = fake_summary("exp", {1.0});
  auto at_edge = fake_summary("exp", {1.25});  // delta == rel floor * base
  const auto report = report_tool::diff_records(base, at_edge, t);
  EXPECT_FALSE(report.regression);
}

TEST(MsimReport, DiffFlagsAccuracyDrift) {
  const report_tool::Thresholds t;
  auto base = fake_summary("exp", {1.0});
  auto current = fake_summary("exp", {1.0});
  base.errors.push_back(report_tool::ErrorRow{
      .metric = "3-S", .count = 150, .mean_abs_pct = 18.7});
  current.errors.push_back(report_tool::ErrorRow{
      .metric = "3-S", .count = 150, .mean_abs_pct = 19.9});
  const auto report = report_tool::diff_records(base, current, t);
  EXPECT_TRUE(report.regression);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes.back().find("accuracy drift"), std::string::npos);
}

TEST(MsimReport, DiffNotesOneSidedStages) {
  const report_tool::Thresholds t;
  auto base = fake_summary("exp", {1.0});
  auto current = fake_summary("exp", {1.0});
  base.stages["old-stage"].values = {0.5};
  current.stages["new-stage"].values = {0.5};
  const auto report = report_tool::diff_records(base, current, t);
  EXPECT_FALSE(report.regression);
  EXPECT_EQ(report.notes.size(), 2u);
}

TEST(MsimReport, TrajectoryGatesOnNewestSample) {
  const report_tool::Thresholds t;
  std::vector<report_tool::RecordSummary> steady;
  steady.push_back(fake_summary("bench", {1.00, 1.01, 0.99, 1.02}));
  auto trajectories = report_tool::build_trajectories(steady, t);
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_EQ(trajectories[0].samples, 4u);
  EXPECT_FALSE(trajectories[0].verdict.regression);

  std::vector<report_tool::RecordSummary> degraded;
  degraded.push_back(fake_summary("bench", {1.00, 1.01, 0.99, 2.50}));
  trajectories = report_tool::build_trajectories(degraded, t);
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_TRUE(trajectories[0].verdict.regression);

  // The serialized trajectory is valid JSON carrying the verdict.
  const json::Value doc = json::parse(trajectories[0].json);
  EXPECT_EQ(doc.string_or("experiment", ""), "bench");
  EXPECT_TRUE(doc.find("verdict")->find("regression")->as_bool());
}

/// Decoded <experiment>_trajectory.json body. This is the reader half of
/// the run.trajectory protocol (writer: build_trajectories); CI dashboards
/// consume the same shape, so the decode below keeps every written key
/// honest.
struct TrajectoryView {
  double schema = 0.0;
  std::string experiment;
  double samples = 0.0;
  std::vector<std::string> revisions;
  std::vector<double> wall_seconds;
  std::map<std::string, std::vector<double>> stages;
  bool regression = false;
  struct Row {
    std::string name;
    double history_mean = 0.0;
    double history_stddev = 0.0;
    double latest = 0.0;
    double threshold = 0.0;
    bool regression = false;
  };
  std::vector<Row> rows;
};

// msim-lint: proto(run.trajectory, reader)
TrajectoryView decode_trajectory(const json::Value& doc) {
  TrajectoryView view;
  view.schema = doc.number_or("schema", 0.0);
  view.experiment = doc.string_or("experiment", "");
  view.samples = doc.number_or("samples", 0.0);
  if (const json::Value* revisions = doc.find("revisions");
      revisions != nullptr && revisions->is_array()) {
    for (const json::Value& revision : revisions->items()) {
      view.revisions.push_back(revision.as_string());
    }
  }
  if (const json::Value* series = doc.find("series");
      series != nullptr && series->is_object()) {
    if (const json::Value* wall = series->find("wall_seconds");
        wall != nullptr && wall->is_array()) {
      for (const json::Value& value : wall->items()) {
        view.wall_seconds.push_back(value.as_number());
      }
    }
    if (const json::Value* stages = series->find("stages");
        stages != nullptr && stages->is_object()) {
      for (const auto& [label, values] : stages->fields()) {
        for (const json::Value& value : values.items()) {
          view.stages[label].push_back(value.as_number());
        }
      }
    }
  }
  if (const json::Value* verdict = doc.find("verdict");
      verdict != nullptr && verdict->is_object()) {
    if (const json::Value* flag = verdict->find("regression");
        flag != nullptr && flag->is_bool()) {
      view.regression = flag->as_bool();
    }
    if (const json::Value* rows = verdict->find("rows");
        rows != nullptr && rows->is_array()) {
      for (const json::Value& row : rows->items()) {
        TrajectoryView::Row decoded;
        decoded.name = row.string_or("name", "");
        decoded.history_mean = row.number_or("history_mean", 0.0);
        decoded.history_stddev = row.number_or("history_stddev", 0.0);
        decoded.latest = row.number_or("latest", 0.0);
        decoded.threshold = row.number_or("threshold", 0.0);
        if (const json::Value* flag = row.find("regression");
            flag != nullptr && flag->is_bool()) {
          decoded.regression = flag->as_bool();
        }
        view.rows.push_back(decoded);
      }
    }
  }
  return view;
}

TEST(MsimReport, TrajectoryJsonRoundTripsThroughReader) {
  const report_tool::Thresholds t;
  std::vector<report_tool::RecordSummary> records;
  auto record = fake_summary("roundtrip", {1.00, 1.01, 0.99, 2.50});
  record.stages["sumstage"].values = {0.5, 0.5, 0.5, 2.0};
  records.push_back(std::move(record));
  const auto trajectories = report_tool::build_trajectories(records, t);
  ASSERT_EQ(trajectories.size(), 1u);

  const TrajectoryView view =
      decode_trajectory(json::parse(trajectories[0].json));
  EXPECT_EQ(view.schema, 1.0);
  EXPECT_EQ(view.experiment, "roundtrip");
  EXPECT_EQ(view.samples, 4.0);
  ASSERT_EQ(view.revisions.size(), 1u);
  EXPECT_EQ(view.revisions[0], "test");
  EXPECT_EQ(view.wall_seconds,
            (std::vector<double>{1.00, 1.01, 0.99, 2.50}));
  ASSERT_EQ(view.stages.count("sumstage"), 1u);
  EXPECT_EQ(view.stages.at("sumstage").size(), 4u);
  EXPECT_TRUE(view.regression);
  ASSERT_FALSE(view.rows.empty());
  bool saw_wall = false;
  for (const TrajectoryView::Row& row : view.rows) {
    if (row.name != "wall_seconds") continue;
    saw_wall = true;
    EXPECT_NEAR(row.history_mean, 1.0, 0.02);
    EXPECT_NEAR(row.latest, 2.50, 1e-9);
    EXPECT_GT(row.threshold, 0.0);
    EXPECT_TRUE(row.regression);
  }
  EXPECT_TRUE(saw_wall);
}

TEST(MsimReport, TrajectorySingleSampleHasNoVerdict) {
  const report_tool::Thresholds t;
  std::vector<report_tool::RecordSummary> records;
  records.push_back(fake_summary("lone", {1.0}));
  const auto trajectories = report_tool::build_trajectories(records, t);
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_TRUE(trajectories[0].verdict.rows.empty());
  EXPECT_FALSE(trajectories[0].verdict.regression);
}

TEST(MsimReport, ExperimentSlugSanitizes) {
  EXPECT_EQ(report_tool::experiment_slug("table4_overall_error"),
            "table4_overall_error");
  EXPECT_EQ(report_tool::experiment_slug("a b/c"), "a_b_c");
  EXPECT_EQ(report_tool::experiment_slug(""), "unnamed");
}

TEST_F(RunRecordTest, SummarizeRecordReadsWhatTheWriterEmits) {
  const fs::path path = scratch_file("summarize.json");
  obs::enable_run_record(path.string());
  obs::record_run_info("experiment", "summarize-test");
  obs::Registry::instance()
      .histogram("scheduler.sumstage.task.seconds")
      .record(0.125);
  ASSERT_TRUE(obs::write_run_record());
  ASSERT_TRUE(obs::write_run_record());

  const auto summary = report_tool::load_record(path.string());
  EXPECT_EQ(summary.tool, "msim");
  EXPECT_EQ(summary.experiment, "summarize-test");
  EXPECT_EQ(summary.fingerprint, obs::run_record_fingerprint());
  EXPECT_EQ(summary.samples, 2u);
  EXPECT_EQ(summary.wall_seconds.count(), 2u);
  ASSERT_EQ(summary.stages.count("sumstage"), 1u);
  EXPECT_EQ(summary.stages.at("sumstage").values.front(), 0.125);
  // Per-stage straggler series ride along with the seconds series.
  ASSERT_EQ(summary.stage_max_seconds.count("sumstage"), 1u);
  EXPECT_EQ(summary.stage_max_seconds.at("sumstage").values.front(), 0.125);
  // The raw scheduler histogram also lands in the newest-sample view.
  ASSERT_EQ(summary.histograms.count("scheduler.sumstage.task.seconds"),
            1u);
  const auto& hist =
      summary.histograms.at("scheduler.sumstage.task.seconds");
  EXPECT_EQ(hist.count, 1.0);
  EXPECT_EQ(hist.max, 0.125);
  // Quantiles are bucketed estimates: an upper bucket bound, never below
  // the true value.
  EXPECT_GE(hist.p50, 0.125);
  fs::remove(path);
}

TEST(MsimReport, RejectsUnsupportedSchema) {
  EXPECT_THROW(
      (void)report_tool::summarize_record(
          json::parse("{\"schema\": 99, \"samples\": []}"), "x"),
      precondition_error);
}

}  // namespace
}  // namespace msim
